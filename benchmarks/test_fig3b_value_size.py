"""Figure 3b: LBL-ORTOA vs TEE-ORTOA vs the 2RTT baseline as values grow.

Paper expectations (§6.3): LBL degrades with value size; at ~300 B it meets
the baseline and loses beyond; TEE and the baseline stay flat.
"""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table


def test_fig3b_value_size(benchmark):
    rows = benchmark.pedantic(experiments.figure3b, rounds=1, iterations=1)
    save_table(
        "fig3b_value_size",
        render_table("Figure 3b: value-size sweep (Oregon)", rows),
    )
    by = {(r["protocol"], r["value_bytes"]): r for r in rows}

    # LBL latency grows monotonically with value size.
    lbl_lat = [by[("lbl", v)]["avg_latency_ms"] for v in (10, 50, 160, 300, 450, 600)]
    assert lbl_lat == sorted(lbl_lat)

    # Baseline and TEE are flat.
    for protocol in ("baseline", "tee"):
        lat = [by[(protocol, v)]["avg_latency_ms"] for v in (10, 160, 600)]
        assert max(lat) - min(lat) < 1.0, protocol

    # The crossover: LBL wins below 300 B, is comparable at 300 B, loses above.
    assert by[("lbl", 160)]["avg_latency_ms"] < by[("baseline", 160)]["avg_latency_ms"]
    mid_gap = abs(
        by[("lbl", 300)]["avg_latency_ms"] - by[("baseline", 300)]["avg_latency_ms"]
    )
    assert mid_gap < 0.25 * by[("baseline", 300)]["avg_latency_ms"]
    assert by[("lbl", 600)]["avg_latency_ms"] > by[("baseline", 600)]["avg_latency_ms"]
