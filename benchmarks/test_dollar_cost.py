"""§6.3.3: the dollar-cost estimate of operating LBL-ORTOA on Google Cloud.

Paper headline: ~$0.000023 per request for 1M objects of 160 B with 128-bit
labels — "a reasonable price" for halving round trips.  Our estimate now
derives bytes from the ledger-validated cost model — 138,267 wire bytes per
access (125,466 request + 12,801 response) at the paper's y=2 operating
point — which prices out to ~$0.000017 per request: the same order of
magnitude, slightly cheaper because the model counts real framing instead
of the paper's rounded bit formulas.
"""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table


def test_dollar_cost(benchmark):
    rows = benchmark.pedantic(experiments.dollar_cost, rounds=1, iterations=1)
    save_table(
        "dollar_cost",
        render_table("§6.3.3: LBL-ORTOA operating cost (GCP list prices)", rows),
    )
    by = {r["item"]: r["value"] for r in rows}

    # Same order of magnitude as the paper's $0.000023 per request; the
    # model's exact framing gives ~$0.000017 (138,267 B/access x $0.12/GB
    # network + invocations + CPU, over 1M accesses).
    assert 1e-6 < by["usd_per_request"] < 1e-4

    # Storage for 1M optimized objects: 16 B encoded key + 640 x 17 B
    # point-and-permute label groups = 10,896 B/object, about 10.9 GB...
    assert 5 < by["storage_gb"] < 15
    # ...costing ~$0.22/month at $0.02/GB-month, well under a dollar.
    assert by["storage_usd_per_month"] < 1.0

    # Bandwidth dominates compute, as in the paper's breakdown.
    assert by["network_usd_per_1m_accesses"] > by["compute_usd_per_1m_accesses"]
