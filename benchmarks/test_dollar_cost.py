"""§6.3.3: the dollar-cost estimate of operating LBL-ORTOA on Google Cloud.

Paper headline: ~$0.000023 per request for 1M objects of 160 B with 128-bit
labels — "a reasonable price" for halving round trips.
"""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table


def test_dollar_cost(benchmark):
    rows = benchmark.pedantic(experiments.dollar_cost, rounds=1, iterations=1)
    save_table(
        "dollar_cost",
        render_table("§6.3.3: LBL-ORTOA operating cost (GCP list prices)", rows),
    )
    by = {r["item"]: r["value"] for r in rows}

    # Same order of magnitude as the paper's $0.000023 per request.
    assert 1e-6 < by["usd_per_request"] < 1e-4

    # Storage for 1M optimized objects is single-digit GB...
    assert 5 < by["storage_gb"] < 15
    # ...costing well under a dollar a month at $0.02/GB.
    assert by["storage_usd_per_month"] < 1.0

    # Bandwidth dominates compute, as in the paper's breakdown.
    assert by["network_usd_per_1m_accesses"] > by["compute_usd_per_1m_accesses"]
