"""Table 2: cross-datacenter RTTs (the network model's configuration)."""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table
from repro.sim.network import NetworkLink


def test_table2_rtt(benchmark):
    rows = benchmark.pedantic(experiments.table2, rounds=1, iterations=1)
    save_table("table2_rtt", render_table("Table 2: RTT from California (ms)", rows))
    assert {r["location"] for r in rows} == {"oregon", "n_virginia", "london", "mumbai"}
    # The model must echo the paper's numbers exactly.
    assert dict((r["location"], r["rtt_ms"]) for r in rows)["oregon"] == 21.84


def test_link_construction_cost(benchmark):
    """Micro: building a link and pricing a round trip is trivially cheap."""
    link = NetworkLink.to_datacenter("london")
    result = benchmark(link.round_trip_ms, 125_000, 13_000)
    assert result > link.rtt_ms
