"""Figure 2a: ORTOA vs the 2RTT baseline as proxy→server distance grows.

Paper expectations (§6.1): ORTOA beats the baseline at every distance; the
baseline's latency is 1.5–1.9x ORTOA's; TEE-ORTOA outperforms LBL-ORTOA.
"""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import ratio_summary, render_table


def test_fig2a_distance(benchmark):
    rows = benchmark.pedantic(experiments.figure2a, rounds=1, iterations=1)
    save_table(
        "fig2a_distance",
        render_table("Figure 2a: latency/throughput vs server distance", rows),
    )

    by = {(r["location"], r["protocol"]): r for r in rows}
    for location in ("oregon", "n_virginia", "london", "mumbai"):
        baseline = by[(location, "baseline")]
        for protocol in ("lbl", "tee"):
            ortoa = by[(location, protocol)]
            # ORTOA wins on both axes at every distance.
            assert ortoa["throughput_ops_s"] > baseline["throughput_ops_s"]
            assert ortoa["avg_latency_ms"] < baseline["avg_latency_ms"]
            # Baseline latency is 1.2–2.1x ORTOA's (paper: 1.5–1.9x).
            ratio = baseline["avg_latency_ms"] / ortoa["avg_latency_ms"]
            assert 1.2 < ratio < 2.1, (location, protocol, ratio)
        # TEE beats LBL (it computes and ships less).
        assert by[(location, "tee")]["avg_latency_ms"] < by[(location, "lbl")]["avg_latency_ms"]

    # Latency increases monotonically with distance for every protocol.
    for protocol in ("lbl", "tee", "baseline"):
        latencies = [
            by[(loc, protocol)]["avg_latency_ms"]
            for loc in ("oregon", "n_virginia", "london", "mumbai")
        ]
        assert latencies == sorted(latencies)

    ratios = ratio_summary(rows, "protocol", "throughput_ops_s", base="baseline")
    save_table(
        "fig2a_ratios",
        render_table(
            "Figure 2a headline: throughput vs baseline (paper: LBL 1.7x, TEE 3.2x)",
            [{"protocol": k, "throughput_ratio": v} for k, v in sorted(ratios.items())],
        ),
    )
