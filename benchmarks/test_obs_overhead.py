"""Observability overhead gates: disabled instrumentation must be free.

Every instrumentation site in the hot path hides behind one module-attribute
check (``if _obs.enabled:``), so the *disabled* cost of the whole telemetry
layer is exactly (guard cost) x (guards crossed per access).  Both factors
are measured here on the same interpreter, making the gate self-relative
and machine-portable:

1. **Disabled-path gate** — measured guard cost times a deliberately
   generous per-access guard count must stay under 3% of a warm access.
2. **Enabled-path record** — the full-capture slowdown (spans + metrics +
   histograms on) is recorded to the trajectory, ungated: capture is an
   opt-in diagnostic mode, not a production path.

Results land in ``BENCH_history.json`` (see ``repro bench check``).
"""

from __future__ import annotations

import gc
import random
import time

from conftest import record_bench

from repro import obs
from repro.core.lbl import LblOrtoa
from repro.obs import _state
from repro.types import Request, StoreConfig

#: Paper §6 operating point, full kernel stack (matches test_kernel_speedup).
POINT = {"value_len": 160, "group_bits": 2, "point_and_permute": True}

#: Guards a single access can cross (client submit, server dispatch,
#: sharded wrapper, counters, gauges, histograms, and the resource
#: ledger's wire/op hooks in the PRF, AEAD, cache, and transport layers,
#: plus the flight-recorder, tail-exemplar, and saturation-gauge sites:
#: shed/window/coalesce/procpool recorder events, exemplar consideration,
#: cache hit/evict gauges, loop-lag and occupancy gauges).  A hand count
#: of the hot path finds ~12 telemetry sites, ~10 ledger sites, and ~8
#: recorder/gauge/exemplar sites; 64 leaves headroom for future sites so
#: the gate fails on a genuinely expensive guard, not on adding one more.
GUARDS_PER_ACCESS = 64

#: Disabled instrumentation must cost less than this fraction of an access.
MAX_DISABLED_OVERHEAD = 0.03

ROUNDS = 30


def _warm_store() -> LblOrtoa:
    config = StoreConfig(**POINT, label_cache_entries=-1)
    store = LblOrtoa(config, rng=random.Random(7), batched=True)
    store.initialize({"k": bytes(config.value_len)})
    for _ in range(3):
        store.access(Request.read("k"))
    return store


def _access_seconds(store: LblOrtoa) -> float:
    request = Request.read("k")
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            store.access(request)
        return (time.perf_counter() - t0) / ROUNDS
    finally:
        gc.enable()


def _guard_seconds(iterations: int = 200_000) -> float:
    """Per-check cost of the ``if _obs.enabled:`` disabled-path guard.

    The loop overhead is included, overstating the guard cost — fine,
    the gate should be conservative.
    """
    t0 = time.perf_counter()
    for _ in range(iterations):
        if _state.enabled:  # pragma: no cover - obs is off in this benchmark
            raise AssertionError("obs must be disabled while timing the guard")
    return (time.perf_counter() - t0) / iterations


def test_disabled_path_overhead_under_3pct():
    """Tentpole gate: guards crossed per access cost <3% of the access."""
    obs.disable()
    store = _warm_store()
    access_s = _access_seconds(store)
    guard_s = _guard_seconds()
    overhead = (guard_s * GUARDS_PER_ACCESS) / access_s
    record_bench(
        "obs.disabled_overhead_fraction",
        round(overhead, 6),
        unit="fraction",
        higher_is_better=False,
    )
    # Trajectory record of the budget itself: a later PR that grows the
    # guard count shows up in the history next to the overhead it buys.
    record_bench(
        "obs.guards_per_access",
        GUARDS_PER_ACCESS,
        unit="guards",
        higher_is_better=False,
        gate=False,
    )
    print(
        f"\n[obs overhead] guard {guard_s * 1e9:.1f} ns x {GUARDS_PER_ACCESS} "
        f"vs access {access_s * 1e6:.1f} us -> {overhead:.4%} (gate <3%)"
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled instrumentation costs {overhead:.2%} of a warm access "
        f"({guard_s * 1e9:.0f} ns/guard x {GUARDS_PER_ACCESS}); "
        f"gate is {MAX_DISABLED_OVERHEAD:.0%}"
    )


def test_enabled_capture_slowdown_recorded():
    """Trajectory record: full capture vs disabled (informational, ungated)."""
    obs.disable()
    store = _warm_store()
    disabled_s = _access_seconds(store)
    with obs.capture():
        enabled_s = _access_seconds(store)
    slowdown = enabled_s / disabled_s
    record_bench(
        "obs.enabled_capture_slowdown",
        round(slowdown, 3),
        unit="x",
        higher_is_better=False,
        gate=False,
    )
    print(
        f"\n[obs overhead] capture on: {enabled_s * 1e6:.1f} us/access "
        f"vs off: {disabled_s * 1e6:.1f} us -> {slowdown:.2f}x"
    )
    # Sanity only: capture should never be catastrophic on a warm access.
    assert slowdown < 10.0
