"""Throughput scaling of the sharded, pipelined deployment (loopback).

Two scaling axes, each measured with real sockets on localhost:

* **shard count** — per-request *service time* is emulated with a small
  server-side delay so that capacity, not this machine's core count,
  is what the measurement exercises; aggregate throughput should grow
  near-linearly with shards because the deployment keeps every shard's
  pipeline full concurrently (§6.2.4's scale-out claim);
* **pipeline depth** — the same emulated delay stands in for a WAN round
  trip; depth D keeps D requests in flight so throughput approaches
  D× lockstep until the server's worker pool saturates.

Acceptance gates (asserted here, recorded under ``results/``):
4 shards ≥ 2× the 1-shard batch throughput, and depth 8 ≥ 2× lockstep.
"""

from conftest import record_bench, save_table

from repro.harness.report import render_table
from repro.transport.cluster import measure_pipeline_gain, measure_shard_scaling


def test_shard_scaling_throughput():
    rows = measure_shard_scaling(shard_counts=(1, 2, 4), num_requests=64, seed=0)
    save_table(
        "sharded_scaling",
        render_table("Batch throughput vs shard count (emulated 20 ms service time)", rows),
    )
    by_shards = {row["shards"]: row for row in rows}
    record_bench("sharded.speedup_4_vs_1", by_shards[4]["speedup_vs_1shard"], unit="x")
    record_bench(
        "sharded.service_rps_4shards",
        by_shards[4]["service_rps"],
        unit="ops/s",
        gate=False,
    )
    assert by_shards[2]["speedup_vs_1shard"] > 1.4
    assert by_shards[4]["speedup_vs_1shard"] >= 2.0


def test_pipeline_depth_throughput():
    rows = measure_pipeline_gain(depths=(1, 2, 8), num_requests=48, seed=0)
    save_table(
        "pipeline_depth",
        render_table("Pipelined throughput vs depth (emulated 10 ms RTT, 1 shard)", rows),
    )
    by_depth = {row["depth"]: row for row in rows}
    record_bench(
        "pipeline.speedup_depth8_vs_lockstep",
        by_depth[8]["speedup_vs_lockstep"],
        unit="x",
    )
    assert by_depth[2]["speedup_vs_lockstep"] > 1.2
    assert by_depth[8]["speedup_vs_lockstep"] >= 2.0
