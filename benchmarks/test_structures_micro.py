"""Microbenchmarks + round accounting for the oblivious data structures."""

import random

from conftest import save_table

from repro.harness.report import render_table
from repro.oram.structures import ObliviousMap, ObliviousQueue, ObliviousStack
from repro.sim.network import DATACENTER_RTT_MS


def test_structures_round_accounting(benchmark):
    """One table: accesses (= WAN rounds on the one-round ORAM) per op."""

    def run():
        rows = []
        stack = ObliviousStack(16, 8, rng=random.Random(1))
        before = stack.accesses
        for i in range(8):
            stack.push(bytes([i]) * 8)
        for _ in range(8):
            stack.pop()
        rows.append(
            {
                "structure": "stack",
                "operations": 16,
                "oram_accesses": stack.accesses - before,
                "rounds_per_op": (stack.accesses - before) / 16,
            }
        )
        queue = ObliviousQueue(16, 8, rng=random.Random(1))
        before = queue.accesses
        for i in range(8):
            queue.enqueue(bytes([i]) * 8)
        for _ in range(8):
            queue.dequeue()
        rows.append(
            {
                "structure": "queue",
                "operations": 16,
                "oram_accesses": queue.accesses - before,
                "rounds_per_op": (queue.accesses - before) / 16,
            }
        )
        omap = ObliviousMap(16, 8, rng=random.Random(1))
        before = omap.accesses
        for i in range(8):
            omap.put(f"k{i}".encode(), bytes([i]) * 8)
        for i in range(8):
            omap.get(f"k{i}".encode())
        rows.append(
            {
                "structure": "map",
                "operations": 16,
                "oram_accesses": omap.accesses - before,
                "rounds_per_op": (omap.accesses - before) / 16,
            }
        )
        rtt = DATACENTER_RTT_MS["oregon"]
        for row in rows:
            row["wan_ms_per_op_oregon"] = row["rounds_per_op"] * rtt
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "structures_rounds",
        render_table("Oblivious data structures: rounds per operation", rows),
    )
    by = {r["structure"]: r for r in rows}
    assert by["stack"]["rounds_per_op"] == 1.0
    assert by["queue"]["rounds_per_op"] == 2.0
    assert by["map"]["rounds_per_op"] == 1.0


def test_oblivious_stack_push_pop(benchmark):
    stack = ObliviousStack(64, 8, rng=random.Random(1))

    def cycle():
        stack.push(b"payload!")
        return stack.pop()

    assert benchmark(cycle) == b"payload!"
