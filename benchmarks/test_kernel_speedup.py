"""Kernel speedup gates: the batched crypto stack must beat the scalar path.

Times the three LBL proxy phases (``prepare`` / ``process`` / ``finalize``)
under four kernel configurations at the paper's default operating point
(160 B values, y=2 grouping, point-and-permute — §6 workload with both §10
optimizations):

* **scalar** — the per-label reference path (``batched=False``, no cache);
* **batched** — fused ``PrfContext`` label derivation + ``encrypt_many``
  table encryption, cache disabled (every access is a cold build);
* **batched+cache** — the stdlib kernel stack in steady state: a warm
  :class:`~repro.core.lbl.cache.LabelCache` whose entries carry prefetched
  next-epoch labels and AEAD key schedules, so ``prepare`` derives nothing;
* **vector** — ``crypto_backend="vector"``: the warm cache additionally
  carries keyed AEAD states, prefetched nonce/keystream blocks, and the
  next-epoch label blob, so a warm ``prepare`` is a numpy matrix build
  plus one tag MAC per table entry.

The three stdlib configurations are measured under
:func:`~repro.crypto.sha256_lanes.lanes_disabled` so they stay honest
baselines on hosts where the vector pipeline would otherwise engage.

Timing is **best-of-N**: each phase's score is its *minimum* over
``ROUNDS`` accesses.  Phase times here are single-digit milliseconds, where
mean-based scores swing 40%+ with background machine load; the minimum is
the repeatable hardware-limited time and is what the gates compare.

All gates are self-relative (same interpreter, same machine, same run), so
they hold on slow CI runners:

1. ``batched+cache`` prepare >= 3x ``scalar`` prepare — the original gate;
2. warm prepare >= 1.5x cold prepare — the cache must pay for itself;
3. cold batched prepare >= scalar prepare — batching alone must never lose
   (the CI smoke condition: fail if batched < scalar);
4. ``vector`` prepare >= 2x ``batched+cache`` prepare — the lane-pipeline
   tentpole gate;
5. ``vector`` whole-access >= 2x ``scalar`` whole-access, and >= 0.9x the
   stdlib warm stack — the prepare win must not be bought with a larger
   whole-access regression.

Warm ``finalize`` is expected to be *slower* than scalar finalize — it
absorbs the next epoch's label prefetch and key-schedule derivation, work
deliberately moved off the request-build critical path (the request is
already on the wire when finalize runs; see docs/performance.md).  The
vector finalize absorbs even more (keystream prefetch, label-blob join).
That work shift is therefore *gated as a floor, not fixed*: the warm
stack's ``finalize_ops_per_sec`` is recorded as a gated trajectory metric
in ``BENCH_history.json``, so the regression is bounded — it cannot
silently deepen past the 20% drift gate.

The measured ops/sec land in ``BENCH_kernels.json`` at the repo root.
"""

from __future__ import annotations

import gc
import json
import pathlib
import random
import time

import pytest
from conftest import record_bench

from repro.core.lbl import LblOrtoa
from repro.crypto import sha256_lanes as _lanes
from repro.types import Request, StoreConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernels.json"

#: The gate operating point (paper §6 defaults, both §10 optimizations on).
GATE_POINT = {"value_len": 160, "group_bits": 2, "point_and_permute": True}

#: Timed accesses per configuration; each phase scores its best (minimum)
#: round.  Scalar prepare is ~40 ms here, so this keeps the whole module
#: around ~10 s while giving the minimum enough draws to converge.
ROUNDS = 15

#: Gate thresholds (self-relative speedups).
GATE_BATCHED_CACHE_VS_SCALAR = 3.0
GATE_WARM_VS_COLD = 1.5
GATE_VECTOR_PREPARE_VS_WARM = 2.0
GATE_VECTOR_ACCESS_VS_SCALAR = 2.0
GATE_VECTOR_ACCESS_VS_WARM = 0.9


def _build(*, batched: bool, cache: bool, backend: str = "stdlib") -> LblOrtoa:
    config = StoreConfig(**GATE_POINT, label_cache_entries=-1 if cache else None)
    store = LblOrtoa(
        config, rng=random.Random(3), batched=batched, crypto_backend=backend
    )
    store.initialize({"k": bytes(config.value_len)})
    return store


def _time_phases(store: LblOrtoa, *, warm: bool) -> dict[str, float]:
    """Best-of-``ROUNDS`` ops/sec per phase for read accesses to one key.

    With ``warm`` the cache is primed first; each subsequent finalize
    prefetches the next epoch, so every timed prepare stays warm —
    steady-state behaviour for a hot key, not a one-off best case.
    """
    proxy, server = store.proxy, store.server
    request = Request.read("k")
    warmup = 3 if warm else 1
    for _ in range(warmup):
        store.access(request)

    prepare_s = process_s = finalize_s = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            lbl_request, _ = proxy.prepare(request)
            t1 = time.perf_counter()
            response, _ = server.process(lbl_request)
            t2 = time.perf_counter()
            proxy.finalize("k", response)
            t3 = time.perf_counter()
            prepare_s = min(prepare_s, t1 - t0)
            process_s = min(process_s, t2 - t1)
            finalize_s = min(finalize_s, t3 - t2)
    finally:
        gc.enable()
    return {
        "prepare_ops_per_sec": round(1.0 / prepare_s, 2),
        "process_ops_per_sec": round(1.0 / process_s, 2),
        "finalize_ops_per_sec": round(1.0 / finalize_s, 2),
        "access_ops_per_sec": round(1.0 / (prepare_s + process_s + finalize_s), 2),
    }


@pytest.fixture(scope="module")
def measured() -> dict[str, dict[str, float]]:
    with _lanes.lanes_disabled():
        results = {
            "scalar": _time_phases(_build(batched=False, cache=False), warm=False),
            "batched": _time_phases(_build(batched=True, cache=False), warm=False),
            "batched+cache": _time_phases(
                _build(batched=True, cache=True), warm=True
            ),
        }
    results["vector"] = _time_phases(
        _build(batched=True, cache=True, backend="vector"), warm=True
    )
    prepare = {name: phases["prepare_ops_per_sec"] for name, phases in results.items()}
    access = {name: phases["access_ops_per_sec"] for name, phases in results.items()}
    payload = {
        "config": dict(GATE_POINT, rounds=ROUNDS, timing="best-of-rounds"),
        "kernels": results,
        "speedups": {
            "batched_cache_vs_scalar_prepare": round(
                prepare["batched+cache"] / prepare["scalar"], 2
            ),
            "warm_vs_cold_prepare": round(
                prepare["batched+cache"] / prepare["batched"], 2
            ),
            "batched_cold_vs_scalar_prepare": round(
                prepare["batched"] / prepare["scalar"], 2
            ),
            "vector_prepare_vs_warm": round(
                prepare["vector"] / prepare["batched+cache"], 2
            ),
            "vector_access_vs_scalar": round(
                access["vector"] / access["scalar"], 2
            ),
            "vector_access_vs_warm": round(
                access["vector"] / access["batched+cache"], 2
            ),
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n[kernel gates] {json.dumps(payload['speedups'])}")
    print(f"[saved to {BENCH_JSON}]")
    # Trajectory: speedup ratios are self-relative so they gate across
    # machines; raw prepare ops/sec ride along ungated.  The warm stack's
    # finalize throughput is gated to bound the deliberate work shift (see
    # module docstring).
    for name, speedup in payload["speedups"].items():
        record_bench(f"kernels.{name}", speedup, unit="x")
    record_bench(
        "kernels.finalize_ops_per_sec",
        results["batched+cache"]["finalize_ops_per_sec"],
        unit="ops/s",
    )
    for name, ops in prepare.items():
        record_bench(
            f"kernels.{name}.prepare_ops_per_sec", ops, unit="ops/s", gate=False
        )
    return results


def test_batched_cache_beats_scalar_3x(measured):
    """Stdlib-stack gate: warm kernel stack >= 3x the scalar prepare path."""
    warm = measured["batched+cache"]["prepare_ops_per_sec"]
    scalar = measured["scalar"]["prepare_ops_per_sec"]
    assert warm >= GATE_BATCHED_CACHE_VS_SCALAR * scalar, (
        f"batched+cache prepare {warm} ops/s < "
        f"{GATE_BATCHED_CACHE_VS_SCALAR}x scalar ({scalar} ops/s)"
    )


def test_warm_cache_beats_cold_1_5x(measured):
    """Cache gate: a warm prepare >= 1.5x a cold batched prepare."""
    warm = measured["batched+cache"]["prepare_ops_per_sec"]
    cold = measured["batched"]["prepare_ops_per_sec"]
    assert warm >= GATE_WARM_VS_COLD * cold, (
        f"warm prepare {warm} ops/s < {GATE_WARM_VS_COLD}x cold ({cold} ops/s)"
    )


def test_batched_never_loses_to_scalar(measured):
    """CI smoke condition: fail outright if batched < scalar."""
    cold = measured["batched"]["prepare_ops_per_sec"]
    scalar = measured["scalar"]["prepare_ops_per_sec"]
    assert cold >= scalar, f"batched prepare {cold} ops/s < scalar {scalar} ops/s"


def test_vector_prepare_beats_warm_2x(measured):
    """Tentpole gate: vector warm prepare >= 2x the stdlib warm prepare."""
    vector = measured["vector"]["prepare_ops_per_sec"]
    warm = measured["batched+cache"]["prepare_ops_per_sec"]
    assert vector >= GATE_VECTOR_PREPARE_VS_WARM * warm, (
        f"vector prepare {vector} ops/s < "
        f"{GATE_VECTOR_PREPARE_VS_WARM}x batched+cache ({warm} ops/s)"
    )


def test_vector_access_no_regression(measured):
    """The prepare win must carry the whole access, not just one phase."""
    vector = measured["vector"]["access_ops_per_sec"]
    scalar = measured["scalar"]["access_ops_per_sec"]
    warm = measured["batched+cache"]["access_ops_per_sec"]
    assert vector >= GATE_VECTOR_ACCESS_VS_SCALAR * scalar, (
        f"vector access {vector} ops/s < "
        f"{GATE_VECTOR_ACCESS_VS_SCALAR}x scalar ({scalar} ops/s)"
    )
    assert vector >= GATE_VECTOR_ACCESS_VS_WARM * warm, (
        f"vector access {vector} ops/s < "
        f"{GATE_VECTOR_ACCESS_VS_WARM}x batched+cache ({warm} ops/s)"
    )


def test_bench_json_written(measured):
    """The artifact exists, parses, and carries every kernel row."""
    payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    assert set(payload["kernels"]) == {"scalar", "batched", "batched+cache", "vector"}
    for phases in payload["kernels"].values():
        assert set(phases) == {
            "prepare_ops_per_sec",
            "process_ops_per_sec",
            "finalize_ops_per_sec",
            "access_ops_per_sec",
        }
