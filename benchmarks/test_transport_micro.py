"""Real-wall-clock benchmarks of the TCP transport (loopback).

Unlike the figure benchmarks (simulated WAN), these time actual socket
round trips on localhost — the end-to-end software overhead a deployment
adds on top of network latency.

The LBL paths run over **both** transports: the threaded
:class:`~repro.transport.LblTcpServer` and the event-loop
:class:`~repro.transport.AsyncLblServer`.  The comparison tests gate the
async transport's two promises from ROADMAP item 1: throughput at low
concurrency no worse than the threaded stack, and a bounded p99 while the
server is holding 1k+ concurrent connections under admission-control
overload.
"""

import asyncio
import random
import statistics
import time

import pytest

from conftest import record_bench
from repro.tee.attestation import AttestationService, measure_code
from repro.tee.enclave import ENCLAVE_CODE_IDENTITY
from repro.transport import (
    AsyncLblServer,
    LblTcpServer,
    RemoteLblOrtoa,
    RemoteTeeOrtoa,
    TeeTcpServer,
    make_pipelined_client,
)
from repro.transport.server import OBS_DUMP_TAG, OBS_PULL_TAG
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=160, group_bits=2, point_and_permute=True)

#: Idempotent control frame, repeatable at will (unlike a LOAD, which is
#: rejected as a duplicate on re-send): isolates transport overhead
#: (framing, mux, scheduling) from crypto.
PING = bytes([OBS_PULL_TAG])


def make_server(transport: str):
    """One started LBL server of either flavor (same wire format)."""
    if transport == "thread":
        server = LblTcpServer(point_and_permute=True)
        server.serve_in_background()
        return server
    server = AsyncLblServer(point_and_permute=True)
    server.start()
    return server


@pytest.fixture(params=["thread", "async"])
def lbl_pair(request):
    server = make_server(request.param)
    client = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(1))
    client.initialize({"k": bytes(160)})
    yield server, client
    client.close()
    server.close()


def test_lbl_tcp_access_roundtrip(benchmark, lbl_pair):
    """One full oblivious access over a real (loopback) socket, 160 B value."""
    _server, client = lbl_pair
    transcript = benchmark(client.access, Request.read("k"))
    assert transcript.num_rounds == 1


# --------------------------------------------------------------------- #
# Thread vs async pipelined throughput (low concurrency)
# --------------------------------------------------------------------- #


def _pipelined_rps(transport: str, num_requests: int = 2000, depth: int = 32) -> float:
    """Control-frame requests/sec through the pipelined client stack."""
    with make_server(transport) as server:
        with make_pipelined_client(server.address, transport=transport) as client:
            assert client.request(PING)[:1] == bytes([OBS_DUMP_TAG])  # warm up
            start = time.perf_counter()
            window = []
            for _ in range(num_requests):
                if len(window) >= depth:
                    window.pop(0).result(30.0)
                window.append(client.submit(PING))
            for future in window:
                future.result(30.0)
            elapsed = time.perf_counter() - start
    return num_requests / elapsed


def test_async_throughput_vs_threaded():
    """Async transport must not lose throughput at low concurrency.

    The event loop's win is scale; this pins down that it does not cost
    the common case.  The ratio (not the raw rps) is gated in the BENCH
    trajectory — raw numbers do not compare across machines.
    """
    # Keep the best of three runs each: peak throughput is far less
    # sensitive to a transient stall from an unrelated process than a
    # single sample on a shared single-core machine.
    thread_rps = max(_pipelined_rps("thread") for _ in range(3))
    async_rps = max(_pipelined_rps("async") for _ in range(3))
    ratio = async_rps / thread_rps
    record_bench(
        "transport.async.low_concurrency_rps", async_rps,
        unit="req/s", gate=False,
    )
    record_bench(
        "transport.thread.low_concurrency_rps", thread_rps,
        unit="req/s", gate=False,
    )
    record_bench(
        "transport.async_vs_thread.throughput_ratio", ratio,
        unit="x", higher_is_better=True, gate=False,
    )
    # The gated metric is capped at parity: the claim under test is
    # "async costs nothing at low concurrency", and a lucky >1.0 sample
    # must not ratchet the trajectory's baseline above the claim itself.
    record_bench(
        "transport.async_vs_thread.parity", min(ratio, 1.0),
        unit="x", higher_is_better=True, gate=True,
    )
    # Single-core CI machines jitter; require parity within tolerance, not
    # strict dominance on one sample.
    assert ratio >= 0.75, (
        f"async transport {async_rps:.0f} req/s vs threaded "
        f"{thread_rps:.0f} req/s (ratio {ratio:.2f} < 0.75)"
    )


# --------------------------------------------------------------------- #
# C1K: p99 bounded under overload at 1k+ concurrent connections
# --------------------------------------------------------------------- #


def test_c1k_p99_bounded_under_overload():
    """1000 connections on one loop; admitted requests keep a bounded p99.

    The in-flight window is far smaller than the connection count, so most
    requests are shed with OVERLOAD — the point of admission control is
    that the *admitted* requests' latency stays flat instead of every
    request queueing behind a thousand others.  Shed requests get their
    (tiny, constant) reply fast; both are measured.
    """
    payload = PING
    num_conns = 1000

    server = AsyncLblServer(max_in_flight=64, max_in_flight_per_conn=4)
    server.start()
    try:
        host, port = server.address

        async def one_conn(latencies, outcomes):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                from repro.transport import framing
                from repro.transport.framing import _LEN
                from repro.transport.server import OVERLOAD_FRAME

                wrapped = framing.wrap_mux(1, payload)
                start = time.perf_counter()
                writer.write(_LEN.pack(len(wrapped)) + wrapped)
                await writer.drain()
                header = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                reply = await reader.readexactly(length)
                latencies.append(time.perf_counter() - start)
                _rid, inner = framing.unwrap_mux(reply)
                outcomes.append("shed" if inner == OVERLOAD_FRAME else "served")
            finally:
                writer.close()

        async def storm():
            latencies: list[float] = []
            outcomes: list[str] = []
            await asyncio.gather(
                *(one_conn(latencies, outcomes) for _ in range(num_conns))
            )
            return latencies, outcomes

        latencies, outcomes = asyncio.run(storm())
    finally:
        server.close()

    assert len(latencies) == num_conns, "every connection must get a reply"
    served = outcomes.count("served")
    shed = outcomes.count("shed")
    assert served > 0, "admission control must admit some requests"
    latencies.sort()
    p99 = latencies[int(0.99 * (len(latencies) - 1))]
    p50 = statistics.median(latencies)
    record_bench("transport.async.c1k_connections", num_conns, unit="conns", gate=False)
    record_bench("transport.async.c1k_p99_seconds", p99, unit="s",
                 higher_is_better=False, gate=False)
    record_bench("transport.async.c1k_p99_over_p50", p99 / p50, unit="x",
                 higher_is_better=False, gate=False)
    # "Bounded" for a loopback echo under a 1000-way storm on shared CI
    # hardware: worst percentile still finishes in seconds, not minutes,
    # and nothing hangs (the gather above would deadlock on a lost reply).
    assert p99 < 10.0, f"p99 {p99:.3f}s under overload (served={served}, shed={shed})"


# --------------------------------------------------------------------- #
# TEE paths (threaded only: the enclave transport has no async twin)
# --------------------------------------------------------------------- #


def test_tee_tcp_access_roundtrip(benchmark):
    with TeeTcpServer() as server:
        server.serve_in_background()
        attestation = AttestationService(
            server.hardware, measure_code(ENCLAVE_CODE_IDENTITY)
        )
        client = RemoteTeeOrtoa(StoreConfig(value_len=160), server.address, attestation)
        client.initialize({"k": bytes(160)})
        try:
            transcript = benchmark(client.access, Request.read("k"))
            assert transcript.num_rounds == 1
        finally:
            client.close()


def test_tee_attestation_handshake(benchmark):
    """Full attest+verify+provision handshake cost (fresh connection each)."""
    with TeeTcpServer() as server:
        server.serve_in_background()
        attestation = AttestationService(
            server.hardware, measure_code(ENCLAVE_CODE_IDENTITY)
        )

        def handshake():
            client = RemoteTeeOrtoa(
                StoreConfig(value_len=16), server.address, attestation
            )
            client.close()

        benchmark.pedantic(handshake, rounds=5, iterations=1)
