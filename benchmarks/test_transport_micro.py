"""Real-wall-clock benchmarks of the TCP transport (loopback).

Unlike the figure benchmarks (simulated WAN), these time actual socket
round trips on localhost — the end-to-end software overhead a deployment
adds on top of network latency.
"""

import random

import pytest

from repro.tee.attestation import AttestationService, measure_code
from repro.tee.enclave import ENCLAVE_CODE_IDENTITY
from repro.transport import LblTcpServer, RemoteLblOrtoa, RemoteTeeOrtoa, TeeTcpServer
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=160, group_bits=2, point_and_permute=True)


@pytest.fixture()
def lbl_pair():
    server = LblTcpServer(point_and_permute=True)
    server.serve_in_background()
    client = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(1))
    client.initialize({"k": bytes(160)})
    yield server, client
    client.close()
    server.shutdown()
    server.server_close()


def test_lbl_tcp_access_roundtrip(benchmark, lbl_pair):
    """One full oblivious access over a real (loopback) socket, 160 B value."""
    _server, client = lbl_pair
    transcript = benchmark(client.access, Request.read("k"))
    assert transcript.num_rounds == 1


def test_tee_tcp_access_roundtrip(benchmark):
    server = TeeTcpServer()
    server.serve_in_background()
    attestation = AttestationService(
        server.hardware, measure_code(ENCLAVE_CODE_IDENTITY)
    )
    client = RemoteTeeOrtoa(StoreConfig(value_len=160), server.address, attestation)
    client.initialize({"k": bytes(160)})
    try:
        transcript = benchmark(client.access, Request.read("k"))
        assert transcript.num_rounds == 1
    finally:
        client.close()
        server.shutdown()
        server.server_close()


def test_tee_attestation_handshake(benchmark):
    """Full attest+verify+provision handshake cost (fresh connection each)."""
    server = TeeTcpServer()
    server.serve_in_background()
    attestation = AttestationService(
        server.hardware, measure_code(ENCLAVE_CODE_IDENTITY)
    )

    def handshake():
        client = RemoteTeeOrtoa(StoreConfig(value_len=16), server.address, attestation)
        client.close()

    try:
        benchmark.pedantic(handshake, rounds=5, iterations=1)
    finally:
        server.shutdown()
        server.server_close()
