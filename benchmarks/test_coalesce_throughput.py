"""Coalescing gates: fused windows must beat per-request prepare dispatch.

Eight client threads issue cold prepares to distinct keys at a
**dispatch-bound** operating point (2 B values, y=2, point-and-permute —
small enough that per-request dispatch overhead rivals the crypto, which
is the regime the coalescing stage exists for).  Three configurations:

* **per-client** — one client on the pre-coalescing procpool path: every
  prepare is its own pickled worker round trip;
* **per-request** — eight concurrent clients on that same path (IPC round
  trips overlap, but each request still pays its own dispatch);
* **coalesced** — eight concurrent clients through the coalescing stage
  with in-process fused derivation: each window is one
  ``labels_for_epochs`` dispatch plus one window-wide ``encrypt_many``.

**Why the gate is 1.3x and not the 2x headline.**  The 2x target assumes
the 8-wide SHA-256 lane engine engages, so fusing eight requests' tails
into one dispatch fills lanes that per-request dispatch leaves idle.  On
hosts where ``sha256_lanes.calibrate()`` disables the lanes (the
numpy-emulated compression loses to OpenSSL's C hashing — typical on
small CI containers) and a single core serializes all crypto anyway, the
fused win is dispatch amortization only and measures ~1.5-1.9x here.  The
pytest gate asserts a conservative 1.3x floor that is robust across
noisy runners; the recorded ``kernels.coalesce_speedup`` trajectory is
additionally gated by ``repro bench check`` (20% drift against the best
recorded run), which tightens the bound around whatever this host
actually achieves.  On lane-enabled multi-core hosts the same metric
records the full fused-lane speedup.

A second pass measures the latency cost of the window: a *lone* request
waits out the flush timer before its window fires, so single-client
latency grows by roughly the window length.  The trade-off table lands in
``results/coalesce_tradeoff.txt`` and feeds docs/performance.md.

Aggregate throughput is wall time over a fixed request count, best-of-N
runs; lone-request latencies are best-of-N, matching
``test_kernel_speedup.py`` conventions.  The GIL switch interval is
pinned low for the module — the default 5 ms quantum exceeds the flush
window, which would let thread scheduling, not the coalescer, decide
window fill.
"""

from __future__ import annotations

import random
import sys
import threading
import time

import pytest
from conftest import record_bench, save_table

from repro.core.lbl import LblOrtoa
from repro.core.lbl.parallel import ParallelPrepareEngine
from repro.types import Request, StoreConfig

#: Dispatch-bound operating point: tiny values make per-request overhead
#: a large share of prepare cost, which is what coalescing eliminates.
GATE_POINT = {"value_len": 2, "group_bits": 2, "point_and_permute": True}

CLIENTS = 8
ROUNDS = 20  #: prepares per client per aggregate run
RUNS = 4  #: best (max aggregate ops/s) of this many runs

#: Fused windows must beat the concurrent per-request procpool path by
#: this factor (see module docstring for why this is a floor, not the
#: lane-enabled 2x headline).
GATE_COALESCE_SPEEDUP = 1.3

COALESCE_WINDOW = 0.005
COALESCE_BATCH = CLIENTS

#: Flush windows for the latency trade-off table (seconds).
TRADEOFF_WINDOWS = (0.0005, 0.002, 0.005)


@pytest.fixture(scope="module", autouse=True)
def _fast_gil_switch():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    yield
    sys.setswitchinterval(previous)


def _build() -> LblOrtoa:
    config = StoreConfig(**GATE_POINT, label_cache_entries=None)
    store = LblOrtoa(config, rng=random.Random(7), batched=True)
    store.initialize(
        {f"k{i}": bytes(config.value_len) for i in range(CLIENTS)}
    )
    return store


def _aggregate_ops(engine: ParallelPrepareEngine) -> float:
    """Best-of-``RUNS`` aggregate prepare throughput over ``CLIENTS`` threads.

    Every thread owns one key, so windows fuse fully (no same-key
    chaining) and counters advance monotonically — each prepare is cold.
    """
    best = 0.0
    for _ in range(RUNS):
        barrier = threading.Barrier(CLIENTS + 1)

        def client(position: int) -> None:
            request = Request.read(f"k{position}")
            barrier.wait()
            for _ in range(ROUNDS):
                engine.prepare_one(request)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        t0 = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - t0
        best = max(best, CLIENTS * ROUNDS / elapsed)
    return round(best, 2)


def _single_client_ops(engine: ParallelPrepareEngine) -> float:
    """Best-of-``RUNS`` single-client prepare throughput."""
    request = Request.read("k0")
    for _ in range(5):
        engine.prepare_one(request)
    best = 0.0
    for _ in range(RUNS):
        t0 = time.perf_counter()
        for _ in range(25):
            engine.prepare_one(request)
        best = max(best, 25 / (time.perf_counter() - t0))
    return round(best, 2)


def _lone_latency(store: LblOrtoa, window: float) -> float:
    """Best-of-5 single-request prepare latency at the given flush window."""
    with ParallelPrepareEngine(
        store.proxy,
        workers=0,
        coalesce_window=window,
        coalesce_batch=COALESCE_BATCH,
    ) as engine:
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            engine.prepare_one(Request.read("k0"))
            best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def measured() -> dict[str, float]:
    store = _build()
    with ParallelPrepareEngine(
        store.proxy, workers=2, backend="procpool"
    ) as engine:
        per_client = _single_client_ops(engine)
        per_request = _aggregate_ops(engine)
    with ParallelPrepareEngine(
        store.proxy,
        workers=0,
        coalesce_window=COALESCE_WINDOW,
        coalesce_batch=COALESCE_BATCH,
    ) as engine:
        engine.prepare_one(Request.read("k0"))  # warm code paths
        coalesced = _aggregate_ops(engine)
    results = {
        "per_client_procpool_ops_per_sec": per_client,
        "per_request_agg_ops_per_sec": per_request,
        "coalesced_agg_ops_per_sec": coalesced,
        "coalesce_speedup": round(coalesced / per_request, 2),
        "coalesce_vs_per_client": round(coalesced / per_client, 2),
    }
    record_bench(
        "kernels.coalesce_speedup", results["coalesce_speedup"], unit="x"
    )
    record_bench(
        "kernels.coalesced_agg_ops_per_sec", coalesced, unit="ops/s", gate=False
    )
    record_bench(
        "kernels.coalesce_vs_per_client",
        results["coalesce_vs_per_client"],
        unit="x",
        gate=False,
    )
    return results


def test_coalesced_beats_per_request_dispatch(measured):
    """Tentpole gate: fused windows beat the per-request procpool path."""
    assert measured["coalesce_speedup"] >= GATE_COALESCE_SPEEDUP, (
        f"coalesced {measured['coalesced_agg_ops_per_sec']} agg ops/s < "
        f"{GATE_COALESCE_SPEEDUP}x the 8-client per-request path "
        f"({measured['per_request_agg_ops_per_sec']} agg ops/s)"
    )


def test_aggregate_beats_single_client(measured):
    """Eight coalesced clients must out-run one per-client procpool client —
    concurrency has to scale, not serialize."""
    assert (
        measured["coalesced_agg_ops_per_sec"]
        > measured["per_client_procpool_ops_per_sec"]
    ), measured


def test_window_latency_tradeoff_table(measured):
    """Render the window/latency trade-off table for docs/performance.md.

    Lone-request latency at window W is bounded below by W (the leader
    waits out the timer); the table makes that cost explicit next to the
    aggregate win, so deployments pick a window against their latency SLO.
    """
    store = _build()
    rows = [
        (window, _lone_latency(store, window)) for window in TRADEOFF_WINDOWS
    ]
    lines = [
        "Coalescing window trade-off (8 clients, cold prepares, 2 B values)",
        f"  per-client procpool:   "
        f"{measured['per_client_procpool_ops_per_sec']} ops/s (1 client)",
        f"  per-request aggregate: "
        f"{measured['per_request_agg_ops_per_sec']} ops/s (8 clients)",
        f"  coalesced aggregate:   "
        f"{measured['coalesced_agg_ops_per_sec']} ops/s (8 clients, "
        f"{measured['coalesce_speedup']}x per-request)",
        "",
        "  window      lone-request prepare latency",
    ]
    for window, latency in rows:
        lines.append(f"  {window * 1e6:7.0f}µs  {latency * 1e3:10.2f} ms")
    save_table("coalesce_tradeoff", "\n".join(lines))
    # A lone request must not stall much past its window + a cold prepare:
    # a generous bound that just catches a wedged timer loop.
    for window, latency in rows:
        assert latency < window + 0.5, (window, latency)
