"""Ablation: paper-calibrated vs machine-measured compute costs.

Figure reproduction uses ``CostModel.paper_like`` (constants matching the
authors' C++/AES-NI testbed).  ``CostModel.measured`` instead times this
library's pure-Python primitives, which are ~5-30x slower per op.  The
measured outcome is itself a clean instance of the paper's §6.3.2 decision
rule: with Python-speed label crypto, ``p`` alone exceeds the Oregon RTT
(``c = 21.8 ms``), so ``c < p + o`` and the 2RTT baseline rightfully wins —
LBL-ORTOA's advantage *requires* hardware-speed symmetric crypto, which the
paper's testbed (and any production deployment) has.
"""

import pytest
from conftest import save_table

from repro.harness import CostModel, DeploymentSpec, run_experiment
from repro.harness.report import render_table


def test_ablation_cost_model(benchmark):
    def run():
        measured_model = CostModel.measured(samples=500)
        rows = []
        for model_name, model in (
            ("paper-like", CostModel.paper_like()),
            ("python-measured", measured_model),
        ):
            for protocol in ("lbl", "baseline"):
                result = run_experiment(
                    DeploymentSpec(protocol=protocol, duration_ms=1500), model
                )
                rows.append(
                    {
                        "cost_model": model_name,
                        "protocol": protocol,
                        "throughput_ops_s": result.metrics.throughput_ops_per_s,
                        "avg_latency_ms": result.metrics.avg_latency_ms,
                        "proxy_compute_ms": result.avg_proxy_compute_ms,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "ablation_costmodel",
        render_table("Ablation: paper-like vs measured compute costs", rows),
    )
    by = {(r["cost_model"], r["protocol"]): r for r in rows}

    # Python crypto is slower, so LBL compute grows...
    assert (
        by[("python-measured", "lbl")]["proxy_compute_ms"]
        > by[("paper-like", "lbl")]["proxy_compute_ms"]
    )
    # ...while the baseline (one AEAD round trip) barely moves.
    assert by[("python-measured", "baseline")]["avg_latency_ms"] == pytest.approx(
        by[("paper-like", "baseline")]["avg_latency_ms"], rel=0.01
    )
    # The §6.3.2 rule in action: if measured p + o exceeds the Oregon RTT,
    # the baseline must win; if not, LBL must.  Either way the rule holds.
    lbl = by[("python-measured", "lbl")]
    baseline = by[("python-measured", "baseline")]
    rule_picks_lbl = lbl["proxy_compute_ms"] < 21.84
    measured_lbl_wins = lbl["avg_latency_ms"] < baseline["avg_latency_ms"]
    assert rule_picks_lbl == measured_lbl_wins
