"""Figure 2c: performance vs percentage of writes.

Paper expectation (§6.2.2): flat — the access-oblivious guarantee means the
read/write mix cannot show up in throughput or latency (LBL stays within
~40 ops/s and ~2 ms across the whole sweep).
"""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table


def test_fig2c_write_ratio(benchmark):
    rows = benchmark.pedantic(experiments.figure2c, rounds=1, iterations=1)
    save_table(
        "fig2c_write_ratio",
        render_table("Figure 2c: write-percentage sweep (must be flat)", rows),
    )
    for protocol in ("lbl", "tee"):
        series = [r for r in rows if r["protocol"] == protocol]
        throughputs = [r["throughput_ops_s"] for r in series]
        latencies = [r["avg_latency_ms"] for r in series]
        # Paper: max spread 40 ops/s and 2 ms for LBL; allow similar slack.
        assert max(throughputs) - min(throughputs) < 50, protocol
        assert max(latencies) - min(latencies) < 2.0, protocol
