"""Figure 6 (appendix): storage vs communication overhead factors vs y.

Paper expectations (§10.1): storage factor falls as 1/y, communication is
flat from y=1 to y=2 then grows as 2^y/y; the total is minimized at y=2.
"""

from conftest import save_table

from repro.analysis.overhead import measured_factors, optimal_y
from repro.harness import experiments
from repro.harness.report import render_table


def test_fig6_yfactor(benchmark):
    rows = benchmark.pedantic(experiments.figure6, rounds=1, iterations=1)
    save_table(
        "fig6_yfactor",
        render_table("Figure 6: overhead factors vs y (optimal y = 2)", rows),
    )
    by = {r["y"]: r for r in rows}
    assert by[1]["communication_factor"] == by[2]["communication_factor"] == 2.0
    assert by[2]["total_overhead"] < by[1]["total_overhead"]
    assert by[3]["total_overhead"] > by[2]["total_overhead"]
    assert optimal_y() == 2


def test_fig6_measured_matches_analytic(benchmark):
    """The analytic curves must match byte-counts of the real protocol."""

    def measure():
        return {y: measured_factors(y, value_len=16) for y in (1, 2, 3)}

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    for y, factors in measured.items():
        assert abs(factors.storage_factor - 1.0 / y) < 0.02
        assert abs(factors.communication_factor - (1 << y) / y) < 0.35  # padding
