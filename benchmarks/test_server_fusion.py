"""Server-fusion gates: fused access windows must beat per-request dispatch.

Eight clients' pre-prepared access requests hit the untrusted store at a
**dispatch-bound** operating point (1 B values, y=8, point-and-permute — a
request opens exactly ONE designated AEAD entry, so per-request dispatch
overhead rivals the crypto, which is the regime server-side fusion exists
for).  Two configurations:

* **per-request** — the unfused server path: each of the window's requests
  executes its own ``LblServer.process`` (own KV get/put, own ``open_many``
  call with its per-call setup, own response/ops construction).  On a
  GIL-bound host this sequential execution is *exactly* what an unfused
  server does with eight concurrent clients: their requests serialize
  through the interpreter whatever the transport does.
* **fused** — the same eight concurrent requests as one coalescer window:
  one storage multi-get, one window-wide ``aead.open_many`` over all
  designated pairs, one multi-put of rotated labels, one shared (frozen)
  per-window ops descriptor.

**Why the gate is 1.3x and not more.**  The fused win on a lane-disabled
host (``sha256_lanes.calibrate()`` turns the numpy lanes off on small CI
containers — this host included) is dispatch amortization only: the
window shares one ``open_many`` invocation's setup, one storage access
pair, and one ops descriptor where the per-request path pays each of
those eight times.  That measures ~1.4–1.5x here; the pytest gate asserts
a conservative 1.3x floor robust across noisy runners, and the recorded
``kernels.server_fusion_speedup`` trajectory is additionally gated by
``repro bench check`` (drift against the best recorded run).  On
lane-enabled hosts the same fused window crosses the vectorization
threshold that single requests never reach (a y=8 request carries one
pair; the window carries eight), so the metric records the lane win on
top.

A second pass measures the latency cost of the window through the
*coalescer* (leader/follower synchronization included): a *lone* request
waits out the flush timer before its window fires, so single-client
latency grows by roughly the window length.  The trade-off table lands in
``results/server_fusion_tradeoff.txt`` and feeds docs/performance.md.

Throughput is wall time over a fixed request count, best-of-N runs,
matching ``test_coalesce_throughput.py`` conventions.  Requests are
pre-prepared per key round by round (a prepare against epoch *e* is only
valid against epoch-*e* server state, so each round's requests are built
against the state the previous round installs); the timed section is
server-side dispatch only.
"""

from __future__ import annotations

import random
import time

import pytest
from conftest import record_bench, save_table

from repro.core.lbl import LblOrtoa
from repro.core.lbl.server import LblServer
from repro.core.lbl.server_coalesce import ServerAccessCoalescer
from repro.types import Request, StoreConfig

#: Dispatch-bound operating point: a 1 B value at y=8 is a single group,
#: so the server opens exactly one designated entry per request and the
#: per-request dispatch overhead is a large share of total cost.
GATE_POINT = {"value_len": 1, "group_bits": 8, "point_and_permute": True}

CLIENTS = 8  #: window width — matches DEFAULT_MAX_BATCH and the lane width
ROUNDS = 40  #: windows per timed run
RUNS = 5  #: best (max ops/s) of this many runs

#: Fused windows must beat per-request dispatch by this factor (see module
#: docstring for why this floor is below the measured 1.4-1.5x).
GATE_FUSION_SPEEDUP = 1.3

#: Flush windows for the latency trade-off table (seconds).
TRADEOFF_WINDOWS = (0.0002, 0.001, 0.005)


def _clone_server(server: LblServer) -> LblServer:
    clone = LblServer(point_and_permute=server.point_and_permute)
    for encoded_key, labels in server.store._data.items():
        clone.load(encoded_key, list(labels))
    return clone


def _build_chains() -> tuple[LblServer, list[list]]:
    """Pre-prepare ``ROUNDS`` windows of ``CLIENTS`` distinct-key requests.

    Each round's requests are prepared against the server state the
    previous round installs (a scratch server advances in lockstep), so a
    timed run can replay the whole schedule against a fresh clone of the
    *initial* state — every request meets exactly the labels it was
    prepared for, whichever dispatch path serves it.
    """
    config = StoreConfig(**GATE_POINT)
    store = LblOrtoa(config, rng=random.Random(11), batched=True)
    keys = [f"k{i}" for i in range(CLIENTS)]
    store.initialize({key: bytes(config.value_len) for key in keys})
    initial = _clone_server(store.server)
    scratch = store.server
    windows: list[list] = []
    for _ in range(ROUNDS):
        window = []
        for key in keys:
            built, _ops = store.proxy.prepare(Request.read(key))
            window.append(built)
            response, _server_ops = scratch.process(built)
            store.proxy.finalize(key, response)
        windows.append(window)
    return initial, windows


def _per_request_run(initial: LblServer, windows: list[list]) -> float:
    """One timed run of unfused per-request dispatch, in ops/s."""
    server = _clone_server(initial)
    t0 = time.perf_counter()
    for window in windows:
        for request in window:
            server.process(request)
    return CLIENTS * ROUNDS / (time.perf_counter() - t0)


def _fused_run(initial: LblServer, windows: list[list]) -> float:
    """One timed run of fused window dispatch, in ops/s."""
    server = _clone_server(initial)
    t0 = time.perf_counter()
    for window in windows:
        results = server.process_many(window)
        if any(isinstance(item, Exception) for item in results):
            raise AssertionError("fused window failed mid-benchmark")
    return CLIENTS * ROUNDS / (time.perf_counter() - t0)


def _lone_latency(initial: LblServer, windows: list[list], window_s: float) -> float:
    """Best-of-5 lone-request latency through the coalescer at ``window_s``.

    A lone caller is its own leader: it waits out the full flush timer
    before its (single-entry) window fires — the latency price a deployment
    pays for fusion when concurrency is NOT there to amortize it.
    """
    best = float("inf")
    for _ in range(5):
        server = _clone_server(initial)
        coalescer = ServerAccessCoalescer(
            server, window=window_s, max_batch=CLIENTS
        )
        request = windows[0][0]
        t0 = time.perf_counter()
        coalescer.process(request)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def measured() -> dict[str, float]:
    initial, windows = _build_chains()
    # Warm both code paths, then interleave the timed runs so machine-load
    # drift hits both configurations alike; best-of-RUNS per path.
    _per_request_run(initial, windows)
    _fused_run(initial, windows)
    per_request = 0.0
    fused = 0.0
    for _ in range(RUNS):
        per_request = max(per_request, _per_request_run(initial, windows))
        fused = max(fused, _fused_run(initial, windows))
    per_request = round(per_request, 2)
    fused = round(fused, 2)
    results = {
        "per_request_ops_per_sec": per_request,
        "fused_ops_per_sec": fused,
        "server_fusion_speedup": round(fused / per_request, 2),
    }
    record_bench(
        "kernels.server_fusion_speedup",
        results["server_fusion_speedup"],
        unit="x",
    )
    record_bench(
        "kernels.server_fused_ops_per_sec", fused, unit="ops/s", gate=False
    )
    return results


def test_fused_beats_per_request_dispatch(measured):
    """Tentpole gate: fused windows beat per-request server dispatch."""
    assert measured["server_fusion_speedup"] >= GATE_FUSION_SPEEDUP, (
        f"fused {measured['fused_ops_per_sec']} ops/s < "
        f"{GATE_FUSION_SPEEDUP}x the per-request path "
        f"({measured['per_request_ops_per_sec']} ops/s)"
    )


def test_window_latency_tradeoff_table(measured):
    """Render the window/latency trade-off table for docs/performance.md.

    Lone-request latency at window W is bounded below by W (a lone leader
    waits out the timer before flushing itself); the table makes that cost
    explicit next to the fused win, so deployments pick ``server_window``
    against their latency SLO.
    """
    initial, windows = _build_chains()
    rows = [
        (window_s, _lone_latency(initial, windows, window_s))
        for window_s in TRADEOFF_WINDOWS
    ]
    lines = [
        "Server access-window trade-off "
        f"({CLIENTS}-request windows, 1 B values, y=8)",
        f"  per-request dispatch: "
        f"{measured['per_request_ops_per_sec']} ops/s",
        f"  fused window dispatch: {measured['fused_ops_per_sec']} ops/s "
        f"({measured['server_fusion_speedup']}x per-request)",
        "",
        "  server_window   lone-request access latency",
    ]
    for window_s, latency in rows:
        lines.append(f"  {window_s * 1e6:10.0f}µs  {latency * 1e3:12.2f} ms")
    save_table("server_fusion_tradeoff", "\n".join(lines))
    # A lone request must not stall much past its window: a generous bound
    # that just catches a wedged leader wait.
    for window_s, latency in rows:
        assert latency < window_s + 0.5, (window_s, latency)
