"""Figure 2d: performance vs database size (2^10 → 2^22 objects).

Paper expectations (§6.2.3): TEE flat throughout; LBL flat to 2^20 then a
graceful ~11% degradation at 2^22 (a single server holding more objects in
memory has fewer resources for the per-request label computation).
"""

import pytest
from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table


def test_fig2d_dbsize(benchmark):
    rows = benchmark.pedantic(experiments.figure2d, rounds=1, iterations=1)
    save_table(
        "fig2d_dbsize",
        render_table("Figure 2d: database-size sweep", rows),
    )
    by = {(r["protocol"], r["log2_objects"]): r for r in rows}

    # LBL: flat up to 2^20...
    lbl_small = by[("lbl", 10)]["throughput_ops_s"]
    lbl_1m = by[("lbl", 20)]["throughput_ops_s"]
    assert lbl_1m == pytest.approx(lbl_small, rel=0.03)
    # ...then degrades gracefully, ~10% at 2^22 (paper: 11%).
    lbl_4m = by[("lbl", 22)]["throughput_ops_s"]
    degradation = 1 - lbl_4m / lbl_1m
    assert 0.05 < degradation < 0.20, degradation

    # TEE: flat across the whole sweep.
    tee_series = [r["throughput_ops_s"] for r in rows if r["protocol"] == "tee"]
    assert max(tee_series) - min(tee_series) < 0.03 * max(tee_series)
