"""Ablation: workload skew (Zipf) and per-object lifetime.

FHE-ORTOA's budget is *per object* (§3.3), so skew is lethal: a Zipf-hot
key burns through its noise budget in a fraction of the uniform workload's
total accesses.  LBL-ORTOA's labels regenerate per access with no budget,
so skew is irrelevant to it — another practical argument for the label
design.
"""

import random

from conftest import save_table

from repro.core import FheOrtoa, LblOrtoa
from repro.crypto.fhe import FheParams
from repro.errors import NoiseBudgetExhausted
from repro.harness.report import render_table
from repro.types import StoreConfig
from repro.workloads.synthetic import RequestStream, WorkloadSpec

NUM_KEYS = 8
VALUE_LEN = 16


def _spec(zipf_s):
    return WorkloadSpec(
        keys=tuple(f"obj-{i}" for i in range(NUM_KEYS)),
        value_len=VALUE_LEN,
        write_fraction=0.5,
        zipf_s=zipf_s,
        seed=3,
    )


def _drive_fhe_until_exhaustion(zipf_s, cap=400):
    protocol = FheOrtoa(
        StoreConfig(value_len=VALUE_LEN), fhe_params=FheParams(n=32, q_bits=100)
    )
    protocol.initialize({f"obj-{i}": bytes(VALUE_LEN) for i in range(NUM_KEYS)})
    stream = RequestStream(_spec(zipf_s))
    served = 0
    try:
        for request in stream:
            if served >= cap:
                break
            protocol.access(request)
            served += 1
    except NoiseBudgetExhausted:
        pass
    return served


def test_ablation_skew(benchmark):
    def run():
        rows = []
        for zipf_s in (0.0, 1.2):
            fhe_served = _drive_fhe_until_exhaustion(zipf_s)
            # LBL under the same stream: every access must succeed with a
            # constant wire footprint.
            lbl = LblOrtoa(
                StoreConfig(value_len=VALUE_LEN, group_bits=2, point_and_permute=True),
                rng=random.Random(1),
            )
            lbl.initialize({f"obj-{i}": bytes(VALUE_LEN) for i in range(NUM_KEYS)})
            stream = RequestStream(_spec(zipf_s))
            sizes = {lbl.access(stream.next_request()).request_bytes for _ in range(60)}
            rows.append(
                {
                    "zipf_s": zipf_s,
                    "fhe_accesses_before_exhaustion": fhe_served,
                    "lbl_accesses_served": 60,
                    "lbl_request_sizes_distinct": len(sizes),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "ablation_skew",
        render_table("Ablation: Zipf skew vs per-object FHE lifetime", rows),
    )
    uniform, skewed = rows
    # Skew concentrates accesses on a hot object, so exhaustion comes sooner.
    assert skewed["fhe_accesses_before_exhaustion"] < uniform["fhe_accesses_before_exhaustion"]
    # LBL is indifferent: constant-size requests, no failures, either way.
    for row in rows:
        assert row["lbl_request_sizes_distinct"] == 1
