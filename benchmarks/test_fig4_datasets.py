"""Figure 4: the three real-world datasets (EHR, SmallBank, e-commerce).

Paper expectations (§6.4): ORTOA beats the 2RTT baseline on all three
applications; LBL's edge is largest for the smallest values (EHR, 10 B) and
smallest for the largest (SmallBank, 50 B); baseline latency is 1.7–1.9x
ORTOA's.
"""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table


def test_fig4_datasets(benchmark):
    rows = benchmark.pedantic(experiments.figure4, rounds=1, iterations=1)
    save_table(
        "fig4_datasets",
        render_table("Figure 4: real-world datasets (1M-object schemas)", rows),
    )
    by = {(r["dataset"], r["protocol"]): r for r in rows}

    lbl_ratios = {}
    for dataset in ("ehr", "smallbank", "ecommerce"):
        baseline = by[(dataset, "baseline")]
        for protocol in ("lbl", "tee"):
            ortoa = by[(dataset, protocol)]
            assert ortoa["throughput_ops_s"] > baseline["throughput_ops_s"], (
                dataset,
                protocol,
            )
            latency_ratio = baseline["avg_latency_ms"] / ortoa["avg_latency_ms"]
            assert 1.4 < latency_ratio < 2.1, (dataset, protocol, latency_ratio)
        lbl_ratios[dataset] = (
            by[(dataset, "lbl")]["throughput_ops_s"] / baseline["throughput_ops_s"]
        )

    # Value-size ordering of LBL's advantage: EHR (10 B) > e-commerce (40 B)
    # > SmallBank (50 B) — the paper reports 1.9x / 1.8x / 1.7x.
    assert lbl_ratios["ehr"] >= lbl_ratios["ecommerce"] >= lbl_ratios["smallbank"]

    save_table(
        "fig4_ratios",
        render_table(
            "Figure 4 headline: LBL throughput vs baseline per dataset",
            [{"dataset": k, "lbl_ratio": v} for k, v in lbl_ratios.items()],
        ),
    )
