"""Supporting microbenchmarks: the primitive costs that calibrate the DES.

These are true pytest-benchmark timings of this library's primitives (the
``CostModel.measured`` path); they also document how far pure-Python crypto
sits from the paper's C++/AES-NI testbed, which is why figure reproduction
uses ``CostModel.paper_like`` constants instead.
"""

import random

from repro.core.lbl import LblOrtoa
from repro.crypto import aead
from repro.crypto.fhe import FheParams, FheScheme
from repro.crypto.prf import Prf
from repro.types import Request, StoreConfig

KEY = b"k" * 16


def test_prf_label_derivation(benchmark):
    prf = Prf(b"m" * 32, out_bytes=16)
    label = benchmark(prf.evaluate, "label", "key", 3, 1, 42)
    assert len(label) == 16


def test_aead_encrypt_label(benchmark):
    ct = benchmark(aead.encrypt, KEY, b"l" * 16)
    assert len(ct) == aead.ciphertext_len(16)


def test_aead_decrypt_label(benchmark):
    ct = aead.encrypt(KEY, b"l" * 16)
    assert benchmark(aead.decrypt, KEY, ct) == b"l" * 16


def test_aead_failed_decrypt(benchmark):
    """The LBL server's wasted attempt (pre point-and-permute)."""
    ct = aead.encrypt(KEY, b"l" * 16)
    assert benchmark(aead.try_decrypt, b"w" * 16, ct) is None


def test_lbl_full_access_160b(benchmark):
    """One complete functional LBL access at the paper's 160 B value size."""
    config = StoreConfig(value_len=160, group_bits=2, point_and_permute=True)
    protocol = LblOrtoa(config, rng=random.Random(1))
    protocol.initialize({"k": bytes(160)})
    transcript = benchmark(protocol.access, Request.read("k"))
    assert transcript.num_rounds == 1


def test_fhe_multiply(benchmark):
    """The operation whose noise growth kills FHE-ORTOA (§3.3)."""
    scheme = FheScheme(FheParams(n=64, q_bits=120))
    ct = scheme.encrypt_bytes(bytes(60))
    selector = scheme.encrypt_scalar(1)
    result = benchmark(FheScheme.multiply, ct, selector)
    assert result.size == 3
