"""Supporting microbenchmarks: the primitive costs that calibrate the DES.

These are true pytest-benchmark timings of this library's primitives (the
``CostModel.measured`` path); they also document how far pure-Python crypto
sits from the paper's C++/AES-NI testbed, which is why figure reproduction
uses ``CostModel.paper_like`` constants instead.
"""

import random

from repro.core.lbl import LblOrtoa
from repro.crypto import aead
from repro.crypto.fhe import FheParams, FheScheme
from repro.crypto.labels import LabelCodec
from repro.crypto.prf import Prf, encode_components
from repro.types import Request, StoreConfig

KEY = b"k" * 16

#: One paper-default access worth of labels: 160 B values, y=2 -> 640 groups
#: of 4 candidates each.
_BATCH = 640 * 4


def test_prf_label_derivation(benchmark):
    prf = Prf(b"m" * 32, out_bytes=16)
    label = benchmark(prf.evaluate, "label", "key", 3, 1, 42)
    assert len(label) == 16


def test_prf_evaluate_many(benchmark):
    """Batched PRF: one access worth of label derivations per call."""
    prf = Prf(b"m" * 32, out_bytes=16)
    suffixes = [(i % 640, i % 4, 42) for i in range(_BATCH)]
    labels = benchmark(prf.evaluate_many, ("label", "key"), suffixes)
    assert len(labels) == _BATCH and len(labels[0]) == 16


def test_prf_context_tails(benchmark):
    """The hottest kernel: pre-encoded tails through a shared context."""
    prf = Prf(b"m" * 32, out_bytes=16)
    ctx = prf.context("label", "key")
    tails = [
        encode_components(i % 640, i % 4, 42) for i in range(_BATCH)
    ]
    labels = benchmark(ctx.evaluate_tails, tails)
    assert len(labels) == _BATCH


def test_labels_for_groups(benchmark):
    """Whole-table label derivation at the paper's 160 B / y=2 point."""
    codec = LabelCodec(
        Prf(b"m" * 32, out_bytes=16),
        Prf(b"p" * 32, out_bytes=16),
        value_len=160,
        group_bits=2,
    )
    rows = benchmark(codec.labels_for_groups, "key", 7)
    assert len(rows) == 640 and len(rows[0]) == 4


def test_aead_encrypt_label(benchmark):
    ct = benchmark(aead.encrypt, KEY, b"l" * 16)
    assert len(ct) == aead.ciphertext_len(16)


def test_aead_encrypt_many(benchmark):
    """Batched AEAD: one access worth of table entries per call."""
    keys = [bytes([i % 256]) * 16 for i in range(_BATCH)]
    payloads = [b"l" * 16] * _BATCH
    cts = benchmark(aead.encrypt_many, keys, payloads)
    assert len(cts) == _BATCH and len(cts[0]) == aead.ciphertext_len(16)


def test_aead_open_any(benchmark):
    """The base-protocol server loop: trial-decrypt a 4-entry group table."""
    table = [aead.encrypt(bytes([i]) * 16, b"l" * 16) for i in range(4)]
    hit = benchmark(aead.open_any, b"\x02" * 16, table)
    assert hit == (2, b"l" * 16)


def test_aead_decrypt_label(benchmark):
    ct = aead.encrypt(KEY, b"l" * 16)
    assert benchmark(aead.decrypt, KEY, ct) == b"l" * 16


def test_aead_failed_decrypt(benchmark):
    """The LBL server's wasted attempt (pre point-and-permute)."""
    ct = aead.encrypt(KEY, b"l" * 16)
    assert benchmark(aead.try_decrypt, b"w" * 16, ct) is None


def test_lbl_full_access_160b(benchmark):
    """One complete functional LBL access at the paper's 160 B value size."""
    config = StoreConfig(value_len=160, group_bits=2, point_and_permute=True)
    protocol = LblOrtoa(config, rng=random.Random(1))
    protocol.initialize({"k": bytes(160)})
    transcript = benchmark(protocol.access, Request.read("k"))
    assert transcript.num_rounds == 1


def test_lbl_full_access_160b_cached(benchmark):
    """The same access with a warm label cache (steady-state hot key)."""
    config = StoreConfig(
        value_len=160, group_bits=2, point_and_permute=True, label_cache_entries=-1
    )
    protocol = LblOrtoa(config, rng=random.Random(1))
    protocol.initialize({"k": bytes(160)})
    protocol.access(Request.read("k"))  # populate cache + prefetch
    transcript = benchmark(protocol.access, Request.read("k"))
    assert transcript.num_rounds == 1


def test_fhe_multiply(benchmark):
    """The operation whose noise growth kills FHE-ORTOA (§3.3)."""
    scheme = FheScheme(FheParams(n=64, q_bits=120))
    ct = scheme.encrypt_bytes(bytes(60))
    selector = scheme.encrypt_scalar(1)
    result = benchmark(FheScheme.multiply, ct, selector)
    assert result.size == 3
