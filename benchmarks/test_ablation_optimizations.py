"""Ablations of LBL-ORTOA's §10 optimizations, measured on the real protocol.

* point-and-permute: server decryption attempts drop from ~2^y/2-on-average
  tries per group to exactly 1;
* y-grouping: server storage halves at y=2 with unchanged communication
  (the Figure 6 optimum), while y=4 blows communication up;
* batching: amortizes the WAN round trip across requests.
"""

import random

from conftest import save_table

from repro.core.lbl import LblOrtoa
from repro.core.lbl.concurrent import access_batch
from repro.harness.report import render_table
from repro.sim.network import DATACENTER_RTT_MS, DEFAULT_BANDWIDTH_MBPS
from repro.types import Request, StoreConfig

VALUE_LEN = 32


def _protocol(group_bits, pnp):
    config = StoreConfig(value_len=VALUE_LEN, group_bits=group_bits, point_and_permute=pnp)
    protocol = LblOrtoa(config, rng=random.Random(1))
    protocol.initialize({"k": bytes(VALUE_LEN)})
    return protocol


def test_ablation_point_and_permute(benchmark):
    """§10.2: the decryption-bits trick removes all wasted server work."""

    def run():
        rows = []
        for pnp in (False, True):
            protocol = _protocol(group_bits=2, pnp=pnp)
            total_dec, total_failed = 0, 0
            for _ in range(10):
                ops = protocol.access(Request.read("k")).ops_at("server")
                total_dec += ops.aead_dec
                total_failed += ops.failed_dec
            rows.append(
                {
                    "point_and_permute": pnp,
                    "avg_decryptions_per_access": (total_dec + total_failed) / 10,
                    "avg_wasted_per_access": total_failed / 10,
                    "groups_per_value": protocol.proxy.codec.num_groups,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_pnp", render_table("Ablation: point-and-permute (§10.2)", rows))
    plain, pnp = rows
    groups = plain["groups_per_value"]
    assert pnp["avg_wasted_per_access"] == 0
    assert pnp["avg_decryptions_per_access"] == groups  # exactly 1 per group
    assert plain["avg_decryptions_per_access"] > 1.5 * groups  # ~2.5x tries


def test_ablation_group_bits(benchmark):
    """§10.1: y=2 halves storage at equal communication; y=4 hurts."""

    def run():
        rows = []
        for y in (1, 2, 4):
            protocol = _protocol(group_bits=y, pnp=False)
            encoded = protocol.keychain.encode_key("k")
            stored = len(protocol.server.store.get(encoded))
            transcript = protocol.access(Request.read("k"))
            rows.append(
                {
                    "y": y,
                    "labels_stored": stored,
                    "request_kb": transcript.request_bytes / 1000,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_y", render_table("Ablation: y-bit grouping (§10.1)", rows))
    by = {r["y"]: r for r in rows}
    assert by[2]["labels_stored"] == by[1]["labels_stored"] // 2
    assert abs(by[2]["request_kb"] - by[1]["request_kb"]) < 0.15 * by[1]["request_kb"]
    assert by[4]["request_kb"] > 1.5 * by[2]["request_kb"]


def test_ablation_batching(benchmark):
    """Batching amortizes the round trip: WAN time per op falls toward the
    serialization floor as the batch grows."""
    rtt = DATACENTER_RTT_MS["oregon"]
    bandwidth = DEFAULT_BANDWIDTH_MBPS

    def run():
        rows = []
        for batch_size in (1, 2, 4, 8, 16):
            protocol = _protocol(group_bits=2, pnp=True)
            batch = access_batch(protocol, [Request.read("k")] * batch_size)
            total_bytes = batch.combined.request_bytes + batch.combined.response_bytes
            serialization_ms = total_bytes * 8 / (bandwidth * 1000)
            wan_ms_per_op = (rtt + serialization_ms) / batch_size
            rows.append(
                {
                    "batch_size": batch_size,
                    "combined_kb": total_bytes / 1000,
                    "wan_ms_per_op": wan_ms_per_op,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_batching", render_table("Ablation: request batching", rows))
    per_op = [r["wan_ms_per_op"] for r in rows]
    assert per_op == sorted(per_op, reverse=True)
    assert per_op[-1] < per_op[0] / 4  # 16-batch is >4x cheaper per op
