"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one paper table/figure, renders it as text, and
saves it under ``results/`` (pytest captures stdout, so the files are the
durable record; EXPERIMENTS.md is written from them).  Key metrics also
flow into ``BENCH_history.json`` via :func:`record_bench`, so ``repro
bench check`` can gate the trajectory across runs.
"""

from __future__ import annotations

import pathlib

from repro.harness.bench import BenchRecorder

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: One recorder per pytest session so every benchmark module's metrics
#: share a run id (``repro bench check`` gates the latest *run*).
_RECORDER: BenchRecorder | None = None


def record_bench(
    metric: str,
    value: float,
    *,
    unit: str | None = None,
    higher_is_better: bool = True,
    gate: bool = True,
) -> None:
    """Append one measurement to the BENCH_history.json trajectory.

    Gate only self-relative metrics (speedups, overhead fractions) —
    raw ops/sec do not compare across machines, record them ``gate=False``.
    """
    global _RECORDER
    if _RECORDER is None:
        _RECORDER = BenchRecorder()
    _RECORDER.record(
        metric, value, unit=unit, higher_is_better=higher_is_better, gate=gate
    )


def save_table(name: str, text: str) -> None:
    """Persist a rendered table and echo it (visible with ``pytest -s``)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")
