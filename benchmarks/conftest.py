"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one paper table/figure, renders it as text, and
saves it under ``results/`` (pytest captures stdout, so the files are the
durable record; EXPERIMENTS.md is written from them).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def save_table(name: str, text: str) -> None:
    """Persist a rendered table and echo it (visible with ``pytest -s``)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")
