"""§8 extension: one-round tree ORAM vs the PathORAM two-round baseline.

Not a paper figure — the paper sketches this design as future work — but
DESIGN.md commits to implementing and measuring it: the one-round scheme
must halve round trips (and hence WAN latency per access) at the price of
larger messages, mirroring ORTOA's own trade-off.
"""

import random

from conftest import save_table

from repro.harness.report import render_table
from repro.oram import OneRoundOram, PathOram
from repro.sim.network import DATACENTER_RTT_MS


def _drive(oram, accesses, seed):
    rng = random.Random(seed)
    for _ in range(accesses):
        block = rng.randrange(oram.num_blocks)
        if rng.random() < 0.5:
            oram.write(block, rng.randbytes(8))
        else:
            oram.read(block)
    return oram


def test_oram_round_comparison(benchmark):
    accesses = 60

    def run():
        path = PathOram(32, 8, rng=random.Random(1))
        path.initialize({i: bytes(8) for i in range(32)})
        one = OneRoundOram(32, 8, rng=random.Random(1))
        one.initialize({i: bytes(8) for i in range(32)})
        return _drive(path, accesses, 2), _drive(one, accesses, 2)

    path, one = benchmark.pedantic(run, rounds=1, iterations=1)

    rtt = DATACENTER_RTT_MS["oregon"]
    rows = [
        {
            "scheme": name,
            "rounds_per_access": oram.rounds_used / accesses,
            "kb_per_access": oram.bytes_transferred / accesses / 1000,
            "stash_high_water": oram.stash.max_occupancy,
            "wan_ms_per_access_oregon": oram.rounds_used / accesses * rtt,
        }
        for name, oram in (("path-oram", path), ("one-round-oram", one))
    ]
    save_table("oram_rounds", render_table("§8: one-round ORAM vs PathORAM", rows))

    assert path.rounds_used == 2 * accesses
    assert one.rounds_used == accesses  # exactly one round per access
    # The trade-off is honest: fewer rounds, more bytes.
    assert one.bytes_transferred > path.bytes_transferred
    # Eviction works: stash stays bounded.
    assert one.stash.max_occupancy < 16
