"""Figure 3c: LBL-ORTOA latency breakdown while values grow.

Paper expectations (§6.3.1): the surprise finding — compute grows only
mildly; the dominant growth term is the *communication overhead* of the
larger messages, and past 300 B the LBL total exceeds the baseline's.
"""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table


def test_fig3c_breakdown(benchmark):
    rows = benchmark.pedantic(experiments.figure3c, rounds=1, iterations=1)
    save_table(
        "fig3c_breakdown",
        render_table(
            "Figure 3c: LBL latency = compute + base RTT + comm overhead", rows
        ),
    )
    by = {r["value_bytes"]: r for r in rows}

    # Communication overhead grows with value size and dominates compute
    # growth (the paper's §6.3.1 finding).
    overhead_growth = by[600]["comm_overhead_ms"] - by[10]["comm_overhead_ms"]
    compute_growth = by[600]["compute_ms"] - by[10]["compute_ms"]
    assert overhead_growth > compute_growth

    # Below the crossover, the base communication term is the (constant)
    # Oregon RTT; past it the residual also absorbs proxy queueing delay
    # (the system is saturating — which is why the baseline starts winning).
    for row in rows:
        if row["value_bytes"] <= 160:
            assert 21.0 < row["base_comm_ms"] < 26.0, row
        else:
            assert row["base_comm_ms"] >= 21.0, row

    # Components sum to the total.
    for row in rows:
        total = row["compute_ms"] + row["base_comm_ms"] + row["comm_overhead_ms"]
        assert abs(total - row["total_ms"]) < 1e-6

    # Crossover against the baseline appears past 300 B.
    assert by[160]["total_ms"] < by[160]["baseline_total_ms"]
    assert by[600]["total_ms"] > by[600]["baseline_total_ms"]
