"""Ablation: where does the LBL/baseline crossover move with bandwidth?

The §6.3.2 rule is ``c > p + o`` with ``o`` inversely proportional to link
bandwidth, so the Figure 3b crossover is a function of the WAN link, not a
constant of the protocol.  Measured finding: a slow link (60 Mbps) pulls
the crossover down to ~160 B, but *raising* bandwidth past the paper's
regime does not push it out indefinitely — at 500 Mbps the crossover stays
at ~300 B because LBL's per-request proxy compute (which also scales with
value size) takes over as the binding term of ``p + o``.
"""

from conftest import save_table

from repro.harness import DeploymentSpec, run_experiment
from repro.harness.report import render_table

VALUE_SIZES = (50, 160, 300, 450, 600)
BANDWIDTHS = (60.0, 180.0, 500.0)


def _crossover(bandwidth: float) -> dict:
    baseline = run_experiment(
        DeploymentSpec(protocol="baseline", bandwidth_mbps=bandwidth, duration_ms=1200)
    ).metrics.avg_latency_ms
    crossover = None
    series = {}
    for value_len in VALUE_SIZES:
        lbl = run_experiment(
            DeploymentSpec(
                protocol="lbl",
                value_len=value_len,
                bandwidth_mbps=bandwidth,
                duration_ms=1200,
            )
        ).metrics.avg_latency_ms
        series[value_len] = lbl
        if crossover is None and lbl >= baseline:
            crossover = value_len
    return {
        "bandwidth_mbps": bandwidth,
        "baseline_latency_ms": baseline,
        "crossover_at_or_below_bytes": crossover or f">{VALUE_SIZES[-1]}",
        "lbl_latency_160b": series[160],
        "lbl_latency_600b": series[600],
    }


def test_ablation_bandwidth_crossover(benchmark):
    rows = benchmark.pedantic(
        lambda: [_crossover(b) for b in BANDWIDTHS], rounds=1, iterations=1
    )
    save_table(
        "ablation_bandwidth",
        render_table("Ablation: crossover point vs WAN bandwidth", rows),
    )
    by = {r["bandwidth_mbps"]: r for r in rows}

    # Slower link -> LBL hurts more at every size.
    assert by[60.0]["lbl_latency_600b"] > by[180.0]["lbl_latency_600b"]
    assert by[180.0]["lbl_latency_600b"] > by[500.0]["lbl_latency_600b"]

    # A slow link pulls the crossover in (≤160 B at 60 Mbps)...
    assert by[60.0]["crossover_at_or_below_bytes"] in (50, 160)
    # ...while a fast link leaves it compute-bound at ~300 B, and LBL at
    # 160 B gets strictly cheaper as bandwidth grows.
    fast = by[500.0]["crossover_at_or_below_bytes"]
    assert fast == ">600" or (isinstance(fast, int) and fast >= 300)
    assert (
        by[500.0]["lbl_latency_160b"]
        < by[180.0]["lbl_latency_160b"]
        < by[60.0]["lbl_latency_160b"]
    )
