"""§3.3: FHE-ORTOA's noise-exhaustion experiment.

Paper finding: "within about 10 accesses to a specific object, the noise
value grew too large for the FHE decryption to succeed."  This benchmark
re-runs the real homomorphic pipeline and charts the budget per access.
"""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table


def test_fhe_noise_exhaustion(benchmark):
    rows = benchmark.pedantic(
        experiments.fhe_noise, kwargs={"max_accesses": 15}, rounds=1, iterations=1
    )
    save_table(
        "fhe_noise",
        render_table("§3.3: FHE noise budget per oblivious access", rows),
    )

    # Budget decreases monotonically with each access.
    budgets = [r["noise_budget_bits"] for r in rows]
    assert all(a > b for a, b in zip(budgets, budgets[1:]))

    # Exhaustion happens after a small number of accesses (paper: ~10).
    failing = [r["access"] for r in rows if r["noise_budget_bits"] <= 0]
    assert failing, "noise never exhausted — parameters too generous"
    assert 3 <= failing[0] <= 15

    # Ciphertexts also balloon (no relinearization), compounding §3.3's
    # communication-cost argument.
    assert rows[-1]["ciphertext_bytes"] > 3 * rows[0]["ciphertext_bytes"]

    # Expansion factor is in SEAL's ballpark direction: ciphertext >> value.
    assert rows[0]["ciphertext_bytes"] / 60 > 20
