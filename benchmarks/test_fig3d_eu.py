"""Figure 3d: GDPR placement — 300 B objects, server pinned to the EU.

Paper expectations (§6.3.2): with c = 147.7 ms and p + o ≈ 21.7 ms the rule
``c > p + o`` picks LBL-ORTOA, whose throughput is ~1.7x the baseline's.
"""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table
from repro.sim.network import DATACENTER_RTT_MS


def test_fig3d_eu(benchmark):
    rows = benchmark.pedantic(experiments.figure3d, rounds=1, iterations=1)
    save_table(
        "fig3d_eu",
        render_table("Figure 3d: 300 B objects, server in London (GDPR)", rows),
    )
    by = {r["protocol"]: r for r in rows}
    lbl, baseline = by["lbl"], by["baseline"]

    ratio = lbl["throughput_ops_s"] / baseline["throughput_ops_s"]
    assert 1.4 < ratio < 2.1, ratio  # paper: 1.7x

    # The §6.3.2 decision rule holds: c (147.7) > p + o for 300 B values, so
    # one round must win even though LBL ships ~47x more bytes.
    c = DATACENTER_RTT_MS["london"]
    p_plus_o = lbl["avg_latency_ms"] - c - 0.5  # total minus RTT minus client hop
    assert p_plus_o < c
    assert lbl["avg_latency_ms"] < baseline["avg_latency_ms"]
