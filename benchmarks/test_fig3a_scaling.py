"""Figure 3a: scaling storage servers and proxies 1 → 5 pairs.

Paper expectations (§6.2.4): near-linear throughput scaling (5x at scale
factor 5) with constant latency.
"""

import pytest
from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table


def test_fig3a_scaling(benchmark):
    rows = benchmark.pedantic(experiments.figure3a, rounds=1, iterations=1)
    save_table(
        "fig3a_scaling",
        render_table("Figure 3a: scaling proxy/server pairs (clients = 32*s)", rows),
    )
    for protocol in ("lbl", "tee"):
        series = {r["shards"]: r for r in rows if r["protocol"] == protocol}
        base = series[1]
        # Near-linear throughput scaling...
        for shards in (2, 3, 4, 5):
            ratio = series[shards]["throughput_ops_s"] / base["throughput_ops_s"]
            assert ratio == pytest.approx(shards, rel=0.12), (protocol, shards, ratio)
        # ...at constant latency.
        latencies = [series[s]["avg_latency_ms"] for s in (1, 2, 3, 4, 5)]
        assert max(latencies) - min(latencies) < 0.1 * latencies[0]
