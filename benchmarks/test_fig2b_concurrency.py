"""Figure 2b: throughput/latency vs concurrent clients.

Paper expectations (§6.2.1): throughput grows with clients and the sweet
spot is 32; beyond it latency spikes — for TEE because concurrency exceeds
the SGX machine's 48 cores (enclave paging), for LBL because the proxy
saturates.
"""

from conftest import save_table

from repro.harness import experiments
from repro.harness.report import render_table


def test_fig2b_concurrency(benchmark):
    rows = benchmark.pedantic(
        experiments.figure2b,
        kwargs={"client_counts": (1, 4, 8, 16, 32, 64, 128)},
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig2b_concurrency",
        render_table("Figure 2b: concurrency sweep (Oregon)", rows),
    )
    by = {(r["protocol"], r["clients"]): r for r in rows}

    for protocol in ("lbl", "tee"):
        # Throughput grows ~linearly up to 32 clients...
        t1 = by[(protocol, 1)]["throughput_ops_s"]
        t32 = by[(protocol, 32)]["throughput_ops_s"]
        assert t32 > 20 * t1, protocol  # paper: ~24x for LBL
        # ...latency is flat until 32...
        l1 = by[(protocol, 1)]["avg_latency_ms"]
        l32 = by[(protocol, 32)]["avg_latency_ms"]
        assert l32 < 1.1 * l1, protocol
        # ...and spikes past the sweet spot.
        l128 = by[(protocol, 128)]["avg_latency_ms"]
        assert l128 > 1.5 * l32, protocol
        # Throughput gain from 32 -> 64 is sublinear (saturation).
        t64 = by[(protocol, 64)]["throughput_ops_s"]
        assert t64 < 1.7 * t32, protocol

    # LBL at 32 clients: the paper's "neat balance" of ~1000 ops/s, ~30 ms.
    lbl32 = by[("lbl", 32)]
    assert 800 < lbl32["throughput_ops_s"] < 1300
    assert 25 < lbl32["avg_latency_ms"] < 40
