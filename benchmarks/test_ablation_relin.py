"""Ablation: does relinearization rescue FHE-ORTOA (§3.3 follow-up)?

The paper closes §3.3 hoping for "better performing FHE schemes".
Relinearization is the first candidate: it pins ciphertexts at two
components, so communication and storage stop growing per access.  This
ablation shows the honest result — size is fixed, but the multiplicative
noise growth (and hence the few-accesses lifetime) remains, so the paper's
infeasibility verdict survives the optimization.
"""

from conftest import save_table

from repro.crypto.fhe import FheParams, FheScheme
from repro.harness.report import render_table

PARAMS = FheParams(n=64, q_bits=120)
VALUE = bytes(range(60))


def _access(scheme, stored, rlk):
    result_left = scheme.multiply(stored, scheme.encrypt_scalar(1))
    result_right = scheme.multiply(scheme.encrypt_bytes(bytes(60)), scheme.encrypt_scalar(0))
    if rlk is not None:
        result_left = FheScheme.relinearize(result_left, rlk)
        result_right = FheScheme.relinearize(result_right, rlk)
    return scheme.add(result_left, result_right)


def test_ablation_relinearization(benchmark):
    def run():
        rows = []
        for relin in (False, True):
            scheme = FheScheme(PARAMS)
            rlk = scheme.make_relin_key() if relin else None
            stored = scheme.encrypt_bytes(VALUE)
            accesses = 0
            while scheme.noise_budget(stored) > 0 and accesses < 40:
                nxt = _access(scheme, stored, rlk)
                if scheme.noise_budget(nxt) <= 0:
                    break
                stored = nxt
                accesses += 1
            rows.append(
                {
                    "relinearize": relin,
                    "usable_accesses": accesses,
                    "final_ciphertext_components": stored.size,
                    "final_ciphertext_kb": stored.size_bytes / 1000,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "ablation_relin",
        render_table("Ablation: FHE-ORTOA with/without relinearization", rows),
    )
    plain, relin = rows

    # Relinearization pins the ciphertext at 2 components...
    assert relin["final_ciphertext_components"] == 2
    assert plain["final_ciphertext_components"] > 2
    # ...but the access lifetime stays in the same few-accesses regime —
    # the paper's infeasibility conclusion is robust to this optimization.
    assert 1 <= relin["usable_accesses"] <= 20
    assert abs(relin["usable_accesses"] - plain["usable_accesses"]) <= 4
