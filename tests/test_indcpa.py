"""IND-CPA game tests: the AEAD resists the standard CPA adversaries, and
the game itself can detect a deliberately broken scheme."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.security.indcpa import (
    IndCpaGame,
    byte_bias_adversary,
    length_adversary,
    prefix_equality_adversary,
)

PAIRS = [
    (b"\x00" * 32, b"\xff" * 32),                # extreme byte bias
    (b"all-the-same-plaintext-bytes!!!!", b"completely-different-contents!!!"),
    (b"aaaa" * 8, b"aaaa" * 8),                  # identical messages
]


@pytest.mark.parametrize(
    "adversary",
    [byte_bias_adversary, length_adversary, prefix_equality_adversary],
    ids=["byte-bias", "length", "prefix-equality"],
)
def test_aead_resists_standard_cpa_adversaries(adversary):
    game = IndCpaGame(rng=random.Random(1))
    # 200 rounds: 1-sigma sampling noise ~0.07; a real break gives ~1.0.
    assert game.advantage(PAIRS, adversary, rounds=200) < 0.25


def test_repeated_plaintexts_produce_unrelated_ciphertexts():
    """Submitting the same pair twice must not create equal ciphertexts
    (fresh nonces) — checked through the prefix adversary at full strength."""
    game = IndCpaGame(rng=random.Random(2))
    same_pairs = [(b"repeat" * 5 + b"!!", b"other-message-here-of-same-len!!"[:32])] * 4
    same_pairs = [(m0.ljust(32, b"x"), m1.ljust(32, b"y")) for m0, m1 in same_pairs]
    assert game.advantage(same_pairs, prefix_equality_adversary, rounds=200) < 0.25


def test_game_detects_a_broken_scheme():
    """Sanity check: replace the AEAD with 'identity encryption' and the
    byte-bias adversary must win outright."""
    game = IndCpaGame(rng=random.Random(3))

    # Monkey-play the round manually with a broken encryptor.
    def broken_round():
        b = game._rng.randrange(2)
        pairs = [(b"\x00" * 32, b"\xff" * 32)]
        challenge = [pair[b] for pair in pairs]  # "encryption" = identity
        return byte_bias_adversary(challenge) == b

    wins = sum(broken_round() for _ in range(100))
    assert abs(wins / 100 - 0.5) * 2 > 0.9


def test_game_validation():
    game = IndCpaGame(rng=random.Random(4))
    with pytest.raises(ConfigurationError):
        game.play_round([(b"short", b"much-longer")], byte_bias_adversary)
    with pytest.raises(ConfigurationError):
        game.advantage(PAIRS, byte_bias_adversary, rounds=1)
