"""LBL-ORTOA specific tests: label lifecycle, optimizations, tamper handling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lbl import LblOrtoa
from repro.core.lbl.server import LblServer
from repro.crypto.labels import StoredLabel
from repro.errors import ProtocolError, TamperDetectedError
from repro.types import Request, StoreConfig

RECORDS = {"k1": b"hello", "k2": b"world"}


def make(group_bits=1, pnp=False, value_len=8, seed=3):
    config = StoreConfig(value_len=value_len, group_bits=group_bits, point_and_permute=pnp)
    p = LblOrtoa(config, rng=random.Random(seed))
    p.initialize(RECORDS)
    return p


# --------------------------------------------------------------------- #
# Label lifecycle
# --------------------------------------------------------------------- #

def test_labels_rotate_on_every_access_including_reads():
    """§5: updating labels only for writes would leak the op type, so *every*
    access must rewrite the stored labels."""
    p = make()
    encoded = p.keychain.encode_key("k1")
    before = [sl.label for sl in p.server.store.get(encoded)]
    p.read("k1")
    after_read = [sl.label for sl in p.server.store.get(encoded)]
    assert before != after_read
    p.write("k1", b"x")
    after_write = [sl.label for sl in p.server.store.get(encoded)]
    assert after_read != after_write


def test_counter_increments_per_access():
    p = make()
    assert p.proxy.counter("k1") == 0
    p.read("k1")
    assert p.proxy.counter("k1") == 1
    p.write("k1", b"v")
    assert p.proxy.counter("k1") == 2
    assert p.proxy.counter("k2") == 0


def test_proxy_state_is_8_bytes_per_object():
    """§5.3.1: counters only — 8 bytes per key, megabytes not gigabytes."""
    p = make()
    assert p.proxy.proxy_state_bytes == 8 * len(RECORDS)


def test_server_never_sees_plaintext_or_plain_keys():
    p = make()
    p.write("k1", b"secret42")
    for encoded_key in p.server.store:
        assert b"k1" != encoded_key and b"k2" != encoded_key
        for sl in p.server.store.get(encoded_key):
            assert b"secret42" not in sl.label


def test_write_response_echoes_written_value():
    p = make()
    t = p.access(Request.write("k1", b"newvalue"))
    assert t.response.value == b"newvalue"


# --------------------------------------------------------------------- #
# Message size scaling (the §5.3.2 communication analysis)
# --------------------------------------------------------------------- #

def test_request_size_scales_linearly_with_value_len():
    sizes = {}
    for value_len in (8, 16, 32):
        p = make(value_len=value_len)
        t = p.access(Request.read("k1"))
        sizes[value_len] = t.request_bytes
    growth_1 = sizes[16] - sizes[8]
    growth_2 = sizes[32] - sizes[16]
    assert growth_2 == pytest.approx(2 * growth_1, rel=0.05)


def test_y2_halves_group_count_but_doubles_table():
    """§10.1: y=2 sends 4 encryptions per 2 bits — same total ciphertext
    count as y=1's 2 per bit, so request size stays in the same ballpark."""
    t1 = make(group_bits=1).access(Request.read("k1"))
    t2 = make(group_bits=2).access(Request.read("k1"))
    assert t2.request_bytes == pytest.approx(t1.request_bytes, rel=0.15)


def test_y3_increases_communication():
    """§10.1 / Figure 6: beyond y=2 communication grows as 2^y / y."""
    t2 = make(group_bits=2).access(Request.read("k1"))
    t4 = make(group_bits=4).access(Request.read("k1"))
    assert t4.request_bytes > 1.5 * t2.request_bytes


def test_y2_halves_server_storage():
    p1, p2 = make(group_bits=1), make(group_bits=2)
    n1 = len(p1.server.store.get(p1.keychain.encode_key("k1")))
    n2 = len(p2.server.store.get(p2.keychain.encode_key("k1")))
    assert n2 == n1 // 2


# --------------------------------------------------------------------- #
# Point-and-permute (§10.2)
# --------------------------------------------------------------------- #

def test_pnp_server_does_exactly_one_decryption_per_group():
    p = make(group_bits=2, pnp=True)
    t = p.access(Request.read("k1"))
    server_ops = t.ops_at("server")
    assert server_ops.aead_dec == p.proxy.codec.num_groups
    assert server_ops.failed_dec == 0


def test_base_protocol_wastes_decryptions():
    p = make(group_bits=2, pnp=False)
    # Average over accesses: with 4-entry shuffled tables the server tries
    # 2.5 entries per group in expectation; assert it's strictly more work
    # than point-and-permute ever does.
    total_failed = 0
    for _ in range(5):
        total_failed += p.access(Request.read("k1")).ops_at("server").failed_dec
    assert total_failed > 0


def test_pnp_stored_indices_stay_consistent():
    p = make(group_bits=2, pnp=True)
    for i in range(6):
        p.write("k1", bytes([i]) * 8)
        assert p.read("k1") == bytes([i]) * 8


def test_pnp_rejects_missing_indices():
    server = LblServer(point_and_permute=True)
    with pytest.raises(ProtocolError):
        server.load(b"ek", [StoredLabel(b"l" * 16, None)])


# --------------------------------------------------------------------- #
# Failure handling
# --------------------------------------------------------------------- #

def test_tampered_server_labels_detected_on_read():
    """§5.4: the proxy detects any label corruption at decode time."""
    p = make()
    encoded = p.keychain.encode_key("k1")
    labels = p.server.store.get(encoded)
    labels[0] = StoredLabel(b"\x00" * len(labels[0].label), labels[0].decrypt_index)
    with pytest.raises((TamperDetectedError, ProtocolError)):
        p.read("k1")


def test_server_detects_stale_label_state():
    """If the server's label is from the wrong counter epoch no entry opens."""
    p = make()
    encoded = p.keychain.encode_key("k1")
    old_labels = list(p.server.store.get(encoded))
    p.read("k1")  # rotates labels
    p.server.store.put(encoded, old_labels)  # roll the server back
    with pytest.raises(ProtocolError):
        p.read("k1")


def test_table_shape_mismatch_rejected():
    p = make()
    req, _ = p.proxy.prepare(Request.read("k1"))
    bad = type(req)(req.encoded_key, req.tables[:-1])
    with pytest.raises(ProtocolError):
        p.server.process(bad)


# --------------------------------------------------------------------- #
# Property tests
# --------------------------------------------------------------------- #

@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["read", "write"]), st.binary(max_size=8)),
        min_size=1,
        max_size=20,
    ),
    group_bits=st.sampled_from([1, 2]),
    pnp=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_lbl_behaves_like_a_dict(ops, group_bits, pnp):
    config = StoreConfig(value_len=8, group_bits=group_bits, point_and_permute=pnp)
    p = LblOrtoa(config, rng=random.Random(1))
    p.initialize({"k": b"init"})
    expected = config.pad(b"init")
    for op, value in ops:
        if op == "write":
            expected = config.pad(value)
            p.write("k", value)
        else:
            assert p.read("k") == expected
    assert p.read("k") == expected
