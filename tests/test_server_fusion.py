"""Server-side access window fusion: fused windows must be transparent.

The fused :meth:`~repro.core.lbl.server.LblServer.process_many` changes how
many storage accesses and AEAD dispatches a window of concurrent requests
costs, and nothing else.  These tests pin the transparency claims:

* protocol equivalence — a fused window produces exactly the responses,
  errors, and final server state a sequential ``process`` loop over the
  same interleaving produces (hypothesis property over arbitrary key/op
  interleavings, including same-key chains, corrupt ciphertexts, and
  missing keys with per-request error isolation);
* fusion — a window of distinct present keys is exactly one storage
  multi-get, one window-wide ``aead.open_many``, one storage multi-put;
* obliviousness — a fused GET window and a fused PUT window are
  shape-identical, in wire bytes and in every span attribute the server
  emits, and the sharded obliviousness audit passes with fusion on;
* attribution — each request's ledger row gets its byte-exact closed-form
  share of the fused open, and a row-less window-mate leaks nothing into
  anyone else's row (the model==ledger equality is exercised through
  ``run_model_check``'s ``server-coalesced`` backend);
* error-path telemetry — the satellite bugfix: ``process`` emits its span
  and ``lbl.server.*`` counters on failed opens too, base protocol and
  point-and-permute alike;
* determinism — the coalescer's flush timer reads the injected clock, and
  its generation counter makes stale timer flushes no-ops.
"""

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.lbl import LblOrtoa
from repro.core.lbl.server import SERVER_SPAN, LblServer
from repro.core.lbl.server_coalesce import ServerAccessCoalescer
from repro.core.messages import LblAccessRequest
from repro.crypto.labels import StoredLabel
from repro.errors import ConfigurationError, OrtoaError, ProtocolError
from repro.obs.clock import FakeClock
from repro.obs.recorder import RECORDER
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(300)

KEYS = tuple(f"f{i}" for i in range(4))
VALUE_LEN = 8

#: One access: (key index, is_write, written byte, fault) where fault is
#: 0 = clean, 1 = corrupt group-0 ciphertexts, 2 = unknown encoded key.
WORKLOADS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(KEYS) - 1),
        st.booleans(),
        st.integers(min_value=1, max_value=250),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=1,
    max_size=10,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _protocol(**overrides) -> LblOrtoa:
    params = dict(value_len=VALUE_LEN, group_bits=2, point_and_permute=True)
    params.update(overrides)
    store = LblOrtoa(StoreConfig(**params), rng=random.Random(5))
    store.initialize(
        {key: bytes([i + 1]) * VALUE_LEN for i, key in enumerate(KEYS)}
    )
    return store


def _clone_server(server: LblServer) -> LblServer:
    clone = LblServer(point_and_permute=server.point_and_permute)
    for encoded_key, labels in server.store._data.items():
        clone.load(encoded_key, list(labels))
    return clone


def _corrupt_group0(request: LblAccessRequest) -> LblAccessRequest:
    """Flip one byte in every group-0 ciphertext (lengths preserved)."""
    group0 = tuple(bytes([ct[0] ^ 0xFF]) + ct[1:] for ct in request.tables[0])
    return LblAccessRequest(request.encoded_key, (group0,) + request.tables[1:])


def _build_workload(store: LblOrtoa, workload) -> list[LblAccessRequest]:
    built = []
    for key_index, is_write, byte, fault in workload:
        key = KEYS[key_index]
        request = (
            Request.write(key, bytes([byte]) * VALUE_LEN)
            if is_write
            else Request.read(key)
        )
        lbl_request, _ops = store.proxy.prepare(request)
        if fault == 1:
            lbl_request = _corrupt_group0(lbl_request)
        elif fault == 2:
            lbl_request = LblAccessRequest(b"\xee" * 16, lbl_request.tables)
        built.append(lbl_request)
    return built


def _sequential(server: LblServer, built) -> list[tuple]:
    results = []
    for lbl_request in built:
        try:
            response, ops = server.process(lbl_request)
            results.append(("ok", response.to_bytes(), ops))
        except OrtoaError as exc:
            results.append(("err", type(exc).__name__, str(exc)))
    return results


def _normalized(fused_results) -> list[tuple]:
    results = []
    for item in fused_results:
        if isinstance(item, OrtoaError):
            results.append(("err", type(item).__name__, str(item)))
        else:
            response, ops = item
            results.append(("ok", response.to_bytes(), ops))
    return results


# --------------------------------------------------------------------- #
# Equivalence: fused window == sequential loop
# --------------------------------------------------------------------- #

@settings(max_examples=25, deadline=None)
@given(WORKLOADS)
def test_fused_window_equals_sequential_loop(workload):
    store = _protocol()
    sequential_server = _clone_server(store.server)
    fused_server = _clone_server(store.server)
    built = _build_workload(store, workload)

    expected = _sequential(sequential_server, built)
    actual = _normalized(fused_server.process_many(built))

    assert actual == expected
    # Same final label state: every rotation (and every skipped rotation
    # on failure) landed identically.
    assert fused_server.store._data == sequential_server.store._data


def test_same_key_chain_preserves_rotation_order():
    store = _protocol()
    fused_server = _clone_server(store.server)
    # Three accesses to one key in one window: each consumes the labels its
    # predecessor installs, so the fused path must chain them in order.
    built = _build_workload(
        store, [(0, True, 10, 0), (0, True, 20, 0), (0, False, 0, 0)]
    )
    results = fused_server.process_many(built)
    assert all(not isinstance(item, OrtoaError) for item in results)
    # Only the first request joined the fused multi-get; the tail chained
    # through sequential per-request storage accesses.
    assert fused_server.store.multi_get_count == 1
    assert fused_server.store.multi_put_count == 1


def test_failed_request_is_isolated_from_window_mates():
    store = _protocol()
    fused_server = _clone_server(store.server)
    built = _build_workload(
        store, [(0, False, 0, 0), (1, False, 0, 1), (2, False, 0, 0)]
    )
    results = fused_server.process_many(built)
    assert not isinstance(results[0], OrtoaError)
    assert isinstance(results[1], ProtocolError)
    assert not isinstance(results[2], OrtoaError)


def test_process_many_empty_and_row_validation():
    store = _protocol()
    assert store.server.process_many([]) == []
    built = _build_workload(store, [(0, False, 0, 0)])
    with pytest.raises(ConfigurationError):
        store.server.process_many(built, rows=[])


def test_base_protocol_window_falls_back_to_sequential():
    store = LblOrtoa(StoreConfig(value_len=VALUE_LEN), rng=random.Random(5))
    store.initialize({"b0": b"\x01" * VALUE_LEN, "b1": b"\x02" * VALUE_LEN})
    built = [
        store.proxy.prepare(Request.read("b0"))[0],
        store.proxy.prepare(Request.read("b1"))[0],
    ]
    results = store.server.process_many(built)
    assert all(not isinstance(item, OrtoaError) for item in results)
    # No fused storage access on the base protocol: tables are scanned.
    assert store.server.store.multi_get_count == 0
    assert store.server.store.multi_put_count == 0


# --------------------------------------------------------------------- #
# Fusion: one multi-get, one open_many, one multi-put per window
# --------------------------------------------------------------------- #

def test_window_is_one_multiget_one_open_one_multiput(monkeypatch):
    import repro.crypto.aead as aead_mod

    store = _protocol()
    server = store.server
    built = [store.proxy.prepare(Request.read(key))[0] for key in KEYS]

    open_calls: list[int] = []
    original = aead_mod.open_many

    def counting(keys, ciphertexts):
        open_calls.append(len(keys))
        return original(keys, ciphertexts)

    monkeypatch.setattr(aead_mod, "open_many", counting)
    results = server.process_many(built)

    assert all(not isinstance(item, OrtoaError) for item in results)
    num_groups = len(built[0].tables)
    assert open_calls == [len(KEYS) * num_groups]
    assert server.store.multi_get_count == 1
    assert server.store.multi_put_count == 1


def test_multi_get_and_put_account_per_key():
    store = _protocol()
    server = store.server
    before_gets = server.store.get_count
    before_puts = server.store.put_count
    built = [store.proxy.prepare(Request.read(key))[0] for key in KEYS]
    server.process_many(built)
    # Per-key accounting matches a sequential loop exactly; only the multi
    # counters reveal that one fused storage access served the window.
    assert server.store.get_count == before_gets + len(KEYS)
    assert server.store.put_count == before_puts + len(KEYS)


# --------------------------------------------------------------------- #
# Obliviousness: fused GET and PUT windows are shape-identical
# --------------------------------------------------------------------- #

def _window_observations(requests, server):
    obs.reset()
    obs.enable()
    results = server.process_many(requests)
    assert all(not isinstance(item, OrtoaError) for item in results)
    spans = [
        span
        for span in obs.TRACER.export()
        if span["name"] == SERVER_SPAN
    ]
    shapes = [
        {
            key: value
            for key, value in span["attributes"].items()
            if key != "key_fingerprint"
        }
        for span in spans
    ]
    wire = [
        (len(request.to_bytes()), len(response.to_bytes()))
        for request, (response, _ops) in zip(requests, results)
    ]
    obs.disable()
    return shapes, wire


def test_fused_get_and_put_windows_are_shape_identical():
    get_store = _protocol()
    put_store = _protocol()
    get_built = [
        get_store.proxy.prepare(Request.read(key))[0] for key in KEYS
    ]
    put_built = [
        put_store.proxy.prepare(
            Request.write(key, bytes([99]) * VALUE_LEN)
        )[0]
        for key in KEYS
    ]
    get_shapes, get_wire = _window_observations(get_built, get_store.server)
    put_shapes, put_wire = _window_observations(put_built, put_store.server)
    assert get_shapes == put_shapes
    assert get_wire == put_wire


def test_sharded_audit_passes_with_fusion_on():
    from repro.core.sharded import ShardedLblDeployment
    from repro.obs.audit import run_sharded_audit
    from repro.transport.cluster import ShardCluster

    config = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)
    with ShardCluster(
        2,
        point_and_permute=True,
        in_process=True,
        server_batch=4,
        server_window=0.02,
    ) as cluster:
        dep = ShardedLblDeployment(
            config, cluster.addresses, rng=random.Random(3)
        )
        try:
            report = run_sharded_audit(dep, num_keys=16, seed=3)
        finally:
            dep.close()
    assert report.passed, report.summary()


# --------------------------------------------------------------------- #
# Attribution: closed-form per-row shares, no leakage across rows
# --------------------------------------------------------------------- #

def test_fused_rows_get_exact_shares_and_rowless_mates_leak_nothing():
    from repro.obs import ledger

    obs.enable()
    store = _protocol()
    built = [
        store.proxy.prepare(Request.read(KEYS[0]))[0],
        store.proxy.prepare(Request.read(KEYS[1]))[0],
    ]
    num_groups = len(built[0].tables)
    with ledger.track(label="tracked") as tracked:
        pass
    with ledger.track(label="ambient") as ambient:
        results = store.server.process_many(built, rows=[tracked, None])
    assert all(not isinstance(item, OrtoaError) for item in results)
    assert tracked.snapshot()["ops"].get("aead.decrypts", 0) == num_groups
    # The row-less window-mate must not bill the flushing thread's row.
    assert ambient.snapshot()["ops"].get("aead.decrypts", 0) == 0


def test_rows_omitted_inherits_ambient_row_like_sequential():
    from repro.obs import ledger

    obs.enable()
    store = _protocol()
    built = [
        store.proxy.prepare(Request.read(KEYS[0]))[0],
        store.proxy.prepare(Request.read(KEYS[1]))[0],
    ]
    num_groups = len(built[0].tables)
    with ledger.track(label="caller") as caller:
        results = store.server.process_many(built)
    assert all(not isinstance(item, OrtoaError) for item in results)
    assert caller.snapshot()["ops"].get("aead.decrypts", 0) == 2 * num_groups


def test_model_check_server_coalesced_backend_is_exact():
    from repro.analysis.costmodel import run_model_check

    report = run_model_check(
        value_sizes=(4,), backends=("server-coalesced",)
    )
    assert report["ok"], report["cases"]
    assert {case["backend"] for case in report["cases"]} == {
        "server-coalesced"
    }
    assert {case["op"] for case in report["cases"]} == {"get", "put"}


# --------------------------------------------------------------------- #
# Satellite bugfix: error paths emit spans and counters
# --------------------------------------------------------------------- #

def test_base_protocol_error_path_emits_span_and_counters():
    store = LblOrtoa(StoreConfig(value_len=VALUE_LEN), rng=random.Random(5))
    store.initialize({"k": b"\x01" * VALUE_LEN})
    built, _ops = store.proxy.prepare(Request.read("k"))
    stored = store.server.store.get(built.encoded_key)
    # Desynchronize the server: its stored labels no longer open anything.
    store.server.store.put(
        built.encoded_key,
        [StoredLabel(b"\x00" * len(sl.label)) for sl in stored],
    )
    obs.enable()
    with pytest.raises(ProtocolError):
        store.server.process(built)
    counters = obs.REGISTRY.snapshot()["counters"]
    assert counters.get("lbl.server.requests", 0) == 1
    table_size = len(built.tables[0])
    assert counters.get("lbl.server.decrypt_attempts", 0) == table_size
    assert counters.get("lbl.server.failed_decrypts", 0) == table_size
    spans = [s for s in obs.TRACER.export() if s["name"] == SERVER_SPAN]
    assert len(spans) == 1
    attributes = spans[0]["attributes"]
    assert "error" in attributes
    assert attributes["failed_decrypts"] == table_size


def test_point_and_permute_error_path_emits_span_and_counters():
    store = _protocol()
    built, _ops = store.proxy.prepare(Request.read(KEYS[0]))
    corrupt = _corrupt_group0(built)
    obs.enable()
    with pytest.raises(ProtocolError):
        store.server.process(corrupt)
    counters = obs.REGISTRY.snapshot()["counters"]
    assert counters.get("lbl.server.requests", 0) == 1
    num_groups = len(built.tables)
    # open_many attempted every designated pair; only group 0 failed.
    assert counters.get("lbl.server.decrypt_attempts", 0) == num_groups
    assert counters.get("lbl.server.failed_decrypts", 0) == 1
    spans = [s for s in obs.TRACER.export() if s["name"] == SERVER_SPAN]
    assert len(spans) == 1
    assert "error" in spans[0]["attributes"]


# --------------------------------------------------------------------- #
# Coalescer: timers against the injected clock, generations, fan-out
# --------------------------------------------------------------------- #

def test_single_caller_flushes_on_timer_with_fake_clock():
    obs.enable()
    store = _protocol()
    clock = FakeClock(auto_advance=0.4)
    coalescer = ServerAccessCoalescer(
        store.server, window=1.0, max_batch=8, clock=clock
    )
    built, _ops = store.proxy.prepare(Request.read(KEYS[0]))
    response, _server_ops = coalescer.process(built)
    assert len(response.opened_labels) == len(built.tables)
    counters = obs.REGISTRY.snapshot()["counters"]
    assert counters.get("lbl.server.windows", 0) == 1
    assert counters.get("lbl.server.flush.timer", 0) == 1
    events = RECORDER.events("server.window")
    assert len(events) == 1
    assert events[0].fields == {"reason": "timer", "window": 1, "max_batch": 8}


def test_full_window_flushes_on_size():
    obs.enable()
    store = _protocol()
    # A clock that never advances: only the size trigger can flush.
    coalescer = ServerAccessCoalescer(
        store.server, window=10.0, max_batch=2, clock=FakeClock()
    )
    built = [
        store.proxy.prepare(Request.read(KEYS[0]))[0],
        store.proxy.prepare(Request.read(KEYS[1]))[0],
    ]
    results: dict[int, object] = {}
    errors: list[BaseException] = []

    def call(index: int) -> None:
        try:
            results[index] = coalescer.process(built[index])
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=call, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    assert set(results) == {0, 1}
    counters = obs.REGISTRY.snapshot()["counters"]
    assert counters.get("lbl.server.flush.size", 0) == 1
    assert counters.get("lbl.server.coalesced", 0) == 2
    gauges = obs.REGISTRY.snapshot()["gauges"]
    assert gauges["lbl.server.window_fill"]["value"] == 1.0


def test_flush_pending_generation_guards_stale_timers():
    store = _protocol()
    coalescer = ServerAccessCoalescer(
        store.server, window=10.0, max_batch=8, clock=FakeClock()
    )
    built1, _ = store.proxy.prepare(Request.read(KEYS[0]))
    entry1, is_leader, is_full, generation1, _full = coalescer.submit(built1)
    assert is_leader and not is_full
    assert coalescer.flush_pending("timer", generation1) is True
    assert entry1.done.is_set() and entry1.result is not None
    # Re-flushing the same (already closed) window is a no-op.
    assert coalescer.flush_pending("timer", generation1) is False
    # A stale timer must not flush the *next* window early.
    built2, _ = store.proxy.prepare(Request.read(KEYS[0]))
    entry2, is_leader2, _is_full2, generation2, _full2 = coalescer.submit(built2)
    assert is_leader2 and generation2 != generation1
    assert coalescer.flush_pending("timer", generation1) is False
    assert not entry2.done.is_set()
    assert coalescer.flush_pending("timer", generation2) is True
    assert entry2.result is not None


def test_on_done_callback_fires_with_result():
    store = _protocol()
    coalescer = ServerAccessCoalescer(
        store.server, window=10.0, max_batch=8, clock=FakeClock()
    )
    built, _ = store.proxy.prepare(Request.read(KEYS[0]))
    seen = []
    entry, _leader, _is_full, generation, _full = coalescer.submit(
        built, on_done=seen.append
    )
    coalescer.flush_pending("timer", generation)
    assert seen == [entry]
    assert entry.error is None and entry.result is not None


def test_failed_window_mate_raises_only_for_its_caller():
    store = _protocol()
    coalescer = ServerAccessCoalescer(
        store.server, window=10.0, max_batch=2, clock=FakeClock()
    )
    good, _ = store.proxy.prepare(Request.read(KEYS[0]))
    bad = _corrupt_group0(store.proxy.prepare(Request.read(KEYS[1]))[0])
    outcomes: dict[str, object] = {}

    def call(name: str, request) -> None:
        try:
            outcomes[name] = coalescer.process(request)
        except OrtoaError as exc:
            outcomes[name] = exc

    threads = [
        threading.Thread(target=call, args=("good", good)),
        threading.Thread(target=call, args=("bad", bad)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert isinstance(outcomes["bad"], ProtocolError)
    assert not isinstance(outcomes["good"], OrtoaError)


def test_coalescer_validates_configuration():
    store = _protocol()
    with pytest.raises(ConfigurationError):
        ServerAccessCoalescer(store.server, window=-1.0)
    with pytest.raises(ConfigurationError):
        ServerAccessCoalescer(store.server, max_batch=0)


# --------------------------------------------------------------------- #
# Transports: fused windows form over both dispatch paths
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("transport", ["thread", "async"])
def test_fused_windows_form_over_transport(transport):
    from repro.core.lbl.concurrent import ConcurrentLblProxy
    from repro.core.sharded import ShardedLblDeployment
    from repro.transport.cluster import ShardCluster

    obs.enable()
    config = StoreConfig(
        value_len=VALUE_LEN, group_bits=2, point_and_permute=True
    )
    with ShardCluster(
        1,
        point_and_permute=True,
        in_process=True,
        transport=transport,
        server_batch=4,
        server_window=0.02,
    ) as cluster:
        dep = ShardedLblDeployment(
            config,
            cluster.addresses,
            rng=random.Random(0),
            transport=transport,
        )
        try:
            dep.initialize(
                {f"t{i}": bytes([i + 1]) * VALUE_LEN for i in range(4)}
            )
            proxy = ConcurrentLblProxy(dep)
            barrier = threading.Barrier(4)
            errors: list[BaseException] = []

            def worker(index: int) -> None:
                try:
                    barrier.wait(timeout=30)
                    key = f"t{index}"
                    for round_number in range(3):
                        value = bytes([round_number + 1]) * VALUE_LEN
                        proxy.write(key, value)
                        assert proxy.read(key) == value
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
        finally:
            dep.close()
    counters = obs.REGISTRY.snapshot()["counters"]
    assert counters.get("lbl.server.windows", 0) >= 1
    assert counters.get("lbl.server.coalesced", 0) == 24
    events = RECORDER.events("server.window")
    assert events
    assert all(event.fields["max_batch"] == 4 for event in events)
    assert all(1 <= event.fields["window"] <= 4 for event in events)


# --------------------------------------------------------------------- #
# Planner, doctor, and top integration
# --------------------------------------------------------------------- #

def test_plan_capacity_amortizes_server_flush_overhead():
    from repro.analysis.costmodel import LblCostModel, plan_capacity

    model = LblCostModel(value_len=160, group_bits=2, point_and_permute=True)
    unfused = plan_capacity(50_000_000, 50, model, server_batch=1)
    fused = plan_capacity(50_000_000, 50, model, server_batch=8)
    assert fused.cpu_cores <= unfused.cpu_cores
    assert fused.projected_p99_ms < unfused.projected_p99_ms
    assumptions = fused.as_dict()["assumptions"]
    assert assumptions["server_batch"] == 8
    assert assumptions["server_opens_per_sec"] > 0
    assert assumptions["server_flush_overhead_seconds"] >= 0
    with pytest.raises(ConfigurationError):
        plan_capacity(10, 10, model, server_batch=0)
    with pytest.raises(ConfigurationError):
        plan_capacity(10, 10, model, server_opens_per_sec=0.0)


def test_doctor_attributes_server_open_bound_saturation():
    from repro.obs.doctor import SCORE_FLOOR, diagnose

    saturated = {
        "target": "shard-0",
        "up": True,
        "ops_per_s": 100.0,
        "server_window_fill": 1.0,
    }
    diagnosis = diagnose([saturated])
    assert diagnosis["bottleneck"] == "server"
    assert diagnosis["scores"]["server"] >= SCORE_FLOOR
    assert any("server-open-bound" in reason for reason in diagnosis["reasons"])

    idle = dict(saturated, server_window_fill=0.1)
    assert diagnose([idle])["bottleneck"] == "healthy"


def test_top_row_and_render_carry_server_window_fill():
    from repro.obs.top import render_top, target_row

    samples = {
        "repro_transport_requests_dispatched_total": [({}, 5.0)],
        "repro_lbl_server_window_fill": [({}, 0.75)],
    }
    row = target_row("a:1", samples, None, 1.0)
    assert row["server_window_fill"] == 0.75
    frame = render_top([row], refreshed_at="12:00:00")
    assert "SWIN%" in frame
    assert any("75" in line for line in frame.splitlines())
