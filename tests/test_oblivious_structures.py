"""Tests for the oblivious stack and queue (fixed access-count profiles)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ProtocolError
from repro.oram.structures import ObliviousQueue, ObliviousStack


def make_stack(capacity=8, value_len=4, seed=1):
    return ObliviousStack(capacity, value_len, rng=random.Random(seed))


def make_queue(capacity=8, value_len=4, seed=1):
    return ObliviousQueue(capacity, value_len, rng=random.Random(seed))


# --------------------------------------------------------------------- #
# Stack semantics
# --------------------------------------------------------------------- #

def test_stack_lifo_order():
    stack = make_stack()
    for byte in (1, 2, 3):
        stack.push(bytes([byte]) * 4)
    assert stack.pop() == bytes([3]) * 4
    assert stack.pop() == bytes([2]) * 4
    assert stack.pop() == bytes([1]) * 4


def test_stack_peek_does_not_remove():
    stack = make_stack()
    stack.push(b"aaaa")
    assert stack.peek() == b"aaaa"
    assert len(stack) == 1
    assert stack.pop() == b"aaaa"


def test_stack_interleaved_matches_reference():
    stack = make_stack(capacity=16)
    reference = []
    rng = random.Random(7)
    for _ in range(60):
        if reference and rng.random() < 0.5:
            assert stack.pop() == reference.pop()
        elif len(reference) < 16:
            value = rng.randbytes(4)
            reference.append(value)
            stack.push(value)
    while reference:
        assert stack.pop() == reference.pop()


def test_stack_empty_and_full_errors():
    stack = make_stack(capacity=2)
    with pytest.raises(ProtocolError):
        stack.pop()
    with pytest.raises(ProtocolError):
        stack.peek()
    stack.push(b"aaaa")
    stack.push(b"bbbb")
    with pytest.raises(ConfigurationError):
        stack.push(b"cccc")
    with pytest.raises(ConfigurationError):
        stack.push(b"xx")  # wrong length


def test_stack_uniform_access_profile():
    """Every stack operation — push, pop, peek, even failed pops — costs
    exactly one ORAM access."""
    stack = make_stack()
    counts = []
    before = stack.accesses
    stack.push(b"aaaa")
    counts.append(stack.accesses - before)
    before = stack.accesses
    stack.peek()
    counts.append(stack.accesses - before)
    before = stack.accesses
    stack.pop()
    counts.append(stack.accesses - before)
    before = stack.accesses
    with pytest.raises(ProtocolError):
        stack.pop()
    counts.append(stack.accesses - before)
    assert counts == [1, 1, 1, 1]


# --------------------------------------------------------------------- #
# Queue semantics
# --------------------------------------------------------------------- #

def test_queue_fifo_order():
    queue = make_queue()
    for byte in (1, 2, 3):
        queue.enqueue(bytes([byte]) * 4)
    assert queue.dequeue() == bytes([1]) * 4
    assert queue.dequeue() == bytes([2]) * 4
    assert queue.dequeue() == bytes([3]) * 4


def test_queue_drain_and_refill():
    queue = make_queue(capacity=4)
    queue.enqueue(b"aaaa")
    assert queue.dequeue() == b"aaaa"
    assert len(queue) == 0
    queue.enqueue(b"bbbb")
    queue.enqueue(b"cccc")
    assert queue.dequeue() == b"bbbb"
    assert queue.dequeue() == b"cccc"


def test_queue_interleaved_matches_reference():
    from collections import deque

    queue = make_queue(capacity=16)
    reference = deque()
    rng = random.Random(9)
    for _ in range(60):
        if reference and rng.random() < 0.5:
            assert queue.dequeue() == reference.popleft()
        elif len(reference) < 16:
            value = rng.randbytes(4)
            reference.append(value)
            queue.enqueue(value)
    while reference:
        assert queue.dequeue() == reference.popleft()


def test_queue_uniform_access_profile():
    """Enqueue (empty or not), dequeue, and failed dequeues all cost
    exactly two ORAM accesses."""
    queue = make_queue()
    counts = []
    before = queue.accesses
    queue.enqueue(b"aaaa")  # empty-queue enqueue
    counts.append(queue.accesses - before)
    before = queue.accesses
    queue.enqueue(b"bbbb")  # tail-patching enqueue
    counts.append(queue.accesses - before)
    before = queue.accesses
    queue.dequeue()
    counts.append(queue.accesses - before)
    before = queue.accesses
    queue.dequeue()
    counts.append(queue.accesses - before)
    before = queue.accesses
    with pytest.raises(ProtocolError):
        queue.dequeue()
    counts.append(queue.accesses - before)
    assert counts == [2, 2, 2, 2, 2]


def test_queue_full_and_bad_length():
    queue = make_queue(capacity=1)
    queue.enqueue(b"aaaa")
    with pytest.raises(ConfigurationError):
        queue.enqueue(b"bbbb")
    with pytest.raises(ConfigurationError):
        make_queue().enqueue(b"x")


@given(
    ops=st.lists(
        st.one_of(st.none(), st.binary(min_size=4, max_size=4)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=15, deadline=None)
def test_queue_property_matches_deque(ops):
    from collections import deque

    queue = make_queue(capacity=30, seed=3)
    reference = deque()
    for op in ops:
        if op is None:
            if reference:
                assert queue.dequeue() == reference.popleft()
            else:
                with pytest.raises(ProtocolError):
                    queue.dequeue()
        else:
            reference.append(op)
            queue.enqueue(op)
    assert len(queue) == len(reference)


# --------------------------------------------------------------------- #
# Oblivious map
# --------------------------------------------------------------------- #

from repro.oram.structures import ObliviousMap


def make_map(capacity=8, value_len=4, seed=2):
    return ObliviousMap(capacity, value_len, rng=random.Random(seed))


def test_map_put_get_delete():
    omap = make_map()
    omap.put(b"alpha", b"aaaa")
    omap.put(b"beta", b"bbbb")
    assert omap.get(b"alpha") == b"aaaa"
    omap.put(b"alpha", b"a2a2")  # overwrite
    assert omap.get(b"alpha") == b"a2a2"
    omap.delete(b"alpha")
    assert b"alpha" not in omap
    assert omap.get(b"beta") == b"bbbb"


def test_map_miss_raises_after_dummy():
    omap = make_map()
    before = omap.accesses
    with pytest.raises(ProtocolError):
        omap.get(b"ghost")
    with pytest.raises(ProtocolError):
        omap.delete(b"ghost")
    assert omap.accesses == before + 2  # dummies keep the trace uniform


def test_map_uniform_access_profile():
    omap = make_map()
    counts = []
    for action in ("put", "get", "overwrite", "delete", "miss"):
        before = omap.accesses
        if action == "put":
            omap.put(b"k", b"vvvv")
        elif action == "get":
            omap.get(b"k")
        elif action == "overwrite":
            omap.put(b"k", b"wwww")
        elif action == "delete":
            omap.delete(b"k")
        else:
            with pytest.raises(ProtocolError):
                omap.get(b"k")
        counts.append(omap.accesses - before)
    assert counts == [1, 1, 1, 1, 1]


def test_map_capacity_and_reuse():
    omap = make_map(capacity=2)
    omap.put(b"a", b"aaaa")
    omap.put(b"b", b"bbbb")
    with pytest.raises(ConfigurationError):
        omap.put(b"c", b"cccc")
    omap.delete(b"a")
    omap.put(b"c", b"cccc")  # freed slot is reusable
    assert omap.get(b"c") == b"cccc"


def test_map_random_workload_matches_dict():
    omap = make_map(capacity=12, seed=5)
    reference = {}
    rng = random.Random(5)
    for _ in range(80):
        key = f"k{rng.randrange(6)}".encode()
        roll = rng.random()
        if roll < 0.5:
            value = rng.randbytes(4)
            if key in reference or len(reference) < 12:
                reference[key] = value
                omap.put(key, value)
        elif roll < 0.8:
            if key in reference:
                assert omap.get(key) == reference[key]
        else:
            if key in reference:
                del reference[key]
                omap.delete(key)
    for key, value in reference.items():
        assert omap.get(key) == value
