"""Tests for the sharded, pipelined LBL deployment over loopback TCP."""

import random

import pytest

from repro.core.sharded import ShardedLblDeployment
from repro.errors import ConfigurationError, ProtocolError
from repro.transport.cluster import ShardCluster
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(30)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture(params=[1, 3])
def cluster(request):
    with ShardCluster(request.param, in_process=True) as booted:
        yield booted


@pytest.fixture()
def deployment(cluster):
    dep = ShardedLblDeployment(
        CONFIG, cluster.addresses, rng=random.Random(7), pipeline_depth=4
    )
    dep.initialize({f"k{i}": bytes([i]) * 16 for i in range(12)})
    yield dep
    dep.close()


def test_read_write_routed_to_shards(deployment):
    assert deployment.read("k3") == bytes([3]) * 16
    deployment.write("k3", b"updated")
    assert deployment.read("k3") == CONFIG.pad(b"updated")


def test_routing_is_stable_and_total(deployment):
    for key in (f"k{i}" for i in range(12)):
        shard = deployment.shard_of(key)
        assert 0 <= shard < deployment.num_shards
        assert deployment.shard_of(key) == shard  # deterministic
    assert sum(deployment.shard_sizes()) == 12


def test_batch_spans_shards_and_preserves_order(deployment):
    requests = [
        Request.read("k1"),
        Request.write("k2", CONFIG.pad(b"two")),
        Request.read("k2"),
        Request.read("k11"),
    ]
    transcripts = deployment.access_batch(requests)
    assert [t.op for t in transcripts] == [r.op for r in requests]
    assert transcripts[0].response.value == bytes([1]) * 16
    assert transcripts[2].response.value == CONFIG.pad(b"two")
    assert transcripts[3].response.value == bytes([11]) * 16


def test_batch_repeated_key_applies_in_order(deployment):
    transcripts = deployment.access_batch(
        [
            Request.write("k5", CONFIG.pad(b"first")),
            Request.read("k5"),
            Request.write("k5", CONFIG.pad(b"second")),
        ]
    )
    assert transcripts[1].response.value == CONFIG.pad(b"first")
    assert deployment.read("k5") == CONFIG.pad(b"second")


def test_pipelined_accesses_return_in_request_order(deployment):
    requests = [Request.read(f"k{i}") for i in range(12)]
    transcripts = deployment.access_pipelined(requests, depth=4)
    assert [t.response.key for t in transcripts] == [r.key for r in requests]
    for i, transcript in enumerate(transcripts):
        assert transcript.response.value == bytes([i]) * 16


def test_pipelined_serializes_same_key(deployment):
    """Repeated keys in a pipelined stream must not corrupt epochs."""
    requests = []
    for round_no in range(4):
        requests.append(Request.write("k0", bytes([round_no]) * 16))
        requests.append(Request.read("k0"))
        requests.append(Request.read("k1"))
    transcripts = deployment.access_pipelined(requests, depth=8)
    # Each read of k0 sees the write immediately before it.
    reads = [t for t in transcripts if t.response.key == "k0" and t.op.is_read]
    assert [t.response.value for t in reads] == [
        bytes([round_no]) * 16 for round_no in range(4)
    ]


def test_pipelined_depth_one_is_lockstep(deployment):
    transcripts = deployment.access_pipelined(
        [Request.read("k1"), Request.read("k2")], depth=1
    )
    assert len(transcripts) == 2


def test_transcripts_match_single_shard_shape(deployment):
    transcript = deployment.access(Request.read("k1"))
    assert transcript.num_rounds == 1
    read_t = deployment.access(Request.read("k2"))
    write_t = deployment.access(Request.write("k2", CONFIG.pad(b"w")))
    assert read_t.request_bytes == write_t.request_bytes
    assert read_t.response_bytes == write_t.response_bytes


def test_deployment_name_reflects_shards(cluster):
    dep = ShardedLblDeployment(CONFIG, cluster.addresses)
    try:
        assert dep.name == f"lbl-ortoa-sharded-x{len(cluster.addresses)}"
        assert dep.num_shards == len(cluster.addresses)
    finally:
        dep.close()


def test_empty_batch_and_pipeline_rejected(deployment):
    with pytest.raises(ProtocolError):
        deployment.access_batch([])
    with pytest.raises(ProtocolError):
        deployment.access_pipelined([])


def test_bad_configuration_rejected(cluster):
    with pytest.raises(ConfigurationError):
        ShardedLblDeployment(CONFIG, [])
    with pytest.raises(ConfigurationError):
        ShardedLblDeployment(CONFIG, cluster.addresses, pipeline_depth=0)
    dep = ShardedLblDeployment(CONFIG, cluster.addresses)
    try:
        with pytest.raises(ConfigurationError):
            dep.access_pipelined([Request.read("k")], depth=0)
    finally:
        dep.close()


def test_cluster_subprocess_mode_serves_accesses():
    """Process-backed shards (the honest multi-machine stand-in) work too."""
    with ShardCluster(1, in_process=False) as booted:
        dep = ShardedLblDeployment(CONFIG, booted.addresses, rng=random.Random(8))
        try:
            dep.initialize({"pk": b"\x09" * 16})
            dep.write("pk", b"updated")
            assert dep.read("pk") == CONFIG.pad(b"updated")
        finally:
            dep.close()


def test_measure_throughput_modes_agree_on_results():
    """The harness's lockstep and pipelined modes both do real accesses."""
    from repro.transport.cluster import measure_throughput

    with ShardCluster(2, in_process=True) as booted:
        dep = ShardedLblDeployment(CONFIG, booted.addresses, rng=random.Random(6))
        try:
            for seed, mode in enumerate(("lockstep", "pipelined")):
                # Distinct seeds: each call initializes its own key range.
                stats = measure_throughput(
                    dep, num_requests=6, mode=mode, depth=3, seed=seed
                )
                assert stats["requests"] == 6
                assert stats["service_rps"] > 0
        finally:
            dep.close()


def test_measurement_sweeps_smoke():
    """Tiny parameterizations of the benchmark sweeps run end to end."""
    from repro.transport.cluster import measure_pipeline_gain, measure_shard_scaling

    scaling = measure_shard_scaling(
        shard_counts=(1,), num_requests=4, service_time_s=0.001, seed=1
    )
    assert scaling[0]["shards"] == 1 and scaling[0]["speedup_vs_1shard"] == 1.0
    gain = measure_pipeline_gain(
        depths=(1, 2), num_requests=4, emulated_rtt_s=0.001, seed=1
    )
    assert [row["depth"] for row in gain] == [1, 2]
    assert gain[0]["speedup_vs_lockstep"] == 1.0


def test_cluster_lifecycle_guards():
    with pytest.raises(ConfigurationError):
        ShardCluster(0)
    cluster = ShardCluster(1, in_process=True)
    cluster.start()
    with pytest.raises(ConfigurationError):
        cluster.start()  # double start
    cluster.stop()
    cluster.stop()  # idempotent
    cluster.start()  # restartable after stop
    cluster.stop()


# --------------------------------------------------------------------- #
# Obliviousness audit of the sharded deployment
# --------------------------------------------------------------------- #

def test_sharded_audit_passes_per_shard():
    from repro.obs.audit import run_sharded_audit

    with ShardCluster(2, in_process=True) as booted:
        dep = ShardedLblDeployment(CONFIG, booted.addresses, rng=random.Random(3))
        try:
            report = run_sharded_audit(dep, num_keys=24, seed=3)
        finally:
            dep.close()
    assert report.passed
    assert report.overall.passed
    assert len(report.per_shard) == 2
    assert all(shard_report.passed for shard_report in report.per_shard)
    bundle = report.to_dict()
    assert bundle["passed"] and len(bundle["per_shard"]) == 2
    assert "shard 1" in report.summary()


def test_sharded_audit_requires_keys_per_shard():
    from repro.obs.audit import run_sharded_audit

    with ShardCluster(2, in_process=True) as booted:
        dep = ShardedLblDeployment(CONFIG, booted.addresses, rng=random.Random(3))
        try:
            with pytest.raises(ConfigurationError):
                run_sharded_audit(dep, num_keys=3, seed=3)
        finally:
            dep.close()
