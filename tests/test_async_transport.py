"""The asyncio transport's scale contract: C1K, windows, graceful drain.

Three claims from ROADMAP item 1, each load-bearing for the
millions-of-users front door:

* One event loop really holds 1000+ concurrent connections and completes
  real GET/PUT accesses on all of them (the threaded server would need a
  thousand stacks for this).
* The in-flight windows are *bounds*, not suggestions: the server never
  holds more than ``max_in_flight`` admitted requests no matter how many
  are thrown at it, and excess is shed with OVERLOAD — never queued.
* ``close()`` drains gracefully: admitted requests finish, later ones are
  shed, and the loop thread actually exits.
"""

import asyncio
import random
import threading
import time

import pytest

from repro.core.lbl.proxy import LblProxy
from repro.core.messages import LblAccessResponse
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, OverloadError
from repro.transport import framing
from repro.transport.async_client import (
    AsyncPipelinedLblClient,
    SyncAsyncLblClient,
    make_pipelined_client,
)
from repro.transport.async_server import AsyncLblServer
from repro.transport.framing import _LEN
from repro.transport.server import (
    LOAD_ACK,
    OBS_DUMP_TAG,
    OBS_PULL_TAG,
    OVERLOAD_FRAME,
    pack_load,
)
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(120)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)

#: Idempotent control frame: repeatable at will (a LOAD of the same key
#: would be rejected as a duplicate), dispatched through the same mux
#: admission path as accesses, with a small constant-ish reply.
PING = bytes([OBS_PULL_TAG])


def is_pong(reply: bytes) -> bool:
    return reply[:1] == bytes([OBS_DUMP_TAG])


def make_proxy(seed: int = 1) -> LblProxy:
    return LblProxy(
        CONFIG, KeyChain(label_bits=CONFIG.label_bits), rng=random.Random(seed)
    )


@pytest.fixture()
def server():
    with AsyncLblServer(point_and_permute=True) as srv:
        yield srv


def load_keys(client, proxy, records: dict, window: int = 64) -> None:
    """Load records with a bounded client-side window.

    An unbounded blast of loads would (correctly!) trip the server's
    admission control; a real loader respects the window.
    """
    pending = []
    for encoded_key, labels in proxy.initial_records(records):
        if len(pending) >= window:
            assert pending.pop(0).result(30) == LOAD_ACK
        pending.append(client.submit(pack_load(encoded_key, labels)))
    for future in pending:
        assert future.result(30) == LOAD_ACK


# --------------------------------------------------------------------- #
# Construction and lifecycle basics
# --------------------------------------------------------------------- #


def test_config_validation():
    with pytest.raises(ConfigurationError):
        AsyncLblServer(max_in_flight=0)
    with pytest.raises(ConfigurationError):
        AsyncLblServer(max_in_flight_per_conn=0)
    with pytest.raises(ConfigurationError):
        AsyncLblServer(response_delay_s=-1)
    with pytest.raises(ConfigurationError):
        AsyncLblServer(write_timeout_s=0)
    with pytest.raises(ConfigurationError):
        make_pipelined_client(("127.0.0.1", 1), transport="carrier-pigeon")


def test_address_requires_start():
    server = AsyncLblServer()
    with pytest.raises(ConfigurationError):
        _ = server.address
    server.start()
    try:
        host, _port = server.address
        assert host == "127.0.0.1"
    finally:
        server.close()


def test_close_is_idempotent_and_start_after_close_rejected():
    server = AsyncLblServer()
    server.start()
    server.close()
    server.close()  # second close is a no-op
    with pytest.raises(ConfigurationError):
        server.start()


def test_close_without_start_is_safe():
    AsyncLblServer().close()


def test_sync_client_rejects_dead_server():
    server = AsyncLblServer()
    server.start()
    address = server.address
    server.close()
    with pytest.raises(Exception):
        SyncAsyncLblClient(address, timeout=2.0)


# --------------------------------------------------------------------- #
# C1K: 1000 concurrent connections complete real GET/PUT accesses
# --------------------------------------------------------------------- #


def test_c1k_connections_complete_get_and_put(server):
    """1000 connections on one event loop, each completing a real access.

    Every connection carries its own key, half GETs and half PUTs, all in
    flight simultaneously; every reply must decode and finalize under the
    proxy, proving replies were paired with their own requests across a
    thousand interleaved connections.
    """
    num_conns = 1000
    proxy = make_proxy()
    keys = [f"c1k-{i}" for i in range(num_conns)]

    # Load via one pipelined client, then prepare all requests up front so
    # the storm measures the transport, not proxy-side crypto.
    with SyncAsyncLblClient(server.address, pool_size=4) as loader:
        load_keys(loader, proxy, {key: bytes(16) for key in keys})
    prepared = []
    rng = random.Random(9)
    for key in keys:
        if rng.random() < 0.5:
            request = Request.read(key)
        else:
            request = Request.write(key, bytes([rng.randrange(1, 255)]) * 16)
        lbl_request, _ops = proxy.prepare(request)
        prepared.append((key, lbl_request.to_bytes()))

    host, port = server.address

    async def one_conn(key: str, payload: bytes, barrier: asyncio.Barrier):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await barrier.wait()  # all 1000 sockets open before any sends
            wrapped = framing.wrap_mux(1, payload)
            writer.write(_LEN.pack(len(wrapped)) + wrapped)
            await writer.drain()
            header = await reader.readexactly(_LEN.size)
            (length,) = _LEN.unpack(header)
            reply = await reader.readexactly(length)
            _rid, inner = framing.unwrap_mux(reply)
            return key, inner
        finally:
            writer.close()

    async def storm():
        barrier = asyncio.Barrier(len(prepared))
        return await asyncio.gather(
            *(one_conn(key, payload, barrier) for key, payload in prepared)
        )

    replies = asyncio.run(storm())
    assert len(replies) == num_conns
    for key, inner in replies:
        response = LblAccessResponse.from_bytes(inner)
        proxy.finalize(key, response)  # raises if replies were mispaired
    assert server.in_flight == 0
    assert server.num_connections == 0


def test_async_client_multiplexes_many_in_flight(server):
    """The pure-async client keeps a deep window on few sockets."""
    proxy = make_proxy()
    records = {f"mux-{i}": bytes(16) for i in range(48)}

    async def run():
        async with AsyncPipelinedLblClient(server.address, pool_size=2) as client:
            loads = [
                client.submit(pack_load(ek, labels))
                for ek, labels in proxy.initial_records(records)
            ]
            assert all(r == LOAD_ACK for r in await asyncio.gather(*loads))
            futures = []
            for key in records:
                request, _ops = proxy.prepare(Request.read(key))
                futures.append(client.submit(request.to_bytes()))
            assert client.in_flight <= len(records)
            return await asyncio.gather(*futures)

    replies = asyncio.run(run())
    for key, reply in zip(records, replies):
        value, _ops = proxy.finalize(key, LblAccessResponse.from_bytes(reply))
        assert value == records[key]


# --------------------------------------------------------------------- #
# Bounded in-flight windows + admission control
# --------------------------------------------------------------------- #


def test_global_in_flight_window_enforced():
    """More submissions than the window: excess shed, bound never exceeded."""
    with AsyncLblServer(
        max_in_flight=4, max_in_flight_per_conn=64, response_delay_s=0.15
    ) as server:
        with SyncAsyncLblClient(server.address) as client:
            futures = [client.submit(PING) for _ in range(16)]
            outcomes = {"served": 0, "shed": 0}
            for future in futures:
                try:
                    assert is_pong(future.result(30))
                    outcomes["served"] += 1
                except OverloadError:
                    outcomes["shed"] += 1
        # The delay holds the first admissions in their window slots while
        # the rest arrive, so the excess must have been shed, not queued.
        assert outcomes["shed"] >= 8, outcomes
        assert outcomes["served"] >= 4, outcomes
        assert server.peak_in_flight <= 4
        assert server.overloads_sent == outcomes["shed"]


def test_per_connection_window_isolates_greedy_client():
    """One connection's burst cannot eat the whole global window."""
    with AsyncLblServer(
        max_in_flight=64, max_in_flight_per_conn=2, response_delay_s=0.15
    ) as server:
        with SyncAsyncLblClient(server.address, pool_size=1) as greedy:
            with SyncAsyncLblClient(server.address, pool_size=1) as polite:
                greedy_futures = [greedy.submit(PING) for _ in range(10)]
                time.sleep(0.02)  # let the burst reach the server first
                polite_future = polite.submit(PING)
                # The polite client's single request fits its own per-conn
                # window even while the greedy one is saturated.
                assert is_pong(polite_future.result(30))
                shed = 0
                for future in greedy_futures:
                    try:
                        future.result(30)
                    except OverloadError:
                        shed += 1
                assert shed >= 6  # 10 submitted, window of 2


# --------------------------------------------------------------------- #
# Graceful drain
# --------------------------------------------------------------------- #


def test_graceful_drain_finishes_in_flight_and_sheds_new():
    """close(): admitted requests complete; requests after drain get
    OVERLOAD; the loop thread exits."""
    # The delay must comfortably outlast drain-start latency on a loaded
    # single-core machine: the late submit has to land while the admitted
    # requests are still holding the drain open.
    server = AsyncLblServer(response_delay_s=1.0, max_in_flight=16)
    server.start()
    client = SyncAsyncLblClient(server.address)
    try:
        in_flight = [client.submit(PING) for _ in range(3)]
        deadline = time.time() + 5.0
        while server.in_flight < 3 and time.time() < deadline:
            time.sleep(0.005)
        assert server.in_flight == 3

        closer = threading.Thread(target=server.close)
        closer.start()
        while not server.draining and closer.is_alive():
            time.sleep(0.005)
        # Draining: existing connection stays open, but new work is shed.
        late = client.submit(PING)
        with pytest.raises(OverloadError):
            late.result(30)
        # The in-flight requests still complete with real replies.
        for future in in_flight:
            assert is_pong(future.result(30))
        closer.join(timeout=30)
        assert not closer.is_alive()
    finally:
        client.close()
        server.close()
    assert server.in_flight == 0


def test_drain_shed_is_overload_frame_not_error():
    """The drain path sheds with the same constant OVERLOAD frame as the
    window path — a drain must not leak anything either."""
    # Wide delay for the same reason as the drain test above: frame 6 must
    # arrive while frame 5 still holds the drain open.
    server = AsyncLblServer(response_delay_s=1.0)
    server.start()
    import socket as socket_mod

    sock = socket_mod.create_connection(server.address, timeout=10)
    try:
        framing.send_frame(sock, framing.wrap_mux(5, PING))  # occupy
        # Wait until frame 5 is actually admitted: if the drain starts
        # before the loop accepts this connection, the listener closes
        # with the connection still in the accept queue and no reply can
        # ever arrive.
        deadline = time.time() + 5.0
        while server.in_flight < 1 and time.time() < deadline:
            time.sleep(0.005)
        assert server.in_flight == 1
        closer = threading.Thread(target=server.close)
        closer.start()
        while not server.draining and closer.is_alive():
            time.sleep(0.005)
        framing.send_frame(sock, framing.wrap_mux(6, PING))
        replies = {}
        for _ in range(2):
            request_id, inner = framing.unwrap_mux(framing.recv_frame(sock))
            replies[request_id] = inner
        assert is_pong(replies[5])  # admitted before drain: completed
        assert replies[6] == OVERLOAD_FRAME  # shed during drain
        closer.join(timeout=30)
    finally:
        sock.close()
        server.close()
