"""Tests for the span tracer: nesting, ordering, clocks, no-op path."""

import threading

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.clock import FakeClock, SimClock, WallClock, use_clock
from repro.obs.trace import NOOP_SPAN, Tracer
from repro.sim.core import Environment


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    with tracer.span("invisible") as span:
        assert span is NOOP_SPAN
        span.set_attribute("ignored", 1)  # must be a silent no-op
    assert tracer.finished == []


def test_span_nesting_and_parent_links():
    obs.enable()
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner") as inner:
                pass
    by_name = {s.name: s for s in tracer.finished}
    assert by_name["outer"].parent_id is None
    assert by_name["middle"].parent_id == by_name["outer"].span_id
    assert by_name["inner"].parent_id == by_name["middle"].span_id
    # All three share the root's trace id.
    assert {s.trace_id for s in tracer.finished} == {by_name["outer"].span_id}


def test_finish_order_is_innermost_first():
    obs.enable()
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
        with tracer.span("c"):
            pass
    assert [s.name for s in tracer.finished] == ["b", "c", "a"]


def test_siblings_reuse_parent_after_child_closes():
    obs.enable()
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("first"):
            pass
        assert tracer.current_span() is root
        with tracer.span("second") as second:
            assert second.parent_id == root.span_id


def test_attributes_captured_at_creation_and_later():
    obs.enable()
    tracer = Tracer()
    with tracer.span("op", key="alice") as span:
        span.set_attribute("decrypts", 640)
        span.set_attributes(bytes_in=10, bytes_out=20)
    (finished,) = tracer.finished
    assert finished.attributes == {
        "key": "alice",
        "decrypts": 640,
        "bytes_in": 10,
        "bytes_out": 20,
    }


def test_manual_span_api_allows_interleaving():
    """The runner's pattern: spans from interleaved generators, no contextvar."""
    obs.enable()
    tracer = Tracer()
    a = tracer.start_span("req-a", root=True)
    b = tracer.start_span("req-b", root=True)
    tracer.end(a)
    tracer.end(b)
    assert [s.name for s in tracer.finished] == ["req-a", "req-b"]
    assert all(s.parent_id is None for s in tracer.finished)
    assert a.trace_id != b.trace_id


def test_span_timestamps_come_from_fake_clock():
    obs.enable()
    tracer = Tracer()
    clock = FakeClock()
    with use_clock(clock):
        with tracer.span("timed") as span:
            clock.advance(2.5)
    assert span.start == 0.0
    assert span.end == 2.5
    assert span.duration == 2.5


def test_sim_clock_reads_environment_time():
    obs.enable()
    tracer = Tracer()
    env = Environment()
    spans = []

    def process(env):
        span = tracer.start_span("sim-op")
        yield env.timeout(7.0)
        tracer.end(span)
        spans.append(span)

    env.process(process(env))
    with use_clock(SimClock(env)):
        env.run()
    assert spans[0].start == 0.0
    assert spans[0].end == 7.0


def test_sim_clock_requires_now_attribute():
    with pytest.raises(ConfigurationError):
        SimClock(object())


def test_export_is_json_ready_and_deterministic_under_fake_clock():
    obs.enable()
    tracer = Tracer()

    def record():
        with use_clock(FakeClock(auto_advance=1.0)):
            with tracer.span("x", n=1):
                pass
        exported = tracer.export()
        tracer.reset()
        return exported

    assert record() == record()
    (span_dict,) = record()
    assert span_dict["name"] == "x"
    assert span_dict["duration"] == span_dict["end"] - span_dict["start"]


def test_reset_restarts_span_ids():
    obs.enable()
    tracer = Tracer()
    with tracer.span("one"):
        pass
    first_id = tracer.finished[0].span_id
    tracer.reset()
    with tracer.span("two"):
        pass
    assert tracer.finished[0].span_id == first_id


def test_threads_get_independent_current_spans():
    obs.enable()
    tracer = Tracer()
    parents = {}
    barrier = threading.Barrier(2)

    def worker(name):
        with tracer.span(name) as span:
            barrier.wait(timeout=5)
            parents[name] = span.parent_id

    threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert parents == {"t0": None, "t1": None}


def test_wall_clock_is_monotonic_nonzero_duration():
    obs.enable()
    tracer = Tracer()
    assert isinstance(obs.get_time_source(), WallClock)
    with tracer.span("real"):
        pass
    (span,) = tracer.finished
    assert span.duration >= 0


def test_capture_context_manager_restores_state_and_resets():
    with obs.capture():
        assert obs.is_enabled()
        with obs.TRACER.span("inside"):
            pass
        assert len(obs.TRACER.finished) == 1
    assert not obs.is_enabled()
    # Data recorded inside capture is retained for export after exit.
    assert len(obs.TRACER.finished) == 1
    # A fresh capture starts clean.
    with obs.capture():
        assert obs.TRACER.finished == []


def test_escaping_exception_closes_span_with_error_attrs():
    """A failed operation must stay in the trace, marked as failed."""
    obs.enable()
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("boom"):
                raise ValueError("kaput")
    by_name = {s.name: s for s in tracer.finished}
    boom = by_name["boom"]
    assert boom.end is not None  # closed despite the exception
    assert boom.attributes["error"] is True
    assert boom.attributes["error_type"] == "ValueError"
    # The exception propagated through the parent, so it is marked too.
    outer = by_name["outer"]
    assert outer.attributes["error"] is True
    assert obs.REGISTRY.counter("trace.span_errors").value == 2


def test_successful_span_has_no_error_attrs():
    obs.enable()
    tracer = Tracer()
    with tracer.span("fine"):
        pass
    (span,) = tracer.finished
    assert "error" not in span.attributes
    assert obs.REGISTRY.snapshot()["counters"].get("trace.span_errors", 0) == 0
