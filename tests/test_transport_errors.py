"""Tests for the TCP server's error-frame path (tag 0x7F).

A malformed or unserviceable request must come back as a described error
frame — the client raises a :class:`~repro.errors.ProtocolError` carrying the
server's message — and the connection must remain usable afterwards, not die.
"""

import random
import socket

import pytest

from repro import obs
from repro.core.messages import LblAccessRequest
from repro.errors import ProtocolError
from repro.transport import LblTcpServer, RemoteLblOrtoa
from repro.transport.framing import recv_frame, send_frame
from repro.transport.server import ERROR_TAG, LOAD_TAG
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture()
def server():
    tcp = LblTcpServer(point_and_permute=True)
    tcp.serve_in_background()
    yield tcp
    tcp.close()


@pytest.fixture()
def raw_conn(server):
    sock = socket.create_connection(server.address, timeout=10.0)
    yield sock
    sock.close()


def _expect_error(sock, payload: bytes) -> str:
    """Send one frame, assert the reply is an error frame, return its text."""
    send_frame(sock, payload)
    reply = recv_frame(sock)
    assert reply[0] == ERROR_TAG
    return reply[1:].decode("utf-8")


def test_unknown_tag_yields_described_error_frame(raw_conn):
    message = _expect_error(raw_conn, bytes([0xEE]) + b"junk")
    assert "unknown frame tag" in message
    assert "0xee" in message


def test_empty_frame_yields_error_frame(raw_conn):
    assert "empty frame" in _expect_error(raw_conn, b"")


def test_truncated_load_record_yields_error_frame(raw_conn):
    # Claims a 100-byte key but carries only 3 bytes.
    payload = bytes([LOAD_TAG]) + (100).to_bytes(4, "big") + b"abc"
    assert "truncated" in _expect_error(raw_conn, payload)


def test_malformed_access_request_yields_error_frame(raw_conn):
    # Correct tag, garbage body: the request parser must fail loudly.
    payload = bytes([LblAccessRequest.TAG]) + b"\x00\x01garbage"
    message = _expect_error(raw_conn, payload)
    assert message  # described, not empty


def test_access_for_key_unknown_to_server_yields_error_frame(server):
    """A valid request for a key the *server* never loaded → error frame."""
    remote = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(0))
    try:
        # Register the key in the local proxy only: the load records are
        # built but deliberately never shipped, so the server has no state.
        remote.proxy.initial_records({"ghost": b"v"})
        with pytest.raises(ProtocolError, match="server error:"):
            remote.access(Request.read("ghost"))
    finally:
        remote.close()


def test_connection_survives_an_error_frame(server):
    """The same socket keeps serving valid requests after a bad one."""
    remote = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(1))
    try:
        remote.initialize({"k": b"hello"})
        with pytest.raises(ProtocolError):
            remote._exchange(bytes([0xEE]))
        # Same connection, next request succeeds.
        assert remote.read("k").rstrip(b"\x00") == b"hello"
    finally:
        remote.close()


def test_raw_connection_survives_interleaved_errors(raw_conn):
    for _ in range(3):
        _expect_error(raw_conn, bytes([0xEE]))
    # Socket still open: a further frame still gets a (error) reply.
    assert "empty frame" in _expect_error(raw_conn, b"")


def test_error_counters_increment_under_capture(server):
    remote = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(2))
    try:
        remote.initialize({"k": b"v"})
        with obs.capture():
            with pytest.raises(ProtocolError):
                remote._exchange(bytes([0xEE]))
            counters = obs.REGISTRY.snapshot()["counters"]
        obs.reset()
        assert counters["transport.error_frames_sent"] >= 1
        assert counters["transport.error_frames_received"] >= 1
        assert counters["transport.frames_sent"] >= 1
        assert counters["transport.frames_received"] >= 1
    finally:
        remote.close()
