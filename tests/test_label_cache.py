"""Label cache, next-epoch prefetch, parallel prepare, and init complexity.

The cache is a pure optimization: every test here ultimately checks either
that it changes nothing observable (scalar / batched-cold / batched-warm
decode identical values) or that its bookkeeping (LRU bound, consuming
take, invalidation on counter moves) holds, since a stale epoch served from
the cache would make the next access undecodable.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.lbl import LblOrtoa
from repro.core.lbl.cache import LabelCache, LabelCacheEntry
from repro.core.lbl.parallel import ParallelPrepareEngine
from repro.core.lbl.proxy import LblProxy
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError
from repro.types import Request, StoreConfig


def _config(**overrides) -> StoreConfig:
    params = dict(
        value_len=8, group_bits=2, point_and_permute=True, label_cache_entries=-1
    )
    params.update(overrides)
    return StoreConfig(**params)


def _store(config: StoreConfig, *, batched: bool = True, seed: int = 5) -> LblOrtoa:
    store = LblOrtoa(config, rng=random.Random(seed), batched=batched)
    store.initialize(
        {f"k{i}": config.pad(f"v{i}".encode()) for i in range(4)}
    )
    return store


# --------------------------------------------------------------------- #
# LabelCache unit behaviour
# --------------------------------------------------------------------- #


def test_cache_take_is_consuming():
    cache = LabelCache(4)
    cache.put("k", 1, LabelCacheEntry(labels=[[b"a"]]))
    assert cache.take("k", 1) is not None
    assert cache.take("k", 1) is None  # consumed
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5


def test_cache_epoch_must_match_exactly():
    cache = LabelCache(4)
    cache.put("k", 2, LabelCacheEntry(labels=[[b"a"]]))
    assert cache.take("k", 1) is None
    assert cache.take("k", 3) is None
    assert cache.take("k", 2) is not None


def test_cache_lru_bound():
    cache = LabelCache(2)
    for counter in range(3):
        cache.put(f"k{counter}", 1, LabelCacheEntry(labels=[[b"x"]]))
    assert len(cache) == 2
    assert cache.peek("k0", 1) is None  # oldest evicted
    assert cache.peek("k2", 1) is not None


def test_cache_invalidate_key_drops_every_epoch():
    cache = LabelCache(8)
    cache.put("k", 1, LabelCacheEntry(labels=[[b"a"]]))
    cache.put("k", 2, LabelCacheEntry(labels=[[b"b"]]))
    cache.put("other", 1, LabelCacheEntry(labels=[[b"c"]]))
    assert cache.invalidate_key("k") == 2
    assert cache.peek("k", 1) is None and cache.peek("k", 2) is None
    assert cache.peek("other", 1) is not None


def test_cache_rejects_bad_capacity():
    with pytest.raises(ConfigurationError):
        LabelCache(0)
    with pytest.raises(ConfigurationError):
        LabelCache.from_bytes(640, 4, 16, budget_bytes=0)


def test_cache_from_bytes_sizes_at_least_one_entry():
    cache = LabelCache.from_bytes(640, 4, 16, budget_bytes=1)
    assert cache.capacity == 1


def test_config_rejects_zero_cache_entries():
    with pytest.raises(ConfigurationError):
        StoreConfig(value_len=8, label_cache_entries=0)
    with pytest.raises(ConfigurationError):
        StoreConfig(value_len=8, label_cache_entries=-2)


# --------------------------------------------------------------------- #
# Proxy integration: hits, prefetch, invalidation
# --------------------------------------------------------------------- #


def test_repeated_access_hits_cache_and_prefetch():
    store = _store(_config())
    cache = store.proxy.label_cache
    store.access(Request.read("k0"))  # miss: populates epoch 1
    entry = cache.peek("k0", 1)
    assert entry is not None
    assert entry.next_labels is not None  # finalize prefetched epoch 2
    if store.proxy.vector_active():
        # The vector pipeline attaches keyed states + prefetched keystreams
        # in place of pad-block schedules.
        assert entry.keyed is not None
        assert entry.keystreams is not None and entry.nonces is not None
    else:
        assert entry.schedules is not None
    before = cache.hits
    store.access(Request.read("k0"))  # warm: consumes epoch 1 entry
    assert cache.hits == before + 1
    assert cache.peek("k0", 2) is not None  # replaced by the new epoch


def test_cache_disabled_when_config_omits_it():
    store = _store(_config(label_cache_entries=None))
    assert store.proxy.label_cache is None
    store.access(Request.read("k0"))  # still works, just cold every time
    assert store.read("k0").rstrip(b"\x00") == b"v0"


def test_force_counter_invalidates_cached_epochs():
    store = _store(_config())
    store.access(Request.read("k0"))
    assert store.proxy.label_cache.peek("k0", 1) is not None
    store.proxy.force_counter("k0", 1)
    assert store.proxy.label_cache.peek("k0", 1) is None


def test_restore_counters_clears_cache():
    store = _store(_config())
    store.access(Request.read("k0"))
    store.access(Request.read("k1"))
    assert len(store.proxy.label_cache) > 0
    store.proxy.restore_counters({"k0": 1, "k1": 1})
    assert len(store.proxy.label_cache) == 0


# --------------------------------------------------------------------- #
# Equivalence: scalar / batched-cold / batched-warm decode identically
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("pnp", [True, False])
def test_three_paths_decode_identically(pnp):
    """Same keychain, same workload: every kernel path returns the same bytes."""
    workload = [
        Request.read("k0"),
        Request.write("k1", b"new-val1".ljust(8, b"\x00")),
        Request.read("k1"),
        Request.read("k0"),
        Request.write("k0", b"new-val0".ljust(8, b"\x00")),
        Request.read("k0"),
    ]
    results = []
    keychain = KeyChain(label_bits=128)
    for batched, cache_entries in ((False, None), (True, None), (True, -1)):
        config = _config(point_and_permute=pnp, label_cache_entries=cache_entries)
        store = LblOrtoa(
            config, keychain=keychain, rng=random.Random(9), batched=batched
        )
        store.initialize({f"k{i}": config.pad(f"v{i}".encode()) for i in range(4)})
        results.append([store.access(req).response.value for req in workload])
    assert results[0] == results[1] == results[2]
    assert results[0][-1].rstrip(b"\x00") == b"new-val0"


# --------------------------------------------------------------------- #
# ParallelPrepareEngine
# --------------------------------------------------------------------- #


def _proxy(pnp: bool = True) -> LblProxy:
    config = _config(point_and_permute=pnp)
    proxy = LblProxy(config, KeyChain(label_bits=config.label_bits))
    list(proxy.initial_records({f"k{i}": config.pad(b"v") for i in range(4)}))
    return proxy


def test_parallel_engine_orders_epochs_per_key():
    proxy = _proxy()
    requests = [
        Request.read("k0"),
        Request.read("k1"),
        Request.read("k0"),
        Request.read("k0"),
        Request.read("k2"),
    ]
    with ParallelPrepareEngine(proxy, workers=4) as engine:
        built = engine.prepare_batch(requests)
    assert len(built) == len(requests)
    k0_epochs = [
        epoch for req, (_, _, epoch) in zip(requests, built) if req.key == "k0"
    ]
    assert k0_epochs == [1, 2, 3]
    assert proxy.counter("k0") == 3
    assert proxy.counter("k1") == 1 and proxy.counter("k2") == 1


def test_parallel_engine_serial_fallback_matches():
    proxy = _proxy()
    requests = [Request.read("k0"), Request.read("k1")]
    engine = ParallelPrepareEngine(proxy, workers=0)
    built = engine.prepare_batch(requests)
    assert [epoch for _, _, epoch in built] == [1, 1]
    engine.close()  # no-op without a pool


def test_parallel_engine_shuffle_lock_on_base_protocol():
    proxy = _proxy(pnp=False)
    with ParallelPrepareEngine(proxy, workers=3) as engine:
        assert engine._needs_shuffle_lock
        built = engine.prepare_batch([Request.read(f"k{i}") for i in range(4)])
    assert len(built) == 4


def test_parallel_engine_many_threads_stress():
    """Concurrent distinct-key prepares leave every counter consistent."""
    proxy = _proxy()
    requests = [Request.read(f"k{i % 4}") for i in range(24)]
    barrier_results = []
    with ParallelPrepareEngine(proxy, workers=8, num_stripes=2) as engine:
        def run():
            barrier_results.append(engine.prepare_batch(requests[:12]))

        threads = [threading.Thread(target=run) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert sum(proxy.counter(f"k{i}") for i in range(4)) == 24


def test_parallel_engine_rejects_bad_params():
    proxy = _proxy()
    with pytest.raises(ConfigurationError):
        ParallelPrepareEngine(proxy, workers=-1)
    with pytest.raises(ConfigurationError):
        ParallelPrepareEngine(proxy, num_stripes=0)
    with pytest.raises(ConfigurationError):
        ParallelPrepareEngine(proxy).prepare_batch([])


# --------------------------------------------------------------------- #
# initial_records complexity regression
# --------------------------------------------------------------------- #


def test_initial_records_grouping_is_linear(monkeypatch):
    """`value_to_groups` runs once per record, not once per record pair."""
    from repro.core.lbl import proxy as proxy_module

    calls = {"count": 0}
    real = proxy_module.value_to_groups

    def counting(value, group_bits):
        calls["count"] += 1
        return real(value, group_bits)

    monkeypatch.setattr(proxy_module, "value_to_groups", counting)
    config = _config()
    proxy = LblProxy(config, KeyChain(label_bits=config.label_bits))
    records = {f"key-{i}": config.pad(b"x") for i in range(32)}
    out = proxy.initial_records(records)
    assert len(out) == 32
    assert calls["count"] == 32
