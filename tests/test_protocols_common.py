"""Cross-protocol behaviour tests: every ORTOA variant (and the baseline)
must implement the same oblivious GET/PUT semantics."""

import random

import pytest

from repro.core import FheOrtoa, LblOrtoa, TeeOrtoa, TwoRoundBaseline
from repro.crypto.fhe import FheParams
from repro.errors import KeyNotFoundError
from repro.types import Operation, Request, StoreConfig

CONFIG = StoreConfig(value_len=16)
RECORDS = {
    "alice": b"balance=100",
    "bob": b"balance=250",
    "carol": b"balance=7",
}


def make_protocol(name):
    if name == "baseline":
        return TwoRoundBaseline(CONFIG)
    if name == "tee":
        return TeeOrtoa(CONFIG)
    if name == "lbl":
        return LblOrtoa(CONFIG, rng=random.Random(7))
    if name == "lbl-y2":
        return LblOrtoa(
            StoreConfig(value_len=16, group_bits=2), rng=random.Random(7)
        )
    if name == "lbl-pnp":
        return LblOrtoa(
            StoreConfig(value_len=16, group_bits=2, point_and_permute=True),
            rng=random.Random(7),
        )
    if name == "fhe":
        return FheOrtoa(CONFIG, fhe_params=FheParams(n=32, q_bits=160))
    raise AssertionError(name)


PROTOCOLS = ["baseline", "tee", "lbl", "lbl-y2", "lbl-pnp", "fhe"]
ONE_ROUND = ["tee", "lbl", "lbl-y2", "lbl-pnp", "fhe"]


@pytest.fixture(params=PROTOCOLS)
def protocol(request):
    p = make_protocol(request.param)
    p.initialize(RECORDS)
    return p


def padded(value: bytes) -> bytes:
    return CONFIG.pad(value)


def test_read_returns_initial_value(protocol):
    assert protocol.read("alice") == padded(b"balance=100")


def test_write_then_read(protocol):
    protocol.write("bob", b"balance=999")
    assert protocol.read("bob") == padded(b"balance=999")


def test_read_does_not_modify_value(protocol):
    for _ in range(3):
        assert protocol.read("carol") == padded(b"balance=7")


def test_writes_are_per_key(protocol):
    protocol.write("alice", b"A")
    protocol.write("bob", b"B")
    assert protocol.read("alice") == padded(b"A")
    assert protocol.read("bob") == padded(b"B")
    assert protocol.read("carol") == padded(b"balance=7")


def test_interleaved_ops_sequence(protocol):
    protocol.write("alice", b"v1")
    assert protocol.read("alice") == padded(b"v1")
    protocol.write("alice", b"v2")
    protocol.write("alice", b"v3")
    assert protocol.read("alice") == padded(b"v3")


def test_unknown_key_raises(protocol):
    with pytest.raises(KeyNotFoundError):
        protocol.read("mallory")


def test_transcript_reports_op_and_response(protocol):
    t = protocol.access(Request.read("alice"))
    assert t.op is Operation.READ
    assert t.response.value == padded(b"balance=100")
    t = protocol.access(Request.write("alice", padded(b"xyz")))
    assert t.op is Operation.WRITE


@pytest.mark.parametrize("name", ONE_ROUND)
def test_one_round_protocols_use_single_round_trip(name):
    p = make_protocol(name)
    p.initialize(RECORDS)
    assert p.access(Request.read("alice")).num_rounds == 1
    assert p.access(Request.write("alice", padded(b"x"))).num_rounds == 1


def test_baseline_uses_two_round_trips():
    p = make_protocol("baseline")
    p.initialize(RECORDS)
    assert p.access(Request.read("alice")).num_rounds == 2
    assert p.access(Request.write("alice", padded(b"x"))).num_rounds == 2


@pytest.mark.parametrize("name", PROTOCOLS)
def test_read_write_messages_have_identical_sizes(name):
    """The core obliviousness property at the wire level: at the same access
    index, a read and a write produce byte-identical message sizes.

    (FHE-ORTOA's unrelinearized ciphertexts grow with the access *count* —
    which the server knows anyway — so the comparison must align indices.)
    """
    p_read, p_write = make_protocol(name), make_protocol(name)
    p_read.initialize(RECORDS)
    p_write.initialize(RECORDS)
    t_read = p_read.access(Request.read("alice"))
    t_write = p_write.access(Request.write("alice", padded(b"new")))
    assert [rt.request_bytes for rt in t_read.round_trips] == [
        rt.request_bytes for rt in t_write.round_trips
    ]
    assert [rt.response_bytes for rt in t_read.round_trips] == [
        rt.response_bytes for rt in t_write.round_trips
    ]


@pytest.mark.parametrize("name", PROTOCOLS)
def test_read_write_server_work_is_identical(name):
    """Server-side op counts must not depend on the operation type."""
    p = make_protocol(name)
    p.initialize(RECORDS)
    read_ops = p.access(Request.read("alice")).ops_at("server")
    write_ops = p.access(Request.write("alice", padded(b"new"))).ops_at("server")
    # failed_dec varies stochastically for the shuffled LBL variant (the
    # position of the openable entry is random); everything else is exact.
    assert read_ops.kv_ops == write_ops.kv_ops
    assert read_ops.aead_dec == write_ops.aead_dec
    assert read_ops.fhe_mul == write_ops.fhe_mul
    assert read_ops.ecalls == write_ops.ecalls


def test_long_random_workload_matches_reference_model():
    """Drive every protocol with the same random op sequence and check all
    stores agree with a plain dict reference."""
    rng = random.Random(42)
    protocols = [make_protocol(n) for n in ["baseline", "tee", "lbl-y2", "lbl-pnp"]]
    for p in protocols:
        p.initialize(RECORDS)
    reference = {k: padded(v) for k, v in RECORDS.items()}
    keys = list(RECORDS)
    for _ in range(60):
        key = rng.choice(keys)
        if rng.random() < 0.5:
            value = padded(rng.randbytes(rng.randint(0, 16)))
            reference[key] = value
            for p in protocols:
                p.write(key, value)
        else:
            for p in protocols:
                assert p.read(key) == reference[key], p.name
