"""Tests for KeyChain key derivation."""

import pytest

from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError


def test_same_master_same_keys():
    a = KeyChain(b"m" * 32)
    b = KeyChain(b"m" * 32)
    assert a.data_key == b.data_key
    assert a.encode_key("k") == b.encode_key("k")
    assert a.label_prf.evaluate("x") == b.label_prf.evaluate("x")


def test_different_master_different_keys():
    a = KeyChain(b"a" * 32)
    b = KeyChain(b"b" * 32)
    assert a.data_key != b.data_key
    assert a.encode_key("k") != b.encode_key("k")


def test_random_master_generated():
    assert KeyChain().data_key != KeyChain().data_key


def test_subkeys_are_domain_separated():
    kc = KeyChain(b"m" * 32)
    outputs = {
        bytes(kc.data_key),
        kc.key_encoding_prf.evaluate("x", out_bytes=32),
        kc.label_prf.evaluate("x", out_bytes=32),
        kc.permute_prf.evaluate("x", out_bytes=32),
    }
    assert len(outputs) == 4


def test_label_bits_config():
    kc = KeyChain(b"m" * 32, label_bits=256)
    assert kc.label_prf.out_bytes == 32
    with pytest.raises(ConfigurationError):
        KeyChain(b"m" * 32, label_bits=12)


def test_short_master_rejected():
    with pytest.raises(ConfigurationError):
        KeyChain(b"short")


def test_key_encoding_is_deterministic_and_distinct():
    kc = KeyChain(b"m" * 32)
    assert kc.encode_key("user:1") == kc.encode_key("user:1")
    assert kc.encode_key("user:1") != kc.encode_key("user:2")
