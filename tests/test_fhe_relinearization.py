"""Tests for BFV relinearization and its effect on FHE-ORTOA (§3.3 follow-up)."""

import pytest

from repro.core import FheOrtoa
from repro.crypto.fhe import FheParams, FheScheme, RelinearizationKey
from repro.errors import ConfigurationError
from repro.types import StoreConfig

PARAMS = FheParams(n=32, q_bits=120)


@pytest.fixture()
def scheme():
    return FheScheme(PARAMS)


def test_relinearize_reduces_to_two_components(scheme):
    rlk = scheme.make_relin_key()
    ct = scheme.multiply(scheme.encrypt_bytes(bytes(16)), scheme.encrypt_scalar(1))
    assert ct.size == 3
    reduced = FheScheme.relinearize(ct, rlk)
    assert reduced.size == 2


def test_relinearize_preserves_plaintext(scheme):
    rlk = scheme.make_relin_key()
    value = bytes(range(30))
    ct = scheme.multiply(scheme.encrypt_bytes(value), scheme.encrypt_scalar(1))
    assert scheme.decrypt_bytes(FheScheme.relinearize(ct, rlk), 30) == value


def test_relinearize_preserves_zero_branch(scheme):
    rlk = scheme.make_relin_key()
    ct = scheme.multiply(scheme.encrypt_bytes(bytes([9] * 16)), scheme.encrypt_scalar(0))
    assert scheme.decrypt_bytes(FheScheme.relinearize(ct, rlk), 16) == bytes(16)


def test_relinearized_ciphertexts_remain_multiplicable(scheme):
    """The whole point: depth-2 circuits on always-size-2 ciphertexts."""
    rlk = scheme.make_relin_key()
    value = bytes([5] * 16)
    ct = scheme.encrypt_bytes(value)
    for _ in range(3):
        ct = FheScheme.relinearize(scheme.multiply(ct, scheme.encrypt_scalar(1)), rlk)
        assert ct.size == 2
    assert scheme.decrypt_bytes(ct, 16) == value


def test_relinearize_is_noop_on_fresh_ciphertexts(scheme):
    rlk = scheme.make_relin_key()
    ct = scheme.encrypt_bytes(bytes(16))
    assert FheScheme.relinearize(ct, rlk) is ct


def test_relinearize_adds_bounded_noise(scheme):
    rlk = scheme.make_relin_key()
    ct = scheme.multiply(scheme.encrypt_bytes(bytes(16)), scheme.encrypt_scalar(1))
    before = scheme.noise_budget(ct)
    after = scheme.noise_budget(FheScheme.relinearize(ct, rlk))
    assert after <= before
    assert before - after < rlk.noise_log2 + 2


def test_relinearize_rejects_mismatched_params(scheme):
    other = FheScheme(FheParams(n=64, q_bits=120))
    rlk = other.make_relin_key()
    ct = scheme.multiply(scheme.encrypt_scalar(1), scheme.encrypt_scalar(1))
    with pytest.raises(ConfigurationError):
        FheScheme.relinearize(ct, rlk)


def test_relinearize_rejects_oversized_ciphertexts(scheme):
    rlk = scheme.make_relin_key()
    ct = scheme.encrypt_scalar(1)
    for _ in range(2):
        ct = scheme.multiply(ct, scheme.encrypt_scalar(1))
    assert ct.size == 4
    with pytest.raises(ConfigurationError):
        FheScheme.relinearize(ct, rlk)


def test_decomp_bits_validation(scheme):
    with pytest.raises(ConfigurationError):
        scheme.make_relin_key(decomp_bits=0)
    with pytest.raises(ConfigurationError):
        scheme.make_relin_key(decomp_bits=64)


def test_smaller_decomposition_base_means_less_relin_noise(scheme):
    assert scheme.make_relin_key(4).noise_log2 < scheme.make_relin_key(16).noise_log2


# --------------------------------------------------------------------- #
# FHE-ORTOA with relinearization
# --------------------------------------------------------------------- #

def make_protocol(relinearize):
    config = StoreConfig(value_len=16)
    protocol = FheOrtoa(config, fhe_params=PARAMS, relinearize=relinearize)
    protocol.initialize({"k": b"value"})
    return protocol


def test_relin_protocol_correctness():
    p = make_protocol(relinearize=True)
    assert p.read("k") == StoreConfig(value_len=16).pad(b"value")
    p.write("k", b"updated")
    assert p.read("k") == StoreConfig(value_len=16).pad(b"updated")


def test_relin_bounds_stored_ciphertext_size():
    """Relinearization fixes the §3.3 size blow-up..."""
    plain = make_protocol(relinearize=False)
    relin = make_protocol(relinearize=True)
    for _ in range(3):
        plain.read("k")
        relin.read("k")
    encoded_p = plain.keychain.encode_key("k")
    encoded_r = relin.keychain.encode_key("k")
    assert plain.store.get(encoded_p).size > 2
    assert relin.store.get(encoded_r).size == 2


def test_relin_does_not_fix_noise_exhaustion():
    """...but not the noise-depth exhaustion: both variants die after a
    small number of accesses (the honest conclusion of the ablation)."""
    relin = make_protocol(relinearize=True)
    remaining = relin.remaining_accesses("k")
    assert 1 <= remaining < 30
