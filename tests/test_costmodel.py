"""Model == ledger: the cost model's closed forms against measured reality.

The tentpole contract of :mod:`repro.analysis.costmodel`: for GET and PUT,
on every crypto backend, the symbolic bytes-per-access and ops-per-access
must equal the wire ledger *exactly* — not approximately.  These tests are
what licenses the capacity planner and the dollar estimate to present model
outputs as measurements.
"""

import random

import pytest

from repro import obs
from repro.analysis.costmodel import (
    LblCostModel,
    MODEL_BACKENDS,
    plan_capacity,
    run_model_check,
)
from repro.core.sharded import ShardedLblDeployment
from repro.errors import ConfigurationError
from repro.obs import ledger
from repro.transport.cluster import ShardCluster
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(120)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture(autouse=True)
def fresh_obs():
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# --------------------------------------------------------------------- #
# The validation matrix: value sizes x backends x {GET, PUT}
# --------------------------------------------------------------------- #

def test_model_matches_ledger_across_backends_and_sizes():
    """GET and PUT at 3 value sizes on scalar/stdlib/vector/procpool."""
    report = run_model_check(
        value_sizes=(4, 8, 16),
        backends=("scalar", "stdlib", "vector", "procpool"),
    )
    failing = [case for case in report["cases"] if not case["ok"]]
    assert report["ok"], f"model/ledger mismatches: {failing}"
    assert len(report["cases"]) == 3 * 4 * 2


def test_model_check_reports_wire_and_ops_evidence():
    report = run_model_check(value_sizes=(8,), backends=("stdlib",))
    (get_case, put_case) = report["cases"]
    assert get_case["op"] == "get" and put_case["op"] == "put"
    for case in (get_case, put_case):
        assert case["expected_ops"] == case["actual_ops"]
        assert case["expected_wire"] == case["actual_wire"]
        assert case["expected_wire"]["access.sent"] > 0
    # Obliviousness at the resource level: both ops cost the same.
    assert get_case["expected_ops"] == put_case["expected_ops"]
    assert get_case["expected_wire"] == put_case["expected_wire"]


def test_model_rejects_unknown_backend():
    with pytest.raises(ConfigurationError):
        LblCostModel(value_len=8, backend="quantum")
    assert "stdlib" in MODEL_BACKENDS


# --------------------------------------------------------------------- #
# Sharded deployments: {1, 4} shards, pipelined rows vs the model
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("num_shards", [1, 4])
def test_sharded_pipelined_rows_match_model(num_shards):
    """Every pipelined access's client row equals the model, and the rows
    sum to the transport's registry totals (no bytes lost or invented)."""
    obs.enable()
    keys = [f"cm{i}" for i in range(8)]
    with ShardCluster(num_shards, in_process=True) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG, cluster.addresses, rng=random.Random(3), pipeline_depth=4
        )
        try:
            deployment.initialize({key: b"\x01" * 16 for key in keys})
            obs.reset()  # meter only the accesses, not the bulk load
            requests = [
                Request.read(key) if i % 2 == 0 else Request.write(key, b"\x02" * 16)
                for i, key in enumerate(keys)
            ]
            epochs = {key: deployment.proxy.counter(key) for key in keys}
            deployment.access_pipelined(requests, depth=4)
        finally:
            deployment.close()

    rows = {
        row.label.split(":", 1)[1]: row.snapshot()
        for row in ledger.completed_rows()
        if row.label.startswith("pipelined:")
    }
    assert sorted(rows) == sorted(keys)

    for key in keys:
        model = LblCostModel.from_config(
            CONFIG, backend="stdlib", key=key, counter=epochs[key]
        )
        expected_ops = model.ops(include_server=False)
        snap = rows[key]
        assert {
            name: snap["ops"].get(name, 0) for name in expected_ops
        } == expected_ops, key
        assert snap["wire"] == {
            "access.sent": model.framed_request_bytes(traced=True),
            "access.received": model.framed_response_bytes(),
        }, key

    # Attribution exactness: the per-request rows sum to the client-role
    # socket totals the transport metered independently.
    wire_totals = ledger.registry_wire_snapshot()
    assert wire_totals["client.access.sent"] == sum(
        snap["wire"]["access.sent"] for snap in rows.values()
    )
    assert wire_totals["client.access.received"] == sum(
        snap["wire"]["access.received"] for snap in rows.values()
    )


@pytest.mark.parametrize("num_shards", [1, 4])
def test_sharded_batch_rows_sum_to_transport_totals(num_shards):
    """Batch sub-message attribution: per-request shares plus envelopes
    reproduce the socket byte counts exactly."""
    obs.enable()
    keys = [f"b{i}" for i in range(10)]
    with ShardCluster(num_shards, in_process=True) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG, cluster.addresses, rng=random.Random(5)
        )
        try:
            deployment.initialize({key: b"\x03" * 16 for key in keys})
            obs.reset()
            deployment.access_batch(
                [
                    Request.read(key)
                    if i % 2
                    else Request.write(key, b"\x04" * 16)
                    for i, key in enumerate(keys)
                ]
            )
        finally:
            deployment.close()

    rows = [
        row.snapshot()
        for row in ledger.completed_rows()
        if row.label.startswith("batched:")
    ]
    assert len(rows) == len(keys)
    wire_totals = ledger.registry_wire_snapshot()
    assert wire_totals["client.batch.sent"] == sum(
        snap["wire"].get("batch.sent", 0) for snap in rows
    )
    assert wire_totals["client.batch.received"] == sum(
        snap["wire"].get("batch.received", 0) for snap in rows
    )


# --------------------------------------------------------------------- #
# Framed and batch byte formulas
# --------------------------------------------------------------------- #

def test_batch_bytes_formula_composes_per_access_bytes():
    model = LblCostModel(value_len=16, group_bits=2, point_and_permute=True)
    n = 5
    assert model.batch_request_bytes(n, traced=True) == (
        4 + 25 + 1 + n * (4 + model.request_bytes)
    )
    assert model.batch_response_bytes(n) == 4 + 9 + 1 + n * (
        4 + model.response_bytes
    )


def test_paper_configuration_bytes():
    """The paper's y=2 configuration: 160 B values, 128-bit labels."""
    model = LblCostModel(value_len=160, group_bits=2, point_and_permute=True)
    assert model.num_groups == 640
    assert model.table_size == 4
    assert model.request_bytes == 125_466
    assert model.response_bytes == 12_801
    assert model.bytes_per_access == 138_267


# --------------------------------------------------------------------- #
# Capacity planner
# --------------------------------------------------------------------- #

def test_plan_capacity_scales_with_load():
    model = LblCostModel(value_len=160, group_bits=2, point_and_permute=True)
    small = plan_capacity(1_000_000, 10, model)
    large = plan_capacity(100_000_000, 100, model)
    assert large.shards > small.shards
    assert large.cpu_cores > small.cpu_cores
    assert large.dollars_per_day > small.dollars_per_day
    assert small.bytes_per_access == model.framed_bytes_per_access(traced=True)
    assert small.compressions_per_access == model.ops()["sha256.compressions"]
    assert small.projected_p99_ms > 0
    plan_dict = small.as_dict()
    assert plan_dict["assumptions"]["p99_model"].startswith("M/M/1")


def test_plan_capacity_validates_inputs():
    model = LblCostModel(value_len=16)
    with pytest.raises(ConfigurationError):
        plan_capacity(0, 10, model)
    with pytest.raises(ConfigurationError):
        plan_capacity(10, 10, model, target_utilization=1.5)
