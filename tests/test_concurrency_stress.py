"""Concurrency stress: overlapping keys under ConcurrentLblProxy.

Barrier-synchronised rounds create real contention on shared keys while
keeping the set of acceptable observations small enough to check:

* in round ``r`` exactly one thread writes each key while every other
  thread reads it, so a read may legitimately observe the round ``r-1``
  value or the round ``r`` value — anything else is a lost update or a
  torn epoch;
* the barrier guarantees round ``r-1`` writes finished before round ``r``
  starts, so values older than one round can never appear;
* after all threads join, a sequential read-back must equal the oracle:
  the value written by each key's final-round writer.

The same scenario runs against the in-process deployment and against a
sharded TCP cluster, which drives the striped-lock worker-pool server
with genuinely concurrent overlapping-key traffic.
"""

import random
import threading

import pytest

from repro.core.lbl.concurrent import ConcurrentLblProxy
from repro.core.lbl import LblOrtoa
from repro.core.sharded import ShardedLblDeployment
from repro.transport.cluster import ShardCluster
from repro.types import StoreConfig

pytestmark = pytest.mark.timeout(30)

CONFIG = StoreConfig(value_len=32, group_bits=2, point_and_permute=True)

NUM_THREADS = 4
NUM_KEYS = 8
NUM_ROUNDS = 3
KEYS = [f"key{i}" for i in range(NUM_KEYS)]


def value_at(key: str, round_no: int) -> bytes:
    if round_no < 0:
        return CONFIG.pad(f"{key}:init".encode())
    return CONFIG.pad(f"{key}:round{round_no}".encode())


def writer_of(key_index: int, round_no: int) -> int:
    return (key_index + round_no) % NUM_THREADS


def run_stress(proxy: ConcurrentLblProxy, seed: int) -> None:
    barrier = threading.Barrier(NUM_THREADS)
    errors: list[Exception] = []

    def worker(thread_id: int) -> None:
        # Each thread visits the keys in its own order so lock stripes see
        # readers and the writer arriving interleaved, not in lockstep.
        order = list(range(NUM_KEYS))
        random.Random(seed + thread_id).shuffle(order)
        try:
            for round_no in range(NUM_ROUNDS):
                barrier.wait(timeout=20)
                for key_index in order:
                    key = KEYS[key_index]
                    if writer_of(key_index, round_no) == thread_id:
                        proxy.write(key, value_at(key, round_no))
                    else:
                        observed = proxy.read(key)
                        allowed = {
                            value_at(key, round_no - 1),
                            value_at(key, round_no),
                        }
                        if observed not in allowed:
                            raise AssertionError(
                                f"{key} round {round_no}: read {observed!r},"
                                f" expected one of the last two writes"
                            )
        except Exception as exc:  # noqa: BLE001 - re-raised in the main thread
            errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=25)
    assert not errors, errors
    assert not any(thread.is_alive() for thread in threads)

    # Every thread touched every key every round, exactly once.
    assert proxy.completed == NUM_THREADS * NUM_KEYS * NUM_ROUNDS

    # Sequential oracle: the final-round writer's value must have stuck.
    for key_index, key in enumerate(KEYS):
        assert proxy.read(key) == value_at(key, NUM_ROUNDS - 1), key


def test_stress_in_process_deployment():
    ortoa = LblOrtoa(CONFIG, rng=random.Random(11))
    ortoa.initialize({key: value_at(key, -1) for key in KEYS})
    run_stress(ConcurrentLblProxy(ortoa), seed=11)


def test_stress_in_process_few_stripes_forces_collisions():
    """num_stripes < num_keys: stripe collisions must only cost parallelism."""
    ortoa = LblOrtoa(CONFIG, rng=random.Random(13))
    ortoa.initialize({key: value_at(key, -1) for key in KEYS})
    run_stress(ConcurrentLblProxy(ortoa, num_stripes=2), seed=13)


def test_stress_sharded_cluster_striped_server():
    """Overlapping keys across a 2-shard cluster hit the striped TCP server."""
    with ShardCluster(2, in_process=True) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG, cluster.addresses, rng=random.Random(17)
        )
        try:
            deployment.initialize({key: value_at(key, -1) for key in KEYS})
            run_stress(ConcurrentLblProxy(deployment), seed=17)
        finally:
            deployment.close()
