"""Property tests on access transcripts: the invariants every protocol must
hold over arbitrary operation sequences."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LblOrtoa, TeeOrtoa, TwoRoundBaseline
from repro.core.base import OpCounts
from repro.types import Operation, Request, StoreConfig

CONFIG = StoreConfig(value_len=8)
LBL_CONFIG = StoreConfig(value_len=8, group_bits=2, point_and_permute=True)

ops_strategy = st.lists(
    st.tuples(st.booleans(), st.binary(min_size=8, max_size=8)),
    min_size=1,
    max_size=12,
)


def build(kind):
    if kind == "baseline":
        protocol = TwoRoundBaseline(CONFIG)
    elif kind == "tee":
        protocol = TeeOrtoa(CONFIG)
    else:
        protocol = LblOrtoa(LBL_CONFIG, rng=random.Random(0))
    protocol.initialize({"k": bytes(8)})
    return protocol


@given(ops=ops_strategy, kind=st.sampled_from(["baseline", "tee", "lbl"]))
@settings(max_examples=30, deadline=None)
def test_transcript_invariants_over_random_sequences(ops, kind):
    protocol = build(kind)
    expected_rounds = protocol.rounds
    shapes = set()
    model = bytes(8)
    for is_read, value in ops:
        if is_read:
            transcript = protocol.access(Request.read("k"))
            assert transcript.op is Operation.READ
            assert transcript.response.value == model
        else:
            transcript = protocol.access(Request.write("k", value))
            assert transcript.op is Operation.WRITE
            model = value
        # Invariant 1: round count is a protocol constant.
        assert transcript.num_rounds == expected_rounds
        # Invariant 2: wire shape never varies (size obliviousness).
        shapes.add((transcript.request_bytes, transcript.response_bytes))
        # Invariant 3: phases alternate proxy/server work with the server
        # phase count equal to the round count.
        server_phases = [p for p in transcript.phases if p.location == "server"]
        assert len(server_phases) == expected_rounds
    assert len(shapes) == 1


@given(ops=ops_strategy)
@settings(max_examples=20, deadline=None)
def test_server_work_is_op_independent_property(ops):
    """Over any op mix, per-access server op counts form a single profile."""
    protocol = build("lbl")
    profiles = set()
    for is_read, value in ops:
        request = Request.read("k") if is_read else Request.write("k", value)
        server = protocol.access(request).ops_at("server")
        profiles.add((server.aead_dec, server.failed_dec, server.kv_ops))
    assert len(profiles) == 1


@given(
    a=st.builds(
        OpCounts,
        prf=st.integers(0, 100),
        aead_enc=st.integers(0, 100),
        fhe_mul=st.integers(0, 10),
    ),
    b=st.builds(
        OpCounts,
        aead_dec=st.integers(0, 100),
        kv_ops=st.integers(0, 100),
        ecalls=st.integers(0, 10),
    ),
)
@settings(max_examples=50)
def test_opcounts_addition_is_componentwise(a, b):
    total = a + b
    assert total.prf == a.prf + b.prf
    assert total.aead_enc == a.aead_enc + b.aead_enc
    assert total.aead_dec == a.aead_dec + b.aead_dec
    assert total.kv_ops == a.kv_ops + b.kv_ops
    assert total.ecalls == a.ecalls + b.ecalls
    assert total.fhe_mul == a.fhe_mul + b.fhe_mul
