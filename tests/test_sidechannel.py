"""Side-channel tests (§4.3): the correct enclave is trace-oblivious, the
deliberately leaky one is fully distinguishable."""

import pytest

from repro.crypto import aead
from repro.errors import ProtocolError
from repro.tee.sidechannel import (
    LeakyEnclave,
    TraceProbe,
    build_enclave,
    operation_type_advantage,
)

DATA_KEY = b"d" * 32


def drive(enclave, is_read, probe):
    selector = aead.encrypt(DATA_KEY, bytes([1 if is_read else 0]))
    enclave.ecall_select_and_reencrypt(
        selector,
        aead.encrypt(DATA_KEY, b"old-value"),
        aead.encrypt(DATA_KEY, b"new-value"),
    )
    probe.observe(enclave)


def collect_traces(leaky):
    enclave = build_enclave(leaky, DATA_KEY)
    read_probe, write_probe = TraceProbe(), TraceProbe()
    for _ in range(10):
        drive(enclave, True, read_probe)
        drive(enclave, False, write_probe)
    return read_probe.traces, write_probe.traces


def test_correct_enclave_has_zero_trace_advantage():
    reads, writes = collect_traces(leaky=False)
    assert operation_type_advantage(reads, writes) == 0.0


def test_leaky_enclave_is_fully_distinguishable():
    reads, writes = collect_traces(leaky=True)
    assert operation_type_advantage(reads, writes) == 1.0


def test_leaky_enclave_is_functionally_correct():
    """The scary part: the broken enclave passes every functional test."""
    enclave = build_enclave(leaky=True, data_key=DATA_KEY)
    read_out = enclave.ecall_select_and_reencrypt(
        aead.encrypt(DATA_KEY, b"\x01"),
        aead.encrypt(DATA_KEY, b"old"),
        aead.encrypt(DATA_KEY, b"new"),
    )
    write_out = enclave.ecall_select_and_reencrypt(
        aead.encrypt(DATA_KEY, b"\x00"),
        aead.encrypt(DATA_KEY, b"old"),
        aead.encrypt(DATA_KEY, b"new"),
    )
    assert aead.decrypt(DATA_KEY, read_out) == b"old"
    assert aead.decrypt(DATA_KEY, write_out) == b"new"


def test_leaky_trace_shows_the_branch():
    reads, writes = collect_traces(leaky=True)
    assert all("decrypt-old" in t and "decrypt-new" not in t for t in reads)
    assert all("decrypt-new" in t and "decrypt-old" not in t for t in writes)


def test_leaky_enclave_still_requires_provisioning():
    enclave = LeakyEnclave.__new__(LeakyEnclave)
    from repro.tee.attestation import HardwareRoot

    enclave.__init__(HardwareRoot())
    with pytest.raises(ProtocolError):
        enclave.ecall_select_and_reencrypt(b"x", b"y", b"z")


def test_advantage_requires_both_trace_sets():
    with pytest.raises(ProtocolError):
        operation_type_advantage([], [("a",)])


def test_advantage_on_partially_overlapping_traces():
    reads = [("a",)] * 8 + [("b",)] * 2
    writes = [("b",)] * 8 + [("a",)] * 2
    assert operation_type_advantage(reads, writes) == pytest.approx(0.6)
