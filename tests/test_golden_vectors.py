"""Golden vectors + batch-vs-scalar cross-checks for the crypto kernels.

The batched fast paths (precomputed HMAC key state, fused label derivation,
batch AEAD) must be drop-in: byte-identical to the constructions they
replace.  Two independent nets catch a silent change:

* **pinned vectors** — exact outputs of :meth:`Prf.evaluate`,
  :meth:`LabelCodec.label`, and :func:`aead.encrypt` (fixed nonce), plus a
  live re-derivation of each from the *stdlib* ``hmac`` module, so a vector
  can only move if the documented construction itself changes;
* **Hypothesis cross-checks** — every batch entry point agrees with its
  scalar counterpart on arbitrary inputs.
"""

from __future__ import annotations

import hashlib
import hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import aead
from repro.crypto.labels import LabelCodec
from repro.crypto.prf import Prf, PrfContext, encode_components

# --------------------------------------------------------------------- #
# Stdlib references for the documented constructions
# --------------------------------------------------------------------- #


def _ref_prf(key: bytes, components: tuple, out_bytes: int) -> bytes:
    """RFC 2104 HMAC-SHA256 expand-and-truncate via the stdlib only."""
    message = encode_components(*components)
    out = b""
    counter = 0
    while len(out) < out_bytes:
        block = hmac.new(
            key, counter.to_bytes(4, "big") + message, hashlib.sha256
        ).digest()
        out += block
        counter += 1
    return out[:out_bytes]


def _ref_encrypt(key: bytes, plaintext: bytes, nonce: bytes) -> bytes:
    """The documented AEAD: domain-separated HMAC keystream + truncated tag."""
    keystream = b""
    counter = 0
    while len(keystream) < len(plaintext):
        keystream += hmac.new(
            key, b"aead-enc" + nonce + counter.to_bytes(4, "big"), hashlib.sha256
        ).digest()
        counter += 1
    body = bytes(p ^ k for p, k in zip(plaintext, keystream))
    tag = hmac.new(key, b"aead-mac" + nonce + body, hashlib.sha256).digest()[:16]
    return nonce + body + tag


# --------------------------------------------------------------------- #
# Pinned vectors
# --------------------------------------------------------------------- #

_PRF_KEY = bytes(range(32))
_PRF16_VECTOR = bytes.fromhex("9d82c4c8b2446fe0c51bfb4124cef4c6")
_PRF48_VECTOR = bytes.fromhex(
    "ebde6f4e985cefde836f68d3c658e98dfe79698f062bac4a9c344c6876a91792"
    "27848d77f07f933c8a11ff0c70798110"
)
_LABEL_VECTOR = bytes.fromhex("aed0dee39cee3c6c5c3e4b40d74b25cd")
_AEAD_KEY = b"k" * 16
_AEAD_PLAINTEXT = b"hello world label"
_AEAD_VECTOR = bytes.fromhex(
    "00000000000000000000000033b7dab508d89c4da72c107b77b07062"
    "a53d5281cb5e812fa1e5ebed11ae8851b9"
)


def test_prf_vector_single_block():
    assert Prf(_PRF_KEY, out_bytes=16).evaluate("label", "key-0", 3, 1, 42) == (
        _PRF16_VECTOR
    )
    assert _ref_prf(_PRF_KEY, ("label", "key-0", 3, 1, 42), 16) == _PRF16_VECTOR


def test_prf_vector_multi_block():
    """48 output bytes span two SHA-256 blocks (the counter-expansion path)."""
    assert Prf(_PRF_KEY, out_bytes=48).evaluate("x") == _PRF48_VECTOR
    assert _ref_prf(_PRF_KEY, ("x",), 48) == _PRF48_VECTOR


def test_label_vector():
    codec = LabelCodec(
        Prf(b"\x01" * 32, out_bytes=16),
        Prf(b"\x02" * 32, out_bytes=16),
        value_len=4,
        group_bits=2,
    )
    assert codec.label("obj", 2, 1, 7) == _LABEL_VECTOR


def test_aead_vector_fixed_nonce():
    ct = aead.encrypt(_AEAD_KEY, _AEAD_PLAINTEXT, nonce=bytes(12))
    assert ct == _AEAD_VECTOR
    assert _ref_encrypt(_AEAD_KEY, _AEAD_PLAINTEXT, bytes(12)) == _AEAD_VECTOR
    assert aead.decrypt(_AEAD_KEY, ct) == _AEAD_PLAINTEXT


# --------------------------------------------------------------------- #
# Hypothesis: batch entry points == scalar counterparts
# --------------------------------------------------------------------- #

_keys = st.binary(min_size=16, max_size=64)
_components = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=2**31),
        st.binary(max_size=24),
        st.text(max_size=12),
    ),
    min_size=1,
    max_size=4,
)


@settings(max_examples=50, deadline=None)
@given(key=_keys, message=st.binary(max_size=200), out_bytes=st.sampled_from([8, 16, 32, 48, 80]))
def test_prf_matches_stdlib_hmac(key, message, out_bytes):
    """The manual two-stage HMAC is exactly RFC 2104 at every output size."""
    assert Prf(key, out_bytes=out_bytes).evaluate(message) == _ref_prf(
        key, (message,), out_bytes
    )


@settings(max_examples=30, deadline=None)
@given(key=_keys, suffixes=st.lists(_components, min_size=1, max_size=8))
def test_evaluate_many_matches_scalar(key, suffixes):
    prf = Prf(key, out_bytes=16)
    batch = prf.evaluate_many(("prefix", 7), suffixes)
    scalar = [prf.evaluate("prefix", 7, *suffix) for suffix in suffixes]
    assert batch == scalar


@settings(max_examples=30, deadline=None)
@given(key=_keys, tails=st.lists(st.binary(max_size=40), min_size=1, max_size=8))
def test_context_tails_match_scalar(key, tails):
    prf = Prf(key, out_bytes=16)
    ctx = prf.context("ctx-prefix")
    batch = ctx.evaluate_tails(tails)
    assert batch == [ctx.evaluate_tail(tail) for tail in tails]


@settings(max_examples=30, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.binary(min_size=16, max_size=32), st.binary(max_size=64)),
        min_size=1,
        max_size=8,
    )
)
def test_encrypt_many_matches_scalar(entries):
    keys = [key for key, _ in entries]
    payloads = [payload for _, payload in entries]
    nonces = [bytes([i]) * aead.NONCE_LEN for i in range(len(entries))]
    batch = aead.encrypt_many(keys, payloads, nonces=nonces)
    scalar = [
        aead.encrypt(key, payload, nonce=nonce)
        for key, payload, nonce in zip(keys, payloads, nonces)
    ]
    assert batch == scalar
    for key, ciphertext, payload in zip(keys, batch, payloads):
        assert aead.decrypt(key, ciphertext) == payload


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.binary(min_size=16, max_size=32), min_size=2, max_size=6, unique=True),
    winner=st.integers(min_value=0, max_value=5),
    payload=st.binary(min_size=1, max_size=64),
)
def test_open_any_matches_try_decrypt(keys, winner, payload):
    winner %= len(keys)
    table = [aead.encrypt(key, payload) for key in keys]
    hit = aead.open_any(keys[winner], table)
    assert hit == (winner, payload)
    scalar = next(
        (
            (index, aead.try_decrypt(keys[winner], ciphertext))
            for index, ciphertext in enumerate(table)
            if aead.try_decrypt(keys[winner], ciphertext) is not None
        ),
        None,
    )
    assert scalar == hit


@settings(max_examples=20, deadline=None)
@given(
    value_len=st.sampled_from([1, 4, 20]),
    group_bits=st.sampled_from([1, 2, 4]),
    counter=st.integers(min_value=0, max_value=1000),
)
def test_labels_for_groups_matches_scalar(value_len, group_bits, counter):
    codec = LabelCodec(
        Prf(b"\x03" * 32, out_bytes=16),
        Prf(b"\x04" * 32, out_bytes=16),
        value_len=value_len,
        group_bits=group_bits,
    )
    rows = codec.labels_for_groups("some-key", counter)
    assert rows == [
        codec.labels_for_group("some-key", index, counter)
        for index in range(codec.num_groups)
    ]


@settings(max_examples=20, deadline=None)
@given(counter=st.integers(min_value=0, max_value=1000))
def test_permute_offsets_match_scalar(counter):
    codec = LabelCodec(
        Prf(b"\x05" * 32, out_bytes=16),
        Prf(b"\x06" * 32, out_bytes=16),
        value_len=8,
        group_bits=2,
    )
    offsets = codec.permute_offsets("some-key", counter)
    assert offsets == [
        codec.permute_offset("some-key", index, counter)
        for index in range(codec.num_groups)
    ]


def test_prf_context_class_exported():
    """PrfContext is part of the public kernel API."""
    ctx = Prf(b"\x07" * 32, out_bytes=16).context("p")
    assert isinstance(ctx, PrfContext)
