"""Tests for the LBL-ORTOA label codec (bit packing, derivation, inversion)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import KeyChain
from repro.crypto.labels import LabelCodec, groups_to_value, value_to_groups
from repro.errors import ConfigurationError, TamperDetectedError


def make_codec(value_len=4, group_bits=1):
    kc = KeyChain(b"m" * 32)
    return LabelCodec(
        kc.label_prf, kc.permute_prf, value_len=value_len, group_bits=group_bits
    )


# --------------------------------------------------------------------- #
# Group packing
# --------------------------------------------------------------------- #

def test_value_to_groups_bits():
    assert value_to_groups(b"\xa5", 1) == (1, 0, 1, 0, 0, 1, 0, 1)


def test_value_to_groups_pairs():
    assert value_to_groups(b"\xa5", 2) == (0b10, 0b10, 0b01, 0b01)


def test_value_to_groups_pads_last_group():
    # 8 bits into groups of 3 -> 3 groups, last padded with a zero bit.
    assert value_to_groups(b"\xff", 3) == (0b111, 0b111, 0b110)


def test_groups_roundtrip_various_y():
    value = bytes([0x12, 0x34, 0xAB, 0xFF])
    for y in (1, 2, 3, 4, 5, 8):
        groups = value_to_groups(value, y)
        assert groups_to_value(groups, y, len(value)) == value


def test_groups_to_value_validates_length_and_range():
    with pytest.raises(ConfigurationError):
        groups_to_value((0,) * 7, 1, 1)  # needs 8 groups
    with pytest.raises(ConfigurationError):
        groups_to_value((2,) * 8, 1, 1)  # bit group can't hold 2
    with pytest.raises(ConfigurationError):
        value_to_groups(b"x", 0)


@given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=9))
@settings(max_examples=100)
def test_group_packing_roundtrip_property(value, y):
    assert groups_to_value(value_to_groups(value, y), y, len(value)) == value


# --------------------------------------------------------------------- #
# Label derivation
# --------------------------------------------------------------------- #

def test_num_groups():
    assert make_codec(value_len=4, group_bits=1).num_groups == 32
    assert make_codec(value_len=4, group_bits=2).num_groups == 16
    assert make_codec(value_len=4, group_bits=3).num_groups == 11


def test_labels_deterministic_per_counter():
    codec = make_codec()
    assert codec.label("k", 0, 1, 7) == codec.label("k", 0, 1, 7)
    assert codec.label("k", 0, 1, 7) != codec.label("k", 0, 1, 8)


def test_labels_distinct_across_dimensions():
    codec = make_codec(group_bits=2)
    labels = {
        codec.label(k, i, v, ct)
        for k in ("a", "b")
        for i in range(3)
        for v in range(4)
        for ct in range(3)
    }
    assert len(labels) == 2 * 3 * 4 * 3


def test_encode_decode_roundtrip():
    codec = make_codec(value_len=8, group_bits=2)
    value = b"\x01\x02\x03\x04\x05\x06\x07\x08"
    labels = codec.encode_value("key", value, counter=3)
    assert len(labels) == codec.num_groups
    assert codec.decode_labels("key", labels, counter=3) == value


def test_decode_with_wrong_counter_detects_tamper():
    codec = make_codec()
    labels = codec.encode_value("key", b"abcd", counter=1)
    with pytest.raises(TamperDetectedError):
        codec.decode_labels("key", labels, counter=2)


def test_decode_with_corrupted_label_detects_tamper():
    codec = make_codec()
    labels = codec.encode_value("key", b"abcd", counter=1)
    labels[5] = b"\x00" * len(labels[5])
    with pytest.raises(TamperDetectedError):
        codec.decode_labels("key", labels, counter=1)


def test_encode_value_rejects_wrong_length():
    codec = make_codec(value_len=4)
    with pytest.raises(ConfigurationError):
        codec.encode_value("k", b"toolongvalue", counter=0)
    with pytest.raises(ConfigurationError):
        codec.decode_labels("k", [b"x" * 16], counter=0)


def test_label_group_value_range_checked():
    codec = make_codec(group_bits=2)
    with pytest.raises(ConfigurationError):
        codec.label("k", 0, 4, 0)


# --------------------------------------------------------------------- #
# Point-and-permute bits
# --------------------------------------------------------------------- #

def test_permute_offset_in_range_and_deterministic():
    codec = make_codec(group_bits=2)
    for ct in range(10):
        off = codec.permute_offset("k", 0, ct)
        assert 0 <= off < 4
        assert off == codec.permute_offset("k", 0, ct)


def test_permute_offsets_vary():
    codec = make_codec(group_bits=2)
    offsets = {codec.permute_offset("k", i, ct) for i in range(8) for ct in range(8)}
    assert len(offsets) > 1


def test_decrypt_index_is_xor_link():
    codec = make_codec(group_bits=2)
    for v in range(4):
        idx = codec.decrypt_index("k", 3, v, 5)
        assert idx == v ^ codec.permute_offset("k", 3, 5)


def test_decrypt_index_is_permutation_over_group_values():
    """Distinct group values must map to distinct table slots (it's a XOR)."""
    codec = make_codec(group_bits=2)
    slots = {codec.decrypt_index("k", 0, v, 9) for v in range(4)}
    assert slots == {0, 1, 2, 3}


@given(st.binary(min_size=2, max_size=16), st.integers(min_value=0, max_value=50))
@settings(max_examples=50)
def test_codec_roundtrip_property(value, counter):
    codec = make_codec(value_len=len(value), group_bits=2)
    labels = codec.encode_value("key", value, counter)
    assert codec.decode_labels("key", labels, counter) == value
