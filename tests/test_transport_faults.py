"""Fault injection: short reads, mid-frame disconnects, vanished peers.

The framing layer is exercised against a scripted socket (dribbling one
byte per ``recv``, truncating mid-frame), and the real server/client pair
against abrupt disconnects at every awkward moment: half a header, a full
request with the reply never read, and a server that dies with client
requests still in flight.
"""

import random
import socket
import threading

import pytest

from repro.errors import ProtocolError
from repro.transport import LblTcpServer, RemoteLblOrtoa
from repro.transport.framing import (
    MAX_FRAME_BYTES,
    recv_exact,
    recv_frame,
    send_frame,
    wrap_mux,
)
from repro.transport.pipeline import PipelinedLblClient
from repro.transport.server import ERROR_TAG, LOAD_ACK, pack_load
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(30)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


class ScriptedSocket:
    """A fake socket whose recv() dribbles out a pre-programmed byte stream."""

    def __init__(self, stream: bytes, chunk: int = 1):
        self._stream = stream
        self._chunk = chunk
        self._pos = 0

    def recv(self, count: int) -> bytes:
        take = min(count, self._chunk, len(self._stream) - self._pos)
        data = self._stream[self._pos:self._pos + take]
        self._pos += take
        return data


@pytest.fixture()
def server():
    tcp = LblTcpServer(point_and_permute=True)
    tcp.serve_in_background()
    yield tcp
    tcp.close()


def assert_server_alive(server):
    """A fresh client can still complete a full access round trip."""
    client = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(9))
    try:
        client.initialize({"alive": b"\x05" * 16})
        assert client.read("alive") == b"\x05" * 16
    finally:
        client.close()


# --------------------------------------------------------------------- #
# Framing against scripted byte streams
# --------------------------------------------------------------------- #

def test_recv_exact_reassembles_one_byte_reads():
    sock = ScriptedSocket(b"abcdefgh", chunk=1)
    assert recv_exact(sock, 8) == b"abcdefgh"


def test_recv_exact_raises_on_mid_read_close():
    sock = ScriptedSocket(b"abc", chunk=1)
    with pytest.raises(ProtocolError, match="closed mid-frame"):
        recv_exact(sock, 8)


def test_recv_frame_reassembles_dribbled_frame():
    payload = b"\x20" + bytes(40)
    stream = len(payload).to_bytes(4, "big") + payload
    assert recv_frame(ScriptedSocket(stream, chunk=3)) == payload


def test_recv_frame_rejects_oversized_announcement():
    stream = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(ProtocolError, match="refusing"):
        recv_frame(ScriptedSocket(stream, chunk=4))


def test_recv_frame_truncated_payload_is_mid_frame_close():
    stream = (100).to_bytes(4, "big") + b"only-this"
    with pytest.raises(ProtocolError, match="closed mid-frame"):
        recv_frame(ScriptedSocket(stream, chunk=5))


# --------------------------------------------------------------------- #
# Server resilience to misbehaving clients
# --------------------------------------------------------------------- #

def test_server_survives_half_header_then_close(server):
    sock = socket.create_connection(server.address, timeout=5)
    sock.sendall(b"\x00\x00")  # two bytes of a four-byte length prefix
    sock.close()
    assert_server_alive(server)


def test_server_survives_client_vanishing_before_reply(server):
    """Client sends a pipelined request, then disappears without reading."""
    sock = socket.create_connection(server.address, timeout=5)
    keychain_key = b"\xaa" * 16
    send_frame(sock, wrap_mux(7, pack_load(keychain_key, [])))
    sock.close()  # the worker's reply hits a dead socket
    assert_server_alive(server)


def test_server_survives_mid_frame_disconnect(server):
    sock = socket.create_connection(server.address, timeout=5)
    sock.sendall((500).to_bytes(4, "big") + b"partial payload only")
    sock.close()
    assert_server_alive(server)


def test_malformed_mux_frame_gets_plain_error_reply(server):
    """A mux tag with a truncated id has no id to mirror — plain error."""
    sock = socket.create_connection(server.address, timeout=5)
    try:
        send_frame(sock, b"\x50\x00")  # MUX_TAG but no full request id
        reply = recv_frame(sock)
        assert reply[0] == ERROR_TAG
        assert b"multiplexed" in reply[1:]
    finally:
        sock.close()


def test_unknown_tag_gets_error_frame_not_disconnect(server):
    sock = socket.create_connection(server.address, timeout=5)
    try:
        send_frame(sock, b"\x33garbage")
        reply = recv_frame(sock)
        assert reply[0] == ERROR_TAG
        # And the connection still works afterwards.
        send_frame(sock, pack_load(b"\xbb" * 16, []))
        assert recv_frame(sock) == LOAD_ACK
    finally:
        sock.close()


# --------------------------------------------------------------------- #
# Pipelined client against dying servers
# --------------------------------------------------------------------- #

@pytest.fixture()
def accepting_listener():
    """A bare listener that accepts one connection and hands it over."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    accepted: list[socket.socket] = []
    done = threading.Event()

    def accept_one():
        conn, _addr = listener.accept()
        accepted.append(conn)
        done.set()

    thread = threading.Thread(target=accept_one, daemon=True)
    thread.start()
    yield listener.getsockname(), accepted, done
    for conn in accepted:
        conn.close()
    listener.close()


def test_pending_futures_fail_on_disconnect(accepting_listener):
    address, accepted, done = accepting_listener
    client = PipelinedLblClient(address)
    try:
        future_a = client.submit(b"\x01")
        future_b = client.submit(b"\x02")
        assert client.in_flight == 2
        assert done.wait(5)
        accepted[0].close()  # server dies with both requests in flight
        with pytest.raises(ProtocolError, match="connection lost"):
            future_a.result(10)
        with pytest.raises(ProtocolError, match="connection lost"):
            future_b.result(10)
        assert client.in_flight == 0
        # The pool's only connection is dead; further submits must refuse
        # rather than silently queue onto a corpse.
        with pytest.raises(ProtocolError, match="closed"):
            client.submit(b"\x03")
    finally:
        client.close()


def test_close_fails_stragglers(accepting_listener):
    address, _accepted, done = accepting_listener
    client = PipelinedLblClient(address)
    future = client.submit(b"\x01")
    assert done.wait(5)
    client.close()
    with pytest.raises(ProtocolError):
        future.result(10)
    assert client.in_flight == 0


def test_pipelined_survives_server_error_burst(server):
    """A window full of failing requests fails each future, kills nothing."""
    with PipelinedLblClient(server.address) as client:
        futures = [client.submit(b"\x33nonsense") for _ in range(8)]
        for future in futures:
            with pytest.raises(ProtocolError, match="server error"):
                future.result(10)
        # The connection survived eight error frames.
        assert client.submit(pack_load(b"\xcc" * 16, [])).result(10) == LOAD_ACK


def test_remote_client_reports_connection_refused():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    address = listener.getsockname()
    listener.close()  # nobody listening here any more
    with pytest.raises(OSError):
        RemoteLblOrtoa(CONFIG, address)


def test_server_survives_abandoned_batch(server):
    """A client that sends a batch and vanishes must not wedge the server."""
    client = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(4))
    client.initialize({"a": bytes(16), "b": bytes(16)})
    # Build a real batch frame via a second client's proxy, then abandon it.
    sock = socket.create_connection(server.address, timeout=5)
    sock.sendall((1 << 20).to_bytes(4, "big"))  # promise 1 MiB, send nothing
    sock.close()
    assert client.read("a") == bytes(16)
    client.close()
