"""Flight recorder: bounded ring, exactly-once triggers, shed post-mortems.

The acceptance criteria exercised here:

* an overload burst against :class:`AsyncLblServer` produces a
  flight-recorder dump that names the shed cause and the window occupancy
  at shed time;
* GET and PUT emit shape-identical recorder events (the shed path records
  window state only, never anything derived from the payload);
* the obliviousness auditor passes with the recorder enabled;
* the ring's memory stays bounded under sustained event storms, triggers
  dump exactly once, concurrent writers never tear an event, and the
  disabled path appends nothing.
"""

import json
import random
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.lbl.proxy import LblProxy
from repro.crypto.keys import KeyChain
from repro.obs.clock import FakeClock, use_clock
from repro.obs.recorder import (
    OVERLOAD_BURST_THRESHOLD,
    FlightRecorder,
    RECORDER,
    merge_recorder_dumps,
)
from repro.transport import framing
from repro.transport.async_server import AsyncLblServer
from repro.transport.server import OBS_PULL_TAG
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(120)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)
PING = bytes([OBS_PULL_TAG])


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def make_proxy(seed: int = 1) -> LblProxy:
    return LblProxy(
        CONFIG, KeyChain(label_bits=CONFIG.label_bits), rng=random.Random(seed)
    )


def occupy_window(address, delay_margin: int = 1) -> socket.socket:
    """Open a raw connection and park requests in the server's window."""
    sock = socket.create_connection(address, timeout=30)
    for request_id in range(delay_margin):
        framing.send_frame(sock, framing.wrap_mux(1000 + request_id, PING))
    return sock


# --------------------------------------------------------------------- #
# Ring mechanics
# --------------------------------------------------------------------- #


@given(
    capacity=st.integers(min_value=1, max_value=64),
    total=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=50, deadline=None)
def test_ring_memory_bounded_under_sustained_events(capacity, total):
    """However many events arrive, the ring never holds more than capacity
    and accounts for every overwritten event in ``dropped``."""
    recorder = FlightRecorder(capacity=capacity)
    for i in range(total):
        recorder.record("storm", i=i)
    assert len(recorder) == min(total, capacity)
    assert recorder.dropped == max(0, total - capacity)
    events = recorder.events()
    # Oldest-first, contiguous, ending at the newest event.
    assert [e.fields["i"] for e in events] == list(
        range(max(0, total - capacity), total)
    )


def test_events_filter_by_kind():
    recorder = FlightRecorder(capacity=16)
    recorder.record("a", n=1)
    recorder.record("b", n=2)
    recorder.record("a", n=3)
    assert [e.fields["n"] for e in recorder.events("a")] == [1, 3]
    assert [e.kind for e in recorder.events()] == ["a", "b", "a"]


def test_concurrent_writers_never_tear_an_event():
    """Events from racing threads stay internally consistent: both fields
    of every event agree, and sequence numbers are unique."""
    recorder = FlightRecorder(capacity=4096)
    threads = 8
    per_thread = 200

    def hammer(thread_id: int) -> None:
        for i in range(per_thread):
            value = thread_id * per_thread + i
            recorder.record("race", a=value, b=value)

    workers = [threading.Thread(target=hammer, args=(t,)) for t in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    events = recorder.events()
    assert len(events) == threads * per_thread
    assert all(e.fields["a"] == e.fields["b"] for e in events)
    assert len({e.seq for e in events}) == len(events)


def test_trigger_dumps_exactly_once_even_under_races():
    recorder = FlightRecorder(capacity=16)
    recorder.record("before", n=1)
    results = []

    def fire():
        results.append(recorder.trigger("fault", detail="x"))

    workers = [threading.Thread(target=fire) for _ in range(8)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    dumps = [r for r in results if r is not None]
    assert len(dumps) == 1, "concurrent triggers for one reason dump once"
    dump = dumps[0]
    assert dump["trigger"]["reason"] == "fault"
    assert dump["trigger"]["detail"] == "x"
    assert [e["kind"] for e in dump["events"]] == ["before"]
    # The reason stays burned even after more events arrive.
    recorder.record("after", n=2)
    assert recorder.trigger("fault") is None
    # A different reason is independent.
    assert recorder.trigger("other") is not None
    assert set(recorder.triggered()) == {"fault", "other"}


def test_trigger_writes_dump_file_when_dir_configured(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RECORDER_DIR", str(tmp_path))
    recorder = FlightRecorder(capacity=8)
    recorder.record("evidence", n=7)
    recorder.trigger("unit-test", cause="deliberate")
    dumps = list(tmp_path.glob("recorder-unit-test-pid*.json"))
    assert len(dumps) == 1
    payload = json.loads(dumps[0].read_text())
    assert payload["trigger"]["reason"] == "unit-test"
    assert payload["events"][0]["fields"] == {"n": 7}


def test_overload_burst_escalates_to_one_trigger():
    """THRESHOLD sheds inside one window trigger once; a later window,
    after the trigger, does not re-fire (exactly-once per reason)."""
    recorder = FlightRecorder(capacity=256)
    with use_clock(FakeClock(start=100.0)):
        for _ in range(OVERLOAD_BURST_THRESHOLD - 1):
            recorder.record_shed("global-window", 4, 1, 4, 8)
        assert "overload-burst" not in recorder.triggered()
        recorder.record_shed("global-window", 4, 1, 4, 8)
        assert "overload-burst" in recorder.triggered()
        for _ in range(OVERLOAD_BURST_THRESHOLD * 2):
            recorder.record_shed("global-window", 4, 1, 4, 8)
    assert len(recorder.triggered()) == 1


def test_shed_counts_reset_across_burst_windows():
    """Sheds spread thinly over many windows never escalate."""
    recorder = FlightRecorder(capacity=256)
    clock = FakeClock(start=0.0)
    with use_clock(clock):
        for _ in range(OVERLOAD_BURST_THRESHOLD * 3):
            recorder.record_shed("per-conn-window", 1, 1, 4, 1)
            clock.advance(2.0)  # every shed lands in its own window
    assert recorder.triggered() == {}


def test_merge_recorder_dumps_tags_and_orders():
    local = [{"seq": 0, "time": 5.0, "kind": "local.late", "fields": {}}]
    remote = [
        {"events": [{"seq": 0, "time": 1.0, "kind": "r0.early", "fields": {}}]},
        {"events": [{"seq": 0, "time": 3.0, "kind": "r1.mid", "fields": {}}]},
    ]
    merged = merge_recorder_dumps(local, remote)
    assert [e["kind"] for e in merged] == ["r0.early", "r1.mid", "local.late"]
    assert [e["process"] for e in merged] == ["shard-0", "shard-1", "local"]


def test_reset_clears_events_triggers_and_burst_state():
    recorder = FlightRecorder(capacity=8)
    recorder.record("x")
    recorder.trigger("gone")
    recorder.reset()
    assert len(recorder) == 0
    assert recorder.dropped == 0
    assert recorder.triggered() == {}


# --------------------------------------------------------------------- #
# Disabled path: zero events
# --------------------------------------------------------------------- #


def test_disabled_path_appends_zero_events():
    """With observability off, a full workload (accesses, cache traffic,
    counter surgery) must not append a single recorder event."""
    from repro.core.lbl import LblOrtoa

    assert len(RECORDER) == 0
    store = LblOrtoa(CONFIG, rng=random.Random(0))
    store.initialize({f"k-{i}": b"v" for i in range(4)})
    for i in range(4):
        store.access(Request.read(f"k-{i}"))
        store.access(Request.write(f"k-{i}", CONFIG.pad(b"w")))
    store.proxy.force_counter("k-0", 17)
    assert len(RECORDER) == 0


def test_shed_path_records_nothing_when_obs_disabled():
    proxy = make_proxy()
    proxy.initial_records({"k": bytes(16)})
    request, _ = proxy.prepare(Request.read("k"))
    with AsyncLblServer(max_in_flight=1, response_delay_s=1.0) as server:
        blocker = occupy_window(server.address)
        try:
            sock = socket.create_connection(server.address, timeout=30)
            try:
                framing.send_frame(
                    sock, framing.wrap_mux(9, request.to_bytes())
                )
                framing.recv_frame(sock)  # the OVERLOAD reply
            finally:
                sock.close()
        finally:
            blocker.close()
    assert len(RECORDER) == 0


# --------------------------------------------------------------------- #
# Acceptance: overload burst -> dump naming cause and occupancy
# --------------------------------------------------------------------- #


def _shed_once(address, payload: bytes, request_id: int) -> bytes:
    sock = socket.create_connection(address, timeout=30)
    try:
        framing.send_frame(sock, framing.wrap_mux(request_id, payload))
        return framing.recv_frame(sock)
    finally:
        sock.close()


def test_overload_burst_produces_dump_with_cause_and_occupancy(
    tmp_path, monkeypatch
):
    """The tentpole acceptance criterion: an overload burst against the
    async server leaves a post-mortem dump whose shed events carry the
    cause and the window occupancy at shed time."""
    monkeypatch.setenv("REPRO_RECORDER_DIR", str(tmp_path))
    proxy = make_proxy()
    proxy.initial_records({"k": bytes(16)})
    request, _ = proxy.prepare(Request.read("k"))
    payload = request.to_bytes()

    obs.enable()
    with AsyncLblServer(max_in_flight=1, response_delay_s=2.0) as server:
        blocker = occupy_window(server.address)
        try:
            for i in range(OVERLOAD_BURST_THRESHOLD + 4):
                _shed_once(server.address, payload, 100 + i)
        finally:
            blocker.close()

    triggered = RECORDER.triggered()
    assert "overload-burst" in triggered, triggered.keys()
    dump = triggered["overload-burst"]
    assert dump["trigger"]["sheds_in_window"] == OVERLOAD_BURST_THRESHOLD

    sheds = [e for e in dump["events"] if e["kind"] == "transport.shed"]
    assert len(sheds) >= OVERLOAD_BURST_THRESHOLD
    for event in sheds:
        fields = event["fields"]
        assert fields["cause"] == "global-window"
        assert fields["in_flight"] == fields["max_in_flight"] == 1
        assert fields["max_in_flight_per_conn"] == server.max_in_flight_per_conn

    # The same dump landed on disk for CI to collect as an artifact.
    files = list(tmp_path.glob("recorder-overload-burst-pid*.json"))
    assert len(files) == 1
    on_disk = json.loads(files[0].read_text())
    assert on_disk["trigger"]["reason"] == "overload-burst"


def test_window_occupancy_transitions_are_recorded():
    """Crossing into and out of a full window leaves boundary events."""
    obs.enable()
    with AsyncLblServer(max_in_flight=1, response_delay_s=0.3) as server:
        blocker = occupy_window(server.address)
        try:
            deadline = time.time() + 5.0
            while not RECORDER.events("transport.window.full"):
                assert time.time() < deadline, "window-full event never recorded"
                time.sleep(0.01)
        finally:
            blocker.close()
        deadline = time.time() + 5.0
        while not RECORDER.events("transport.window.available"):
            assert time.time() < deadline, "window-available event never recorded"
            time.sleep(0.01)
    full = RECORDER.events("transport.window.full")[0]
    assert full.fields == {"in_flight": 1, "max_in_flight": 1}


# --------------------------------------------------------------------- #
# Acceptance: GET/PUT recorder-event shape identity + audit
# --------------------------------------------------------------------- #


def test_get_and_put_emit_shape_identical_recorder_events():
    """A shed GET run and a shed PUT run produce the same event kinds with
    the same field names *and values* — nothing derived from the payload
    reaches the recorder."""
    proxy = make_proxy()
    proxy.initial_records({"k": bytes(16)})
    get_request, _ = proxy.prepare(Request.read("k"))
    put_request, _ = proxy.prepare(Request.write("k", b"\x07" * 16))

    shapes = []
    for payload in (get_request.to_bytes(), put_request.to_bytes()):
        obs.reset()
        obs.enable()
        with AsyncLblServer(max_in_flight=1, response_delay_s=1.0) as server:
            blocker = occupy_window(server.address)
            try:
                _shed_once(server.address, payload, 42)
            finally:
                blocker.close()
        obs.disable()
        shapes.append(
            [
                (e.kind, tuple(sorted(e.fields.items())))
                for e in RECORDER.events("transport.shed")
            ]
        )

    shed_get, shed_put = shapes
    assert shed_get, "the shed path must record at least one event"
    assert shed_get == shed_put


def test_auditor_passes_with_recorder_enabled():
    """Obliviousness audit over a coalescing sharded deployment: the
    recorder observes real traffic (flush events) and the GET/PUT ledger
    identity still holds."""
    from repro.core.sharded import ShardedLblDeployment
    from repro.obs.audit import run_sharded_audit
    from repro.transport.cluster import ShardCluster

    with ShardCluster(2, point_and_permute=True, in_process=True) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG,
            cluster.addresses,
            rng=random.Random(0),
            pipeline_depth=4,
            coalesce_window=0.0002,
        )
        try:
            report = run_sharded_audit(
                deployment, num_keys=8, seed=0, pipeline_depth=4
            )
        finally:
            deployment.close()
    assert report.passed, report.summary()
    flushes = RECORDER.events("coalesce.flush")
    assert flushes, "coalescing traffic must appear in the recorder"
    # Flush events carry window geometry only — nothing per-operation.
    assert set(flushes[0].fields) == {"reason", "window", "fused", "max_batch"}
