"""Tests for the NTT fast-multiplication path."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.fhe import FheParams, FheScheme
from repro.crypto.ntt import NegacyclicNtt, find_ntt_prime, negacyclic_convolve_ntt
from repro.crypto.poly import Poly, RingParams, negacyclic_convolve
from repro.errors import ConfigurationError


def test_find_ntt_prime_properties():
    for n in (8, 64, 256):
        q = find_ntt_prime(n, 60)
        assert (q - 1) % (2 * n) == 0
        assert q.bit_length() in (60, 61)


def test_find_ntt_prime_validation():
    with pytest.raises(ConfigurationError):
        find_ntt_prime(3, 60)  # not a power of two
    with pytest.raises(ConfigurationError):
        find_ntt_prime(256, 4)  # too few bits


def test_forward_inverse_roundtrip():
    n = 16
    q = find_ntt_prime(n, 40)
    ntt = NegacyclicNtt(n, q)
    coeffs = list(range(n))
    assert ntt.inverse(ntt.forward(coeffs)) == coeffs


def test_ntt_matches_schoolbook():
    n = 32
    q = find_ntt_prime(n, 50)
    a = [(i * 7 + 3) % q for i in range(n)]
    b = [(i * i + 1) % q for i in range(n)]
    expected = [c % q for c in negacyclic_convolve(a, b)]
    assert negacyclic_convolve_ntt(a, b, q) == expected


@given(
    st.lists(st.integers(min_value=0, max_value=2**40), min_size=16, max_size=16),
    st.lists(st.integers(min_value=0, max_value=2**40), min_size=16, max_size=16),
)
@settings(max_examples=40, deadline=None)
def test_ntt_matches_schoolbook_property(a, b):
    q = find_ntt_prime(16, 45)
    expected = [c % q for c in negacyclic_convolve(a, b)]
    assert negacyclic_convolve_ntt(a, b, q) == expected


def test_non_friendly_modulus_rejected():
    with pytest.raises(ConfigurationError):
        NegacyclicNtt(16, 1 << 40)  # power of two, not prime
    with pytest.raises(ConfigurationError):
        negacyclic_convolve_ntt([0] * 16, [0] * 16, (1 << 40) + 2)


def test_for_modulus_caches_and_returns_none():
    q = find_ntt_prime(16, 40)
    assert NegacyclicNtt.for_modulus(16, q) is NegacyclicNtt.for_modulus(16, q)
    assert NegacyclicNtt.for_modulus(16, 1 << 40) is None


def test_poly_mul_uses_ntt_and_matches():
    n = 32
    q = find_ntt_prime(n, 50)
    prime_ring = RingParams(n, q)
    pow2_ring = RingParams(n, 1 << 50)
    a_coeffs = [(i * 13 + 5) % q for i in range(n)]
    b_coeffs = [(i * 3 + 1) % q for i in range(n)]
    fast = Poly(prime_ring, a_coeffs) * Poly(prime_ring, b_coeffs)
    slow_ints = negacyclic_convolve(a_coeffs, b_coeffs)
    assert list(fast.coeffs) == [c % q for c in slow_ints]
    # And the power-of-two ring still takes the schoolbook path correctly.
    slow = Poly(pow2_ring, a_coeffs) * Poly(pow2_ring, b_coeffs)
    assert list(slow.coeffs) == [c % (1 << 50) for c in slow_ints]


# --------------------------------------------------------------------- #
# FHE over NTT-friendly parameters
# --------------------------------------------------------------------- #

def test_fhe_with_ntt_params_roundtrip():
    params = FheParams.ntt_friendly(n=64, q_bits=100)
    assert params.q_prime is not None and (params.q_prime - 1) % 128 == 0
    scheme = FheScheme(params)
    value = bytes(range(60))
    assert scheme.decrypt_bytes(scheme.encrypt_bytes(value), 60) == value


def test_fhe_with_ntt_params_homomorphic_ops():
    scheme = FheScheme(FheParams.ntt_friendly(n=32, q_bits=100))
    value = bytes([9] * 16)
    ct = scheme.encrypt_bytes(value)
    kept = scheme.multiply(ct, scheme.encrypt_scalar(1))
    assert scheme.decrypt_bytes(kept, 16) == value
    rlk = scheme.make_relin_key()
    reduced = FheScheme.relinearize(kept, rlk)
    assert scheme.decrypt_bytes(reduced, 16) == value


def test_fhe_ntt_serialization_roundtrip():
    from repro.crypto.fhe import FheCiphertext

    params = FheParams.ntt_friendly(n=32, q_bits=80)
    scheme = FheScheme(params)
    ct = scheme.encrypt_bytes(bytes(16))
    assert FheCiphertext.from_bytes(params, ct.to_bytes()).components == ct.components


def test_ntt_encryption_is_faster_at_scale():
    """At n=256 the O(n log n) path must beat schoolbook encryption."""
    def encrypt_time(params):
        scheme = FheScheme(params)
        start = time.perf_counter()
        for _ in range(3):
            scheme.encrypt_bytes(bytes(200))
        return time.perf_counter() - start

    slow = encrypt_time(FheParams(n=256, q_bits=100))
    fast = encrypt_time(FheParams.ntt_friendly(n=256, q_bits=100))
    assert fast < slow
