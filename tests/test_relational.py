"""Tests for the relational facade (§8: primary-key relational data)."""

import random

import pytest

from repro.core import LblOrtoa, TwoRoundBaseline
from repro.errors import ConfigurationError, KeyNotFoundError
from repro.relational import BytesColumn, IntColumn, ObliviousTable, Schema, StrColumn
from repro.types import StoreConfig

SCHEMA = Schema(
    [
        StrColumn("user_id", 12),
        StrColumn("name", 16),
        IntColumn("balance_cents", 8),
    ],
    primary_key="user_id",
)


def make_table(capacity=64, protocol=None):
    protocol = protocol or LblOrtoa(
        StoreConfig(value_len=40, group_bits=2, point_and_permute=True),
        rng=random.Random(1),
    )
    return ObliviousTable("accounts", SCHEMA, protocol, capacity=capacity)


# --------------------------------------------------------------------- #
# Schema
# --------------------------------------------------------------------- #

def test_schema_roundtrip():
    row = {"user_id": "u-1", "name": "Ada", "balance_cents": 12_345}
    assert SCHEMA.decode_row(SCHEMA.encode_row(row)) == row


def test_schema_row_len():
    assert SCHEMA.row_len == 12 + 16 + 8


def test_int_column_bounds():
    col = IntColumn("x", width=2)
    assert col.decode(col.encode(65535)) == 65535
    with pytest.raises(ConfigurationError):
        col.encode(65536)
    with pytest.raises(ConfigurationError):
        col.encode(-1)
    with pytest.raises(ConfigurationError):
        col.encode("nope")


def test_str_column_padding_and_overflow():
    col = StrColumn("s", width=4)
    assert col.encode("ab") == b"ab\x00\x00"
    assert col.decode(b"ab\x00\x00") == "ab"
    with pytest.raises(ConfigurationError):
        col.encode("toolong")
    with pytest.raises(ConfigurationError):
        col.encode(5)


def test_bytes_column_exact_width():
    col = BytesColumn("b", width=3)
    assert col.decode(col.encode(b"xyz")) == b"xyz"
    with pytest.raises(ConfigurationError):
        col.encode(b"xy")


def test_unicode_strings_roundtrip():
    col = StrColumn("s", width=12)
    assert col.decode(col.encode("héllo-λ")) == "héllo-λ"


def test_schema_validation():
    with pytest.raises(ConfigurationError):
        Schema([], primary_key="x")
    with pytest.raises(ConfigurationError):
        Schema([IntColumn("a"), IntColumn("a")], primary_key="a")
    with pytest.raises(ConfigurationError):
        Schema([IntColumn("a")], primary_key="b")
    with pytest.raises(ConfigurationError):
        IntColumn("", 4)
    with pytest.raises(ConfigurationError):
        IntColumn("x", 0)


def test_encode_row_validates_columns():
    with pytest.raises(ConfigurationError):
        SCHEMA.encode_row({"user_id": "u"})  # missing columns
    with pytest.raises(ConfigurationError):
        SCHEMA.encode_row(
            {"user_id": "u", "name": "n", "balance_cents": 1, "extra": 2}
        )
    with pytest.raises(ConfigurationError):
        SCHEMA.decode_row(b"short")


# --------------------------------------------------------------------- #
# Table CRUD
# --------------------------------------------------------------------- #

def test_insert_get():
    table = make_table()
    table.insert({"user_id": "u-1", "name": "Ada", "balance_cents": 100})
    assert table.get("u-1") == {"user_id": "u-1", "name": "Ada", "balance_cents": 100}
    assert len(table) == 1
    assert "u-1" in table


def test_update_changes_selected_columns():
    table = make_table()
    table.insert({"user_id": "u-1", "name": "Ada", "balance_cents": 100})
    updated = table.update("u-1", balance_cents=250)
    assert updated["balance_cents"] == 250
    assert table.get("u-1")["name"] == "Ada"


def test_update_rejects_pk_change_and_bad_column():
    table = make_table()
    table.insert({"user_id": "u-1", "name": "Ada", "balance_cents": 100})
    with pytest.raises(ConfigurationError):
        table.update("u-1", user_id="u-2")
    with pytest.raises(ConfigurationError):
        table.update("u-1", nonexistent=1)


def test_delete_then_missing():
    table = make_table()
    table.insert({"user_id": "u-1", "name": "Ada", "balance_cents": 100})
    table.delete("u-1")
    assert "u-1" not in table
    with pytest.raises(KeyNotFoundError):
        table.get("u-1")
    with pytest.raises(KeyNotFoundError):
        table.delete("u-1")


def test_reinsert_after_delete():
    table = make_table()
    table.insert({"user_id": "u-1", "name": "Ada", "balance_cents": 100})
    table.delete("u-1")
    table.insert({"user_id": "u-1", "name": "Ada2", "balance_cents": 7})
    assert table.get("u-1")["name"] == "Ada2"


def test_duplicate_insert_rejected():
    table = make_table()
    table.insert({"user_id": "u-1", "name": "Ada", "balance_cents": 100})
    with pytest.raises(ConfigurationError):
        table.insert({"user_id": "u-1", "name": "Eve", "balance_cents": 0})


def test_scan_returns_live_rows_only():
    table = make_table(capacity=16)
    for i in range(5):
        table.insert({"user_id": f"u-{i}", "name": f"N{i}", "balance_cents": i})
    table.delete("u-2")
    rows = sorted(table.scan(), key=lambda r: r["user_id"])
    assert [r["user_id"] for r in rows] == ["u-0", "u-1", "u-3", "u-4"]


def test_table_over_baseline_protocol():
    protocol = TwoRoundBaseline(StoreConfig(value_len=40))
    table = make_table(protocol=protocol)
    table.insert({"user_id": "u-9", "name": "Bob", "balance_cents": 5})
    assert table.get("u-9")["name"] == "Bob"


def test_value_len_capacity_check():
    protocol = LblOrtoa(StoreConfig(value_len=8), rng=random.Random(1))
    with pytest.raises(ConfigurationError):
        ObliviousTable("t", SCHEMA, protocol, capacity=4)


def test_server_never_sees_primary_keys():
    table = make_table(capacity=8)
    table.insert({"user_id": "secret-pk", "name": "Ada", "balance_cents": 1})
    protocol = table.protocol
    for encoded_key in protocol.server.store:
        assert b"secret-pk" not in encoded_key


def test_capacity_validation():
    with pytest.raises(ConfigurationError):
        make_table(capacity=0)


def test_get_many_batched_over_lbl():
    table = make_table()
    for i in range(4):
        table.insert({"user_id": f"u-{i}", "name": f"N{i}", "balance_cents": i * 10})
    rows = table.get_many(["u-3", "u-0", "u-2"])
    assert [r["user_id"] for r in rows] == ["u-3", "u-0", "u-2"]
    assert [r["balance_cents"] for r in rows] == [30, 0, 20]


def test_get_many_over_baseline_falls_back():
    protocol = TwoRoundBaseline(StoreConfig(value_len=40))
    table = make_table(protocol=protocol)
    table.insert({"user_id": "u-1", "name": "A", "balance_cents": 1})
    table.insert({"user_id": "u-2", "name": "B", "balance_cents": 2})
    rows = table.get_many(["u-2", "u-1"])
    assert [r["name"] for r in rows] == ["B", "A"]


def test_get_many_validates_keys_up_front():
    table = make_table()
    table.insert({"user_id": "u-1", "name": "A", "balance_cents": 1})
    with pytest.raises(KeyNotFoundError):
        table.get_many(["u-1", "ghost"])
    assert table.get_many([]) == []
