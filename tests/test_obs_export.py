"""Exporter tests: Chrome trace schema, Prometheus round trip, concurrency.

The hypothesis test is the load-bearing one: whatever span forest the
tracer produces, the Chrome trace export must preserve the parent/child
nesting exactly (ids travel in ``args``), and every complete event must
stay inside its parent's time window — otherwise Perfetto renders a
correct-looking but wrong timeline.
"""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import ProtocolError
from repro.obs.clock import FakeClock, use_clock
from repro.obs.export import (
    SUMMARY_QUANTILES,
    chrome_trace,
    metric_name,
    parse_prometheus_text,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

REQUIRED_EVENT_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# --------------------------------------------------------------------- #
# Chrome trace events
# --------------------------------------------------------------------- #

def _traced_forest():
    obs.enable()
    tracer = Tracer()
    with use_clock(FakeClock(auto_advance=1.0)):
        with tracer.span("access", shard=3):
            with tracer.span("prepare"):
                pass
            with tracer.span("roundtrip"):
                pass
    return tracer.export()


def test_chrome_trace_schema():
    trace = chrome_trace(_traced_forest(), clock_unit="tick")
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    assert len(trace["traceEvents"]) == 3
    for event in trace["traceEvents"]:
        assert REQUIRED_EVENT_KEYS <= set(event)
        assert event["ph"] == "X"
        assert isinstance(event["ts"], float)
        assert isinstance(event["dur"], float)
        assert event["dur"] >= 0
    by_name = {e["name"]: e for e in trace["traceEvents"]}
    assert by_name["access"]["args"]["shard"] == 3
    assert by_name["prepare"]["args"]["parent_id"] == (
        by_name["access"]["args"]["span_id"]
    )


def test_chrome_trace_skips_open_spans():
    spans = _traced_forest()
    spans.append(dict(spans[0], span_id=99, end=None))
    assert len(chrome_trace(spans)["traceEvents"]) == 3


def test_chrome_trace_pid_comes_from_process_attribute():
    spans = _traced_forest()
    spans[0]["attributes"]["process"] = "shard-1"
    events = chrome_trace(spans)["traceEvents"]
    assert {e["pid"] for e in events} == {"client", "shard-1"}
    # The routing attribute is consumed, not duplicated into args.
    tagged = [e for e in events if e["pid"] == "shard-1"]
    assert "process" not in tagged[0]["args"]


def test_write_chrome_trace_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(str(path), _traced_forest(), clock_unit="tick")
    assert count == 3
    data = json.loads(path.read_text(encoding="utf-8"))
    assert len(data["traceEvents"]) == 3


@st.composite
def _span_forests(draw):
    """A random span forest via the real tracer: each step either opens a
    child span, closes the current one, or opens a sibling root."""
    ops = draw(st.lists(st.sampled_from(["push", "pop", "root"]), max_size=30))
    tracer = Tracer()
    stack = []
    with use_clock(FakeClock(auto_advance=1.0)):
        for index, op in enumerate(ops):
            if op == "pop" and stack:
                tracer.end(stack.pop())
            elif op == "root":
                while stack:
                    tracer.end(stack.pop())
                stack.append(tracer.start_span(f"s{index}", root=True))
            else:
                parent = stack[-1] if stack else None
                stack.append(tracer.start_span(f"s{index}", parent=parent))
        while stack:
            tracer.end(stack.pop())
    return tracer.export()


@settings(max_examples=50, deadline=None)
@given(_span_forests())
def test_chrome_trace_preserves_nesting(spans):
    obs.enable()
    events = chrome_trace(spans, clock_unit="tick")["traceEvents"]
    assert len(events) == len(spans)
    original = {s["span_id"]: s for s in spans}
    exported = {e["args"]["span_id"]: e for e in events}
    assert set(exported) == set(original)
    for span_id, event in exported.items():
        span = original[span_id]
        assert event["args"]["parent_id"] == span["parent_id"]
        assert event["tid"] == span["trace_id"]
        # Containment: a child event's window sits inside its parent's.
        parent_id = span["parent_id"]
        if parent_id is not None:
            parent = exported[parent_id]
            assert parent["ts"] <= event["ts"]
            assert event["ts"] + event["dur"] <= parent["ts"] + parent["dur"]


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #

def test_metric_name_mangling():
    assert metric_name("transport.pipeline.roundtrip.seconds") == (
        "repro_transport_pipeline_roundtrip_seconds"
    )


def test_prometheus_roundtrip_all_instrument_kinds():
    registry = MetricsRegistry()
    registry.counter("ops.total").inc(5)
    registry.gauge("queue.depth").set(3.5)
    registry.histogram("frame.bytes").observe(100)
    log_hist = registry.log_histogram("rt.seconds")
    for value in (0.001, 0.002, 0.004):
        log_hist.observe(value)
    samples = parse_prometheus_text(prometheus_text(registry))
    assert samples["repro_ops_total_total"] == [({}, 5.0)]
    assert samples["repro_queue_depth"] == [({}, 3.5)]
    assert samples["repro_frame_bytes_count"] == [({}, 1.0)]
    buckets = samples["repro_frame_bytes_bucket"]
    assert buckets[-1][0] == {"le": "+Inf"}
    assert buckets[-1][1] == 1.0
    quantiles = dict(
        (labels["quantile"], value) for labels, value in samples["repro_rt_seconds"]
    )
    assert set(quantiles) == {format(q, "g") for q in SUMMARY_QUANTILES}
    # p99 must sit at or above the largest observation's bucket floor.
    assert quantiles["0.99"] >= 0.004 * 0.9
    assert samples["repro_rt_seconds_count"] == [({}, 3.0)]


def test_parse_rejects_malformed_lines():
    with pytest.raises(ProtocolError):
        parse_prometheus_text("this is { not a sample\n")


def test_cumulative_buckets_are_monotonic():
    registry = MetricsRegistry()
    hist = registry.histogram("sizes.bytes")
    for value in (10, 100, 1000, 100000):
        hist.observe(value)
    samples = parse_prometheus_text(prometheus_text(registry))
    counts = [value for _labels, value in samples["repro_sizes_bytes_bucket"]]
    assert counts == sorted(counts)
    assert counts[-1] == 4.0


# --------------------------------------------------------------------- #
# Snapshot-under-write: exports while other threads mutate
# --------------------------------------------------------------------- #

def test_concurrent_export_while_writers_mutate():
    obs.enable()
    registry = MetricsRegistry()
    tracer = Tracer()
    started = threading.Barrier(5)
    errors = []
    WRITES = 500

    def writer(index):
        try:
            started.wait(timeout=10)
            for _ in range(WRITES):
                registry.counter(f"w{index}.ops").inc()
                registry.log_histogram(f"w{index}.seconds").observe(0.001 * index + 1e-6)
                with tracer.span(f"w{index}.span"):
                    pass
        except Exception as exc:  # noqa: BLE001 - surfaced to the assert
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    started.wait(timeout=10)
    try:
        while any(thread.is_alive() for thread in threads):
            samples = parse_prometheus_text(prometheus_text(registry))
            assert isinstance(samples, dict)
            trace = chrome_trace(tracer.export())
            json.dumps(trace)  # must always be serializable mid-write
    finally:
        for thread in threads:
            thread.join(timeout=30)
    assert errors == []
    # After the writers stop, exports are complete and consistent.
    final = parse_prometheus_text(prometheus_text(registry))
    for index in range(4):
        (_labels, total), = final[f"repro_w{index}_ops_total"]
        (_labels2, count), = final[f"repro_w{index}_seconds_count"]
        assert total == count == WRITES
