"""Batch partial-failure semantics: per-request errors, counter rollback.

A batch is not transactional — the server applies each sub-request
independently and slots an :class:`~repro.core.messages.LblErrorEntry` at
any failing position.  The client contract under test:

* successes in the same batch are applied and their transcripts returned
  (riding on :class:`~repro.errors.BatchPartialFailure`);
* each failed key's proxy counter is rolled back to the epoch before its
  *first* failure, so once the underlying cause is repaired a retry
  decrypts correctly (the stale-epoch regression this file pins down);
* failure of one key never disturbs other keys' epochs.
"""

import random

import pytest

from repro.core.messages import (
    LblAccessResponse,
    LblBatchResponse,
    LblErrorEntry,
)
from repro.core.sharded import ShardedLblDeployment
from repro.errors import BatchPartialFailure, ProtocolError
from repro.transport import LblTcpServer, RemoteLblOrtoa
from repro.transport.cluster import ShardCluster
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(30)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture()
def server():
    tcp = LblTcpServer(point_and_permute=True)
    tcp.serve_in_background()
    yield tcp
    tcp.close()


@pytest.fixture()
def client(server):
    remote = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(2))
    remote.initialize({key: key.encode().ljust(16, b"\x00") for key in ("k1", "k2", "k3")})
    yield remote
    remote.close()


def corrupt_key(server, client, key):
    """Garble the server's stored labels for one key; returns the snapshot."""
    encoded = client.keychain.encode_key(key)
    good = list(server.lbl.store.get(encoded))
    garbled = [type(sl)(bytes(len(sl.label)), sl.decrypt_index) for sl in good]
    server.lbl.store.put(encoded, garbled)
    return encoded, good


# --------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------- #

def test_error_entry_roundtrip():
    entry = LblErrorEntry("no table entry opened at group 3")
    assert LblErrorEntry.from_bytes(entry.to_bytes()) == entry


def test_batch_response_with_mixed_entries_roundtrips():
    response = LblBatchResponse(
        (
            LblAccessResponse((b"l1",)),
            LblErrorEntry("stale label"),
            LblAccessResponse((b"l2", b"l3")),
        )
    )
    decoded = LblBatchResponse.from_bytes(response.to_bytes())
    assert decoded == response
    assert decoded.error_indices == (1,)


# --------------------------------------------------------------------- #
# Remote client semantics
# --------------------------------------------------------------------- #

def test_partial_failure_reports_only_failed_indices(server, client):
    corrupt_key(server, client, "k2")
    with pytest.raises(BatchPartialFailure) as excinfo:
        client.access_batch(
            [
                Request.read("k1"),
                Request.read("k2"),
                Request.write("k3", CONFIG.pad(b"three")),
            ]
        )
    failure = excinfo.value
    assert set(failure.failures) == {1}
    assert set(failure.transcripts) == {0, 2}
    assert failure.transcripts[0].response.value.startswith(b"k1")
    # The successes were really applied, and their epochs stayed in sync.
    assert client.read("k1").startswith(b"k1")
    assert client.read("k3") == CONFIG.pad(b"three")


def test_failed_key_retries_after_repair(server, client):
    """The stale-epoch regression: rollback makes a post-repair retry work.

    Without the counter rollback the proxy would prepare the retry against
    epoch N+2 while the repaired server still holds epoch N, and the retry
    would fail to decrypt forever.
    """
    encoded, snapshot = corrupt_key(server, client, "k2")
    with pytest.raises(BatchPartialFailure):
        client.access_batch([Request.read("k1"), Request.read("k2")])
    server.lbl.store.put(encoded, snapshot)  # operator repairs the shard
    assert client.read("k2").startswith(b"k2")


def test_repeated_failed_key_rolls_back_to_first_epoch(server, client):
    """Several failures of one key in a batch roll back to the FIRST epoch."""
    encoded, snapshot = corrupt_key(server, client, "k2")
    with pytest.raises(BatchPartialFailure) as excinfo:
        client.access_batch(
            [
                Request.read("k2"),
                Request.write("k2", CONFIG.pad(b"w")),
                Request.read("k1"),
            ]
        )
    assert set(excinfo.value.failures) == {0, 1}
    server.lbl.store.put(encoded, snapshot)
    # Rolled back to before the first failed epoch — not the second — so
    # the retry's tables are built against the server's actual labels.
    assert client.read("k2").startswith(b"k2")


def test_partial_failure_message_names_indices(server, client):
    corrupt_key(server, client, "k3")
    with pytest.raises(BatchPartialFailure, match=r"1 of 2 batch requests"):
        client.access_batch([Request.read("k1"), Request.read("k3")])


def test_fully_successful_batch_unaffected(client):
    transcripts = client.access_batch(
        [Request.read("k1"), Request.write("k2", CONFIG.pad(b"two"))]
    )
    assert len(transcripts) == 2


# --------------------------------------------------------------------- #
# Sharded deployment semantics
# --------------------------------------------------------------------- #

def test_sharded_batch_partial_failure_and_retry():
    with ShardCluster(2, in_process=True) as cluster:
        dep = ShardedLblDeployment(CONFIG, cluster.addresses, rng=random.Random(5))
        try:
            dep.initialize({f"k{i}": bytes([i]) * 16 for i in range(6)})
            victim = "k4"
            shard = dep.shard_of(victim)
            encoded = dep.encoded_key(victim)
            store = cluster.servers[shard].lbl.store
            snapshot = list(store.get(encoded))
            store.put(
                encoded,
                [type(sl)(bytes(len(sl.label)), sl.decrypt_index) for sl in snapshot],
            )
            requests = [Request.read(f"k{i}") for i in range(6)]
            with pytest.raises(BatchPartialFailure) as excinfo:
                dep.access_batch(requests)
            assert set(excinfo.value.failures) == {4}
            for index, transcript in excinfo.value.transcripts.items():
                assert transcript.response.value == bytes([index]) * 16
            store.put(encoded, snapshot)  # repair
            assert dep.read(victim) == bytes([4]) * 16
            # Untouched keys kept their epochs through the whole episode.
            assert dep.read("k0") == bytes([0]) * 16
        finally:
            dep.close()


def test_batch_error_does_not_kill_connection(server, client):
    corrupt_key(server, client, "k1")
    with pytest.raises(BatchPartialFailure):
        client.access_batch([Request.read("k1"), Request.read("k2")])
    # The same socket still serves follow-up traffic.
    assert client.read("k2").startswith(b"k2")


def test_whole_batch_failing_still_partial_not_error_frame(server, client):
    """Even all-failed batches use per-entry errors, not one error frame."""
    corrupt_key(server, client, "k1")
    corrupt_key(server, client, "k2")
    with pytest.raises(BatchPartialFailure) as excinfo:
        client.access_batch([Request.read("k1"), Request.read("k2")])
    assert set(excinfo.value.failures) == {0, 1}
    assert excinfo.value.transcripts == {}
    with pytest.raises(ProtocolError):
        raise excinfo.value  # BatchPartialFailure IS a ProtocolError
