"""ProcessCryptoPool: worker-process label derivation must be transparent.

Workers rebuild the proxy's PRFs from exported raw keys, so every blob they
ship back must re-slice into exactly the label sets the proxy would have
derived in-process — same bytes, same epochs, same offsets.  The engine
integration must additionally keep protocol outputs identical to the
thread backend (finalize decodes, counters advance, the cache still wins).
"""

import random

import pytest

from repro.core.lbl import LblOrtoa
from repro.core.lbl.parallel import ParallelPrepareEngine
from repro.core.lbl.procpool import NO_SHM_ENV, ProcessCryptoPool, shm_available
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, CryptoPoolError
from repro.types import Request, StoreConfig


def _store(**overrides) -> LblOrtoa:
    params = dict(
        value_len=32, group_bits=2, point_and_permute=True, label_cache_entries=None
    )
    params.update(overrides)
    return LblOrtoa(StoreConfig(**params), rng=random.Random(3))


@pytest.fixture(scope="module")
def pool_and_store():
    store = _store()
    store.initialize({f"k{i}": bytes(32) for i in range(4)})
    with ProcessCryptoPool(
        store.keychain,
        value_len=32,
        group_bits=2,
        point_and_permute=True,
        workers=2,
    ) as pool:
        yield pool, store


def test_derivation_matches_in_process(pool_and_store):
    pool, store = pool_and_store
    codec = store.proxy.codec
    for key, counter in (("k0", 0), ("k1", 5), ("missing", 17)):
        old_labels, old_offsets, new_labels, new_offsets = pool.derive(key, counter)
        assert old_labels == codec.labels_for_groups(key, counter)
        assert new_labels == codec.labels_for_groups(key, counter + 1)
        assert old_offsets == codec.permute_offsets(key, counter)
        assert new_offsets == codec.permute_offsets(key, counter + 1)


def test_async_results_resolve_out_of_order(pool_and_store):
    pool, store = pool_and_store
    codec = store.proxy.codec
    pending = [(ct, pool.derive_async("k2", ct)) for ct in range(6)]
    for counter, handle in reversed(pending):
        old_labels, _, _, _ = handle.get(timeout=30)
        assert old_labels == codec.labels_for_groups("k2", counter)


def test_base_protocol_skips_offsets():
    store = _store(point_and_permute=False, group_bits=1)
    with ProcessCryptoPool(
        store.keychain,
        value_len=32,
        group_bits=1,
        point_and_permute=False,
        workers=1,
    ) as pool:
        old_labels, old_offsets, new_labels, new_offsets = pool.derive("x", 0)
        assert old_offsets is None and new_offsets is None
        assert old_labels == store.proxy.codec.labels_for_groups("x", 0)
        assert new_labels == store.proxy.codec.labels_for_groups("x", 1)


def test_rejects_bad_parameters():
    keychain = KeyChain(label_bits=128)
    with pytest.raises(ConfigurationError):
        ProcessCryptoPool(
            keychain, value_len=32, group_bits=2, point_and_permute=True, workers=0
        )
    with pytest.raises(ConfigurationError):
        ProcessCryptoPool(
            keychain, value_len=32, group_bits=9, point_and_permute=True, workers=1
        )


def test_closed_pool_rejects_work():
    keychain = KeyChain(label_bits=128)
    pool = ProcessCryptoPool(
        keychain, value_len=16, group_bits=1, point_and_permute=False, workers=1
    )
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(ConfigurationError):
        pool.derive("k", 0)


def test_engine_backends_produce_identical_protocol_results():
    """Thread- and process-backed engines decode the same values."""
    values = {}
    keychain = KeyChain(label_bits=128)
    for backend in ("thread", "procpool"):
        config = StoreConfig(
            value_len=32, group_bits=2, point_and_permute=True,
            label_cache_entries=None,
        )
        store = LblOrtoa(config, keychain=keychain, rng=random.Random(3))
        store.initialize({f"k{i}": bytes([i]) * 32 for i in range(4)})
        requests = [
            Request.write(f"k{i % 4}", bytes([50 + i]) * 32) if i % 3 == 0
            else Request.read(f"k{i % 4}")
            for i in range(12)
        ]
        decoded = []
        with ParallelPrepareEngine(store.proxy, workers=2, backend=backend) as eng:
            for lbl_request, _, epoch in eng.prepare_batch(requests):
                response, _ = store.server.process(lbl_request)
                # requests are per-key in submission order; finalize in order
                decoded.append((epoch, response))
        for request, (epoch, response) in zip(requests, decoded):
            value, _ = store.proxy.finalize(request.key, response, counter=epoch)
            values.setdefault(backend, []).append(value)
    assert values["thread"] == values["procpool"]


def test_engine_procpool_with_label_cache_prefers_cache():
    """A cached epoch short-circuits the worker round trip entirely."""
    config = StoreConfig(
        value_len=32, group_bits=2, point_and_permute=True, label_cache_entries=-1
    )
    store = LblOrtoa(config, rng=random.Random(3))
    store.initialize({"hot": bytes(32)})
    for _ in range(3):  # populate + prefetch the hot key's epochs
        store.access(Request.read("hot"))
    with ParallelPrepareEngine(store.proxy, workers=1, backend="procpool") as eng:
        hits_before = store.proxy.label_cache.hits
        (lbl_request, _, epoch), = eng.prepare_batch([Request.read("hot")])
        response, _ = store.server.process(lbl_request)
        value, _ = store.proxy.finalize("hot", response, counter=epoch)
        assert value == bytes(32)
        assert store.proxy.label_cache.hits == hits_before + 1


def test_engine_rejects_unknown_backend():
    store = _store()
    with pytest.raises(ConfigurationError):
        ParallelPrepareEngine(store.proxy, backend="gpu")


def test_shm_and_blob_paths_are_byte_identical(pool_and_store):
    """The shared-memory ring and the pickled-blob fallback carry the same
    payloads: every label set and offset byte agrees across transports."""
    pool, store = pool_and_store
    with ProcessCryptoPool(
        store.keychain,
        value_len=32,
        group_bits=2,
        point_and_permute=True,
        workers=2,
        use_shm=False,
    ) as blob_pool:
        assert not blob_pool.shm_enabled
        pairs = [("k0", 0), ("k1", 3), ("k0", 1), ("missing", 9)]
        assert pool.derive_batch(pairs) == blob_pool.derive_batch(pairs)
        assert pool.derive("k3", 2) == blob_pool.derive("k3", 2)


def test_no_shm_env_disables_rings(monkeypatch):
    """`REPRO_NO_SHM=1` forces the blob wire format — same bytes out."""
    monkeypatch.setenv(NO_SHM_ENV, "1")
    assert not shm_available()
    store = _store()
    store.initialize({"e0": bytes(32)})
    with ProcessCryptoPool(
        store.keychain,
        value_len=32,
        group_bits=2,
        point_and_permute=True,
        workers=1,
    ) as pool:
        assert not pool.shm_enabled
        old_labels, _, new_labels, _ = pool.derive("e0", 0)
        codec = store.proxy.codec
        assert old_labels == codec.labels_for_groups("e0", 0)
        assert new_labels == codec.labels_for_groups("e0", 1)


def test_close_drains_inflight_work(pool_and_store):
    """close() is a graceful drain: async results submitted before the
    close still resolve (the pool refuses *new* work, not pending work)."""
    _, store = pool_and_store
    pool = ProcessCryptoPool(
        store.keychain,
        value_len=32,
        group_bits=2,
        point_and_permute=True,
        workers=1,
    )
    handles = [pool.derive_async("k0", ct) for ct in range(4)]
    pool.close()
    codec = store.proxy.codec
    for counter, handle in enumerate(handles):
        old_labels, _, _, _ = handle.get(timeout=30)
        assert old_labels == codec.labels_for_groups("k0", counter)
    with pytest.raises(ConfigurationError):
        pool.derive_async("k0", 9)


def test_derive_batch_validates_input(pool_and_store):
    pool, _ = pool_and_store
    with pytest.raises(ConfigurationError):
        pool.derive_batch([])
    with pytest.raises(ConfigurationError):
        pool.derive_batch([("k0", -1)])
    with pytest.raises(ConfigurationError):
        pool.derive_batch([("k0", 0)], rows=[None, None])


def test_cryptopool_error_is_typed():
    """Transport failures surface as CryptoPoolError (a CryptoError), so
    callers can distinguish pool breakage from protocol errors."""
    from repro.errors import CryptoError, OrtoaError

    assert issubclass(CryptoPoolError, CryptoError)
    assert issubclass(CryptoPoolError, OrtoaError)


def test_prf_export_key_roundtrip():
    from repro.crypto.prf import Prf

    prf = Prf(b"\x42" * 32, out_bytes=16)
    clone = Prf(prf.export_key(), out_bytes=16)
    assert clone.evaluate("labels", 3, 1) == prf.evaluate("labels", 3, 1)
