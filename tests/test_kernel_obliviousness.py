"""Obliviousness regression for the batched kernel stack.

Batching, the label cache, next-epoch prefetch, and the parallel prepare
engine all live on the *proxy* side of the trust boundary — nothing the
server observes (request sizes, table shapes, decrypt counts, storage
writes) may depend on them.  These tests run the
:mod:`repro.obs` auditor over each configuration and require a clean
verdict, and pin the wire-level invariant directly: scalar and batched
prepare produce byte-identically-shaped requests.
"""

import random

import pytest

from repro import obs
from repro.core.lbl import LblOrtoa
from repro.core.lbl.parallel import ParallelPrepareEngine
from repro.core.lbl.server import SERVER_SPAN
from repro.crypto.keys import KeyChain
from repro.obs.audit import audit_observations, observations_from_spans, run_audit
from repro.obs.trace import TRACER
from repro.types import Operation, Request, StoreConfig


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _config(**overrides) -> StoreConfig:
    params = dict(value_len=16, group_bits=2, point_and_permute=True)
    params.update(overrides)
    return StoreConfig(**params)


def test_audit_passes_with_batched_kernels():
    protocol = LblOrtoa(_config(), rng=random.Random(0), batched=True)
    report = run_audit(protocol, num_keys=16, seed=0)
    assert report.passed, report.summary()
    assert report.failures == []


def test_audit_passes_with_label_cache_and_prefetch():
    """Warm-cache accesses must be indistinguishable server-side.

    :func:`run_audit` touches every key exactly once, which can never hit
    the cache — so this builds the same balanced workload by hand, runs a
    priming pass to populate + prefetch every key's epoch, and audits only
    the second (fully warm) pass.
    """
    rng = random.Random(0)
    protocol = LblOrtoa(
        _config(label_cache_entries=-1), rng=random.Random(0), batched=True
    )
    keys = [f"audit-{i}" for i in range(16)]
    requests = [
        Request.read(key) if index < 8 else Request.write(key, bytes(16))
        for index, key in enumerate(keys)
    ]
    rng.shuffle(requests)
    protocol.initialize({key: bytes(16) for key in keys})
    for request in requests:  # priming pass: every key cached + prefetched
        protocol.access(request)

    obs.enable()
    TRACER.reset()
    cache = protocol.proxy.label_cache
    hits_before = cache.hits
    for request in requests:
        protocol.access(request)
    spans = TRACER.spans(SERVER_SPAN)
    report = audit_observations(
        observations_from_spans(spans, [request.op for request in requests])
    )
    assert report.passed, report.summary()
    assert cache.hits - hits_before == len(requests)  # every access was warm


def test_audit_passes_on_base_protocol_batched():
    """Batched kernels under the §5.2 shuffled-table protocol."""
    protocol = LblOrtoa(
        StoreConfig(value_len=16, label_cache_entries=-1),
        rng=random.Random(1),
        batched=True,
    )
    report = run_audit(protocol, num_keys=24, seed=1)
    assert report.passed, report.summary()


def test_scalar_and_batched_requests_have_identical_shape():
    """The wire request leaks nothing about which kernel built it."""
    keychain = KeyChain(label_bits=128)
    config = _config(label_cache_entries=-1)
    shapes = []
    for batched in (False, True):
        store = LblOrtoa(
            config, keychain=keychain, rng=random.Random(3), batched=batched
        )
        store.initialize({"k": bytes(16)})
        store.access(Request.read("k"))  # warm the cache on the batched run
        request, _ = store.proxy.prepare(Request.write("k", bytes(16)))
        wire = request.to_bytes()
        shapes.append(
            (
                len(wire),
                len(request.tables),
                {len(table) for table in request.tables},
            )
        )
    assert shapes[0] == shapes[1]


def test_traced_frames_identical_shape_for_get_and_put():
    """The trace-context wire extension must not become a side channel.

    A traced GET and a traced PUT frame must have identical total size, the
    same tag byte, and a fixed-width context extension — otherwise enabling
    telemetry would leak exactly the bit the protocol exists to hide.
    """
    from repro.obs.propagate import TraceContext
    from repro.transport import framing

    keychain = KeyChain(label_bits=128)
    config = _config(label_cache_entries=-1)
    store = LblOrtoa(config, keychain=keychain, rng=random.Random(5), batched=True)
    store.initialize({"k": bytes(16)})
    store.access(Request.read("k"))
    context = TraceContext(trace_id=7, span_id=9).encode()
    frames = []
    for request in (Request.read("k"), Request.write("k", bytes(16))):
        lbl_request, _ = store.proxy.prepare(request)
        frames.append(framing.wrap_mux(1, lbl_request.to_bytes(), context))
    get_frame, put_frame = frames
    assert len(get_frame) == len(put_frame)
    assert get_frame[0] == put_frame[0] == framing.MUX_TRACED_TAG
    for frame in frames:
        request_id, inner, decoded = framing.unwrap_mux_traced(frame)
        assert request_id == 1
        assert decoded == context
        assert len(frame) - len(inner) == 1 + framing.REQUEST_ID_BYTES + (
            framing.TRACE_CONTEXT_BYTES
        )


def test_parallel_prepare_observations_match_serial():
    """Server-visible features are identical whether prepare ran in a pool."""
    features = []
    keychain = KeyChain(label_bits=128)
    for workers in (0, 4):
        obs.reset()
        config = _config(label_cache_entries=-1)
        store = LblOrtoa(
            config, keychain=keychain, rng=random.Random(4), batched=True
        )
        store.initialize({f"k{i}": bytes(16) for i in range(4)})
        requests = [Request.read(f"k{i % 4}") for i in range(8)]
        obs.enable()
        TRACER.reset()
        with ParallelPrepareEngine(store.proxy, workers=workers) as engine:
            built = engine.prepare_batch(requests)
        for request, (lbl_request, _, epoch) in zip(requests, built):
            response, _ = store.server.process(lbl_request)
            store.proxy.finalize(request.key, response, counter=epoch)
        spans = TRACER.spans(SERVER_SPAN)
        observed = observations_from_spans(
            spans, [Operation.READ] * len(requests)
        )
        features.append(
            sorted(
                tuple(sorted(o.features.items())) for o in observed
            )
        )
    assert features[0] == features[1]


def test_request_shape_identical_across_crypto_backends():
    """GET and PUT frames are byte-identically shaped under every backend.

    The crypto backend (scalar reference path, stdlib batched kernels, the
    numpy lane pipeline) is a proxy-side implementation detail; if any
    backend changed the wire request's size or table geometry — for either
    op type — the deployment choice itself would become server-visible.
    """
    keychain = KeyChain(label_bits=128)
    config = _config(label_cache_entries=-1)
    shapes = []
    for batched, backend in (
        (False, "auto"),
        (True, "stdlib"),
        (True, "vector"),
    ):
        store = LblOrtoa(
            config,
            keychain=keychain,
            rng=random.Random(3),
            batched=batched,
            crypto_backend=backend,
        )
        store.initialize({"k": bytes(16)})
        store.access(Request.read("k"))  # warm the cache where it exists
        for op_request in (Request.read("k"), Request.write("k", bytes(16))):
            request, _ = store.proxy.prepare(op_request)
            wire = request.to_bytes()
            shapes.append(
                (
                    len(wire),
                    len(request.tables),
                    frozenset(len(table) for table in request.tables),
                    frozenset(
                        len(entry) for table in request.tables for entry in table
                    ),
                )
            )
    assert len(set(shapes)) == 1, shapes


def test_audit_passes_with_vector_backend():
    """The lane pipeline must leave server observations untouched."""
    protocol = LblOrtoa(
        _config(label_cache_entries=-1),
        rng=random.Random(6),
        batched=True,
        crypto_backend="vector",
    )
    report = run_audit(protocol, num_keys=16, seed=6)
    assert report.passed, report.summary()
    assert report.failures == []


def test_procpool_observations_match_thread_backend():
    """Server-visible features are identical whichever pool derived labels.

    Runs the same workload through the thread backend and the
    process-pool backend (labels derived in worker processes) and audits
    both; the observation feature sets must match exactly and both audits
    must pass.
    """
    features = []
    keychain = KeyChain(label_bits=128)
    for backend in ("thread", "procpool"):
        obs.reset()
        config = _config(label_cache_entries=None)
        store = LblOrtoa(
            config, keychain=keychain, rng=random.Random(4), batched=True
        )
        store.initialize({f"k{i}": bytes(16) for i in range(4)})
        requests = [
            Request.read(f"k{i % 4}") if i % 2 else Request.write(
                f"k{i % 4}", bytes(16)
            )
            for i in range(8)
        ]
        operations = [request.op for request in requests]
        obs.enable()
        TRACER.reset()
        with ParallelPrepareEngine(
            store.proxy, workers=2, backend=backend
        ) as engine:
            built = engine.prepare_batch(requests)
        for request, (lbl_request, _, epoch) in zip(requests, built):
            response, _ = store.server.process(lbl_request)
            store.proxy.finalize(request.key, response, counter=epoch)
        spans = TRACER.spans(SERVER_SPAN)
        observed = observations_from_spans(spans, operations)
        report = audit_observations(observed)
        assert report.passed, report.summary()
        features.append(
            sorted(tuple(sorted(o.features.items())) for o in observed)
        )
    assert features[0] == features[1]
