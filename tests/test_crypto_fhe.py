"""Tests for the BFV-style FHE scheme and its noise dynamics (paper §3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.fhe import FheCiphertext, FheParams, FheScheme
from repro.crypto.poly import Poly, RingParams, negacyclic_convolve
from repro.errors import ConfigurationError, NoiseBudgetExhausted

SMALL = FheParams(n=32, q_bits=100)


@pytest.fixture()
def scheme():
    return FheScheme(SMALL)


# --------------------------------------------------------------------- #
# Ring arithmetic
# --------------------------------------------------------------------- #

def test_negacyclic_wraparound_sign_flip():
    # (x^(n-1)) * x = x^n = -1 in Z[x]/(x^n+1); with n=4: x^3 * x = -1.
    a = [0, 0, 0, 1]
    b = [0, 1, 0, 0]
    assert negacyclic_convolve(a, b) == [-1, 0, 0, 0]


def test_negacyclic_identity():
    a = [5, 6, 7, 8]
    assert negacyclic_convolve(a, [1, 0, 0, 0]) == a


def test_poly_add_sub_neg_roundtrip():
    ring = RingParams(8, 97)
    a = Poly(ring, [1, 2, 3])
    b = Poly(ring, [4, 5, 6])
    assert (a + b) - b == a
    assert -(-a) == a


def test_poly_centered_lift():
    ring = RingParams(4, 10)
    p = Poly(ring, [9, 5, 6, 1])
    assert p.centered() == [-1, 5, -4, 1]
    assert p.inf_norm() == 5


def test_poly_rejects_mismatched_rings():
    a = Poly(RingParams(4, 97), [1])
    b = Poly(RingParams(8, 97), [1])
    with pytest.raises(ConfigurationError):
        _ = a + b


def test_ring_degree_must_be_power_of_two():
    with pytest.raises(ConfigurationError):
        RingParams(3, 97)


def test_poly_is_immutable():
    p = Poly(RingParams(4, 97), [1])
    with pytest.raises(AttributeError):
        p.coeffs = (0,)  # type: ignore[misc]


# --------------------------------------------------------------------- #
# Scheme correctness
# --------------------------------------------------------------------- #

def test_encrypt_decrypt_roundtrip(scheme):
    value = bytes(range(32))
    assert scheme.decrypt_bytes(scheme.encrypt_bytes(value), 32) == value


def test_fresh_ciphertexts_differ(scheme):
    v = b"same" * 8
    assert scheme.encrypt_bytes(v).components != scheme.encrypt_bytes(v).components


def test_homomorphic_add(scheme):
    a, b = bytes([10] * 32), bytes([20] * 32)
    ct = scheme.add(scheme.encrypt_bytes(a), scheme.encrypt_bytes(b))
    assert scheme.decrypt_bytes(ct, 32) == bytes([30] * 32)


def test_homomorphic_multiply_by_selector(scheme):
    value = bytes(range(32))
    ct = scheme.encrypt_bytes(value)
    kept = scheme.multiply(ct, scheme.encrypt_scalar(1))
    dropped = scheme.multiply(ct, scheme.encrypt_scalar(0))
    assert scheme.decrypt_bytes(kept, 32) == value
    assert scheme.decrypt_bytes(dropped, 32) == bytes(32)


def test_ortoa_proc_selects_correct_operand(scheme):
    """Proc(old, new, [c_r, c_w]) = old*c_r + new*c_w (paper §3.1)."""
    old, new = b"old-value" + bytes(23), b"new-value" + bytes(23)
    ct_old, ct_new = scheme.encrypt_bytes(old), scheme.encrypt_bytes(new)
    for c_r, expected in ((1, old), (0, new)):
        c_w = 1 - c_r
        result = scheme.add(
            scheme.multiply(ct_old, scheme.encrypt_scalar(c_r)),
            scheme.multiply(ct_new, scheme.encrypt_scalar(c_w)),
        )
        assert scheme.decrypt_bytes(result, 32) == expected


def test_multiply_grows_ciphertext_size(scheme):
    ct = scheme.encrypt_bytes(bytes(32))
    assert ct.size == 2
    ct2 = scheme.multiply(ct, scheme.encrypt_scalar(1))
    assert ct2.size == 3
    assert ct2.mul_depth == 1
    ct3 = scheme.multiply(ct2, scheme.encrypt_scalar(1))
    assert ct3.size == 4
    assert ct3.mul_depth == 2


def test_noise_budget_decreases_with_depth(scheme):
    ct = scheme.encrypt_bytes(bytes([7] * 32))
    budgets = [scheme.noise_budget(ct)]
    for _ in range(3):
        ct = scheme.multiply(ct, scheme.encrypt_scalar(1))
        budgets.append(scheme.noise_budget(ct))
    assert all(b1 > b2 for b1, b2 in zip(budgets, budgets[1:]))


def test_noise_exhaustion_reproduces_paper_finding():
    """§3.3: repeated oblivious accesses exhaust the scheme after ~10 rounds."""
    scheme = FheScheme(FheParams(n=32, q_bits=100))
    value = bytes([42] * 16)
    stored = scheme.encrypt_bytes(value)
    accesses = 0
    while accesses < 40:
        stored = scheme.add(
            scheme.multiply(stored, scheme.encrypt_scalar(1)),
            scheme.multiply(scheme.encrypt_bytes(bytes(16)), scheme.encrypt_scalar(0)),
        )
        accesses += 1
        if scheme.noise_budget(stored) <= 0:
            break
    assert 2 <= accesses < 40, "noise must exhaust after a small number of accesses"
    with pytest.raises(NoiseBudgetExhausted):
        # One more access and checked decryption must refuse.
        stored = scheme.multiply(stored, scheme.encrypt_scalar(1))
        scheme.decrypt_checked(stored, 16)


def test_decrypt_checked_passes_when_budget_positive(scheme):
    ct = scheme.encrypt_bytes(bytes([1] * 32))
    assert scheme.decrypt_checked(ct, 32) == bytes([1] * 32)


def test_ciphertext_size_bytes(scheme):
    ct = scheme.encrypt_bytes(bytes(32))
    expected = 2 * SMALL.n * ((SMALL.q_bits + 7) // 8)
    assert ct.size_bytes == expected


def test_expansion_factor_is_large(scheme):
    """§3.2.2 observes a huge plaintext→ciphertext expansion (SEAL: ~225x)."""
    ct = scheme.encrypt_bytes(bytes(32))
    assert ct.size_bytes / 32 > 20


def test_capacity_checks(scheme):
    with pytest.raises(ConfigurationError):
        scheme.encode_bytes(bytes(SMALL.n + 1))


def test_params_validation():
    with pytest.raises(ConfigurationError):
        FheParams(n=32, q_bits=10, t=256)
    with pytest.raises(ConfigurationError):
        FheParams(error_bound=0)
    with pytest.raises(ConfigurationError):
        FheParams(t=1)


def test_add_multiply_reject_mismatched_params(scheme):
    other = FheScheme(FheParams(n=64, q_bits=100))
    with pytest.raises(ConfigurationError):
        FheScheme.add(scheme.encrypt_scalar(1), other.encrypt_scalar(1))
    with pytest.raises(ConfigurationError):
        FheScheme.multiply(scheme.encrypt_scalar(1), other.encrypt_scalar(1))


def test_ciphertext_requires_two_components(scheme):
    with pytest.raises(ConfigurationError):
        FheCiphertext((Poly.zero(SMALL.ring),), SMALL)


@given(st.binary(max_size=32))
@settings(max_examples=25, deadline=None)
def test_roundtrip_property(value):
    scheme = FheScheme(SMALL)
    assert scheme.decrypt_bytes(scheme.encrypt_bytes(value), len(value)) == value


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
@settings(max_examples=15, deadline=None)
def test_homomorphic_add_property(a, b):
    scheme = FheScheme(SMALL)
    ct = scheme.add(scheme.encrypt_scalar(a), scheme.encrypt_scalar(b))
    assert scheme.decrypt_bytes(ct, 1)[0] == (a + b) % 256


# --------------------------------------------------------------------- #
# Algebraic property tests
# --------------------------------------------------------------------- #

@given(
    a=st.integers(min_value=0, max_value=255),
    b=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=10, deadline=None)
def test_homomorphic_add_commutes(a, b):
    scheme = FheScheme(SMALL)
    ct_a, ct_b = scheme.encrypt_scalar(a), scheme.encrypt_scalar(b)
    left = scheme.decrypt_bytes(scheme.add(ct_a, ct_b), 1)
    right = scheme.decrypt_bytes(scheme.add(ct_b, ct_a), 1)
    assert left == right == bytes([(a + b) % 256])


@given(
    a=st.integers(min_value=0, max_value=15),
    b=st.integers(min_value=0, max_value=15),
)
@settings(max_examples=8, deadline=None)
def test_homomorphic_mul_commutes(a, b):
    scheme = FheScheme(SMALL)
    ct_a, ct_b = scheme.encrypt_scalar(a), scheme.encrypt_scalar(b)
    left = scheme.decrypt_bytes(scheme.multiply(ct_a, ct_b), 1)
    right = scheme.decrypt_bytes(scheme.multiply(ct_b, ct_a), 1)
    assert left == right == bytes([(a * b) % 256])


@given(
    a=st.integers(min_value=0, max_value=15),
    b=st.integers(min_value=0, max_value=15),
    c=st.integers(min_value=0, max_value=15),
)
@settings(max_examples=6, deadline=None)
def test_multiplication_distributes_over_addition(a, b, c):
    """a*(b+c) == a*b + a*c homomorphically (within one mul depth)."""
    scheme = FheScheme(SMALL)
    ct_a = scheme.encrypt_scalar(a)
    ct_b, ct_c = scheme.encrypt_scalar(b), scheme.encrypt_scalar(c)
    left = scheme.multiply(ct_a, scheme.add(ct_b, ct_c))
    right = scheme.add(scheme.multiply(ct_a, ct_b), scheme.multiply(ct_a, ct_c))
    expected = bytes([(a * (b + c)) % 256])
    assert scheme.decrypt_bytes(left, 1) == expected
    assert scheme.decrypt_bytes(right, 1) == expected


@given(value=st.binary(max_size=32))
@settings(max_examples=15, deadline=None)
def test_serialization_roundtrip_property(value):
    scheme = FheScheme(SMALL)
    ct = scheme.encrypt_bytes(value)
    parsed = FheCiphertext.from_bytes(SMALL, ct.to_bytes())
    assert parsed.components == ct.components
    assert parsed.noise_log2 == ct.noise_log2
    assert scheme.decrypt_bytes(parsed, len(value)) == value
