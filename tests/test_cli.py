"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import EXPERIMENTS, main


def test_list_shows_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_table2(capsys):
    assert main(["run", "table2"]) == 0
    out = capsys.readouterr().out
    assert "oregon" in out and "21.84" in out


def test_run_figure6(capsys):
    assert main(["run", "figure6"]) == 0
    out = capsys.readouterr().out
    assert "storage_factor" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "figure99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_with_out_file(tmp_path, capsys):
    out_file = tmp_path / "table.txt"
    assert main(["run", "dollar_cost", "--out", str(out_file)]) == 0
    assert "usd_per_request" in out_file.read_text()
    assert str(out_file) in capsys.readouterr().out


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "read back: b'world'" in out
    assert "op type hidden" in out


def test_cost(capsys):
    assert main(["cost"]) == 0
    assert "storage_gb" in capsys.readouterr().out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_run_csv_format(capsys):
    assert main(["run", "table2", "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0] == "location,rtt_ms"
    assert "oregon,21.84" in out


def test_reproduce_writes_all_tables(tmp_path, capsys, monkeypatch):
    """Run the reproduce-all driver against fast stand-in experiments."""
    import repro.cli as cli

    fast = {
        "table2": cli.EXPERIMENTS["table2"],
        "figure6": cli.EXPERIMENTS["figure6"],
        "dollar_cost": cli.EXPERIMENTS["dollar_cost"],
    }
    monkeypatch.setattr(cli, "EXPERIMENTS", fast)
    out_dir = tmp_path / "repro-out"
    assert cli.main(["reproduce", "--out", str(out_dir)]) == 0
    for name in fast:
        assert (out_dir / f"{name}.txt").exists()
    assert "all 3 experiments" in capsys.readouterr().out


def test_reproduce_reports_failures(tmp_path, capsys, monkeypatch):
    import repro.cli as cli

    def boom():
        raise RuntimeError("synthetic failure")

    monkeypatch.setattr(
        cli, "EXPERIMENTS", {"broken": (boom, "always fails")}
    )
    assert cli.main(["reproduce", "--out", str(tmp_path / "o")]) == 1
    assert "FAILED" in capsys.readouterr().err


def test_run_json_output_parses(capsys):
    assert main(["run", "table2", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert isinstance(rows, list) and rows
    assert any(row.get("location") == "oregon" for row in rows)


def test_run_obs_json_writes_span_bundle(tmp_path, capsys):
    out = tmp_path / "obs.json"
    assert main(["run", "table2", "--obs-json", str(out)]) == 0
    bundle = json.loads(out.read_text())
    assert bundle["experiment"] == "table2"
    assert set(bundle) >= {"clock", "spans", "metrics"}
    assert "wrote" in capsys.readouterr().out
    # Capture is torn back down after the run.
    assert not obs.is_enabled()


def test_obs_command_passes_on_honest_protocol(capsys):
    assert main(["obs", "--keys", "8", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "obliviousness audit: PASS" in out
    assert "lbl.server.decrypt_attempts" in out


def test_obs_command_fails_on_leaky_control(tmp_path, capsys):
    bundle_path = tmp_path / "leaky.json"
    code = main(
        ["obs", "--keys", "8", "--seed", "0", "--leaky", "--json", str(bundle_path)]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "obliviousness audit: FAIL" in out
    bundle = json.loads(bundle_path.read_text())
    assert bundle["protocol"] == "lbl-ortoa-leaky"
    assert bundle["audit"]["passed"] is False


def test_obs_command_base_protocol(capsys):
    assert main(["obs", "--keys", "16", "--seed", "3", "--base"]) == 0
    assert "point_and_permute=False" in capsys.readouterr().out


def test_log_level_flag_accepted(capsys):
    assert main(["--log-level", "debug", "list"]) == 0
    assert "table2" in capsys.readouterr().out
