"""Tests for synthetic workloads and dataset builders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.types import Operation
from repro.workloads import (
    DATASETS,
    RequestStream,
    WorkloadSpec,
    build_dataset,
    synthetic_records,
)


# --------------------------------------------------------------------- #
# Synthetic records and request streams
# --------------------------------------------------------------------- #

def test_synthetic_records_shape():
    records = synthetic_records(100, 160, seed=1)
    assert len(records) == 100
    assert all(len(v) == 160 for v in records.values())


def test_synthetic_records_deterministic():
    assert synthetic_records(10, 16, seed=5) == synthetic_records(10, 16, seed=5)
    assert synthetic_records(10, 16, seed=5) != synthetic_records(10, 16, seed=6)


def test_stream_deterministic():
    spec = WorkloadSpec(keys=("a", "b", "c"), value_len=8, seed=9)
    assert [r.key for r in RequestStream(spec).take(20)] == [
        r.key for r in RequestStream(spec).take(20)
    ]


def test_write_fraction_respected():
    for fraction in (0.0, 0.3, 1.0):
        spec = WorkloadSpec(keys=("k",), value_len=8, write_fraction=fraction, seed=2)
        requests = RequestStream(spec).take(2000)
        observed = sum(1 for r in requests if r.op is Operation.WRITE) / 2000
        assert observed == pytest.approx(fraction, abs=0.05)


def test_write_requests_carry_values_reads_dont():
    spec = WorkloadSpec(keys=("k",), value_len=12, write_fraction=0.5, seed=3)
    for request in RequestStream(spec).take(50):
        if request.op is Operation.WRITE:
            assert len(request.value) == 12
        else:
            assert request.value is None


def test_uniform_key_coverage():
    keys = tuple(f"k{i}" for i in range(10))
    spec = WorkloadSpec(keys=keys, value_len=4, seed=4)
    seen = {r.key for r in RequestStream(spec).take(500)}
    assert seen == set(keys)


def test_zipf_skews_toward_low_ranks():
    keys = tuple(f"k{i}" for i in range(50))
    spec = WorkloadSpec(keys=keys, value_len=4, zipf_s=1.2, seed=6)
    requests = RequestStream(spec).take(3000)
    counts = {k: 0 for k in keys}
    for r in requests:
        counts[r.key] += 1
    assert counts["k0"] > 5 * counts["k49"]


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(keys=(), value_len=8)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(keys=("k",), value_len=8, write_fraction=1.5)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(keys=("k",), value_len=8, zipf_s=-1)
    with pytest.raises(ConfigurationError):
        synthetic_records(0, 8)


# --------------------------------------------------------------------- #
# Datasets (§6.4)
# --------------------------------------------------------------------- #

def test_dataset_value_sizes_match_paper():
    """EHR 10B, SmallBank 50B, e-commerce 40B — the §6.4 schemas."""
    assert DATASETS["ehr"].value_len == 10
    assert DATASETS["smallbank"].value_len == 50
    assert DATASETS["ecommerce"].value_len == 40
    for name, spec in DATASETS.items():
        records = build_dataset(name, 64, seed=1)
        assert all(len(v) == spec.value_len for v in records.values()), name


def test_dataset_repeats_base_population():
    """The paper repeats the 1024-row EHR data to fill 1M objects; values
    recur while keys stay unique."""
    records = build_dataset("ehr", 3000, seed=1)
    assert len(records) == 3000  # unique keys
    assert len(set(records.values())) <= 1024


def test_dataset_deterministic():
    assert build_dataset("smallbank", 50, seed=7) == build_dataset("smallbank", 50, seed=7)


def test_dataset_keys_use_uuids():
    records = build_dataset("ehr", 5, seed=1)
    for key in records:
        prefix, _, suffix = key.partition("-")
        assert prefix == "patient"
        assert len(suffix) == 36  # uuid format


def test_unknown_dataset_rejected():
    with pytest.raises(ConfigurationError):
        build_dataset("imaginary", 10)
    with pytest.raises(ConfigurationError):
        build_dataset("ehr", 0)


def test_smallbank_values_parse():
    records = build_dataset("smallbank", 5, seed=2)
    for value in records.values():
        text = value.rstrip(b"\x00").decode("ascii")
        assert text.startswith("C") and "S" in text and "A" in text and "R" in text


@given(st.sampled_from(sorted(DATASETS)), st.integers(min_value=1, max_value=200))
@settings(max_examples=20, deadline=None)
def test_dataset_size_property(name, n):
    records = build_dataset(name, n, seed=0)
    assert len(records) == n
    assert all(len(v) == DATASETS[name].value_len for v in records.values())
