"""Unit tests for the per-request resource ledger (:mod:`repro.obs.ledger`).

The ledger duplicates a handful of wire-format literals so it can stay a
leaf module (imported by the crypto layer); the pinning tests here are what
keeps those copies honest against the canonical definitions in
:mod:`repro.transport.framing`, :mod:`repro.core.messages`, and
:mod:`repro.crypto.aead` — as do the cost-model constants they feed.
"""

import threading

import pytest

from repro import obs
from repro.analysis import costmodel
from repro.core import messages
from repro.crypto import aead
from repro.crypto.keys import KeyChain
from repro.obs import ledger
from repro.obs.export import prometheus_text
from repro.transport import framing
from repro.transport.server import ERROR_TAG, LOAD_TAG, OBS_DUMP_TAG, OBS_PULL_TAG


@pytest.fixture(autouse=True)
def fresh_obs():
    obs.reset()
    obs.enable()
    yield
    obs.disable()
    obs.reset()


def _nonzero(snapshot):
    """Registry reset zeroes counters but keeps them registered; compare
    only the live values."""
    return {name: value for name, value in snapshot.items() if value}


# --------------------------------------------------------------------- #
# Wire-literal pinning
# --------------------------------------------------------------------- #

def test_mux_literals_match_framing():
    assert ledger._MUX_TAG == framing.MUX_TAG
    assert ledger._MUX_TRACED_TAG == framing.MUX_TRACED_TAG
    assert ledger._MUX_HEADER == 1 + framing.REQUEST_ID_BYTES
    assert (
        ledger._MUX_TRACED_HEADER
        == 1 + framing.REQUEST_ID_BYTES + framing.TRACE_CONTEXT_BYTES
    )


def test_framed_mux_bytes_matches_real_wrapping():
    payload = b"\x20" + b"x" * 41
    plain = framing.wrap_mux(7, payload)
    traced = framing.wrap_mux(7, payload, trace_context=b"\x00" * 16)
    # The transport counts 4 length-prefix bytes plus the wrapped payload.
    assert ledger.framed_mux_bytes(len(payload), traced=False) == 4 + len(plain)
    assert ledger.framed_mux_bytes(len(payload), traced=True) == 4 + len(traced)


def test_costmodel_literals_match_implementation():
    assert costmodel.ENCODED_KEY_BYTES == KeyChain(b"\x01" * 16).key_encoding_prf.out_bytes
    assert costmodel.AEAD_OVERHEAD_BYTES == aead.NONCE_LEN + aead.TAG_LEN
    assert costmodel.MUX_HEADER_BYTES == 1 + framing.REQUEST_ID_BYTES
    assert (
        costmodel.MUX_TRACED_HEADER_BYTES
        == 1 + framing.REQUEST_ID_BYTES + framing.TRACE_CONTEXT_BYTES
    )


@pytest.mark.parametrize(
    "tag, expected",
    [
        (messages.LblAccessRequest.TAG, "access"),
        (messages.LblAccessResponse.TAG, "access"),
        (messages.LblBatchRequest.TAG, "batch"),
        (messages.LblBatchResponse.TAG, "batch"),
        (LOAD_TAG, "load"),
        (OBS_PULL_TAG, "obs"),
        (OBS_DUMP_TAG, "obs"),
        (ERROR_TAG, "error"),
        (0x05, "other"),
    ],
)
def test_frame_type_classifies_tags(tag, expected):
    assert ledger.frame_type(bytes([tag]) + b"body") == expected


def test_frame_type_unwraps_mux_envelopes():
    inner = bytes([messages.LblAccessRequest.TAG]) + b"body"
    assert ledger.frame_type(framing.wrap_mux(1, inner)) == "access"
    assert (
        ledger.frame_type(framing.wrap_mux(1, inner, trace_context=b"\x00" * 16))
        == "access"
    )
    assert ledger.frame_type(b"") == "other"
    assert ledger.frame_type(bytes([framing.MUX_TAG])) == "other"


# --------------------------------------------------------------------- #
# Rows and attribution
# --------------------------------------------------------------------- #

def test_track_attributes_ambient_ops_and_wire():
    with ledger.track("req", trace_id=42) as row:
        ledger.add_op("prf.calls", 3)
        ledger.add_prf(2, 10)
        ledger.credit_wire("access", "sent", 100)
        ledger.credit_wire("access", "received", 25)
    snap = row.snapshot()
    assert snap["label"] == "req"
    assert snap["trace_id"] == 42
    assert snap["ops"] == {"prf.calls": 5, "sha256.compressions": 10}
    assert snap["wire"] == {"access.sent": 100, "access.received": 25}
    assert row.wire_bytes == 125
    assert ledger.completed_rows()[-1] is row


def test_track_nests_and_restores_outer_row():
    with ledger.track("outer") as outer:
        with ledger.track("inner"):
            ledger.add_op("aead.encrypts")
        ledger.add_op("prf.calls")
        assert ledger.current_row() is outer
    assert ledger.current_row() is None
    inner_row, outer_row = ledger.completed_rows()
    assert inner_row.ops == {"aead.encrypts": 1}
    assert outer_row.ops == {"prf.calls": 1}


def test_count_wire_is_registry_only():
    with ledger.track("req") as row:
        ledger.count_wire("access", "sent", 64, role="server")
    assert row.wire == {}
    assert _nonzero(ledger.registry_wire_snapshot()) == {"server.access.sent": 64}


def test_credit_wire_is_row_only():
    with ledger.track("req"):
        ledger.credit_wire("access", "sent", 64)
    assert _nonzero(ledger.registry_wire_snapshot()) == {}


def test_ops_hit_registry_and_row():
    with ledger.track("req"):
        ledger.add_op("aead.encrypts", 4)
    assert _nonzero(ledger.registry_ops_snapshot()) == {"aead.encrypts": 4}


def test_disabled_ledger_is_inert():
    obs.disable()
    with ledger.track("req") as row:
        ledger.add_op("prf.calls", 9)
        ledger.add_prf(1, 2)
        ledger.credit_wire("access", "sent", 10)
        ledger.count_wire("access", "sent", 10)
    assert row.ops == {}
    assert row.wire == {}
    assert _nonzero(ledger.registry_ops_snapshot()) == {}
    assert _nonzero(ledger.registry_wire_snapshot()) == {}


def test_activate_carries_row_across_threads():
    row = ledger.LedgerRow(label="hop")

    def work():
        token = ledger.activate(row)
        try:
            ledger.add_op("prf.calls", 7)
        finally:
            ledger.deactivate(token)

    thread = threading.Thread(target=work)
    thread.start()
    thread.join()
    assert row.ops == {"prf.calls": 7}
    ledger.retire(row)
    assert ledger.completed_rows() == [row]


def test_completed_rows_are_bounded():
    for i in range(ledger.MAX_COMPLETED_ROWS + 5):
        ledger.retire(ledger.LedgerRow(label=str(i)))
    rows = ledger.completed_rows()
    assert len(rows) == ledger.MAX_COMPLETED_ROWS
    assert rows[-1].label == str(ledger.MAX_COMPLETED_ROWS + 4)


# --------------------------------------------------------------------- #
# Prometheus export
# --------------------------------------------------------------------- #

def test_ledger_counters_export_to_prometheus():
    ledger.add_op("aead.encrypts", 2)
    ledger.count_wire("access", "sent", 128, role="server")
    text = prometheus_text()
    assert "repro_ledger_ops_aead_encrypts_total 2" in text
    assert "repro_ledger_wire_server_access_sent_bytes_total 128" in text
