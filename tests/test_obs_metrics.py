"""Tests for the metrics registry: counters, gauges, histogram edges, JSON."""

import json
import threading

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


def test_counter_accumulates_and_rejects_negative(registry):
    counter = registry.counter("requests")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ConfigurationError):
        counter.inc(-1)


def test_counter_is_shared_by_name(registry):
    registry.counter("hits").inc()
    registry.counter("hits").inc()
    assert registry.counter("hits").value == 2


def test_kind_collision_is_rejected(registry):
    registry.counter("x")
    with pytest.raises(ConfigurationError):
        registry.gauge("x")


def test_gauge_tracks_value_and_high_water_mark(registry):
    gauge = registry.gauge("stash")
    gauge.set(3)
    gauge.set(9)
    gauge.set(5)
    assert gauge.snapshot() == {"value": 5.0, "max": 9.0}


def test_histogram_bucket_edges(registry):
    hist = registry.histogram("sizes", bounds=(10.0, 100.0))
    hist.observe(0)  # below first bound -> first bucket
    hist.observe(10)  # exactly on a bound -> that bound's bucket (le semantics)
    hist.observe(10.0001)  # just above -> next bucket
    hist.observe(100)  # last bound's bucket
    hist.observe(101)  # overflow
    snap = hist.snapshot()
    assert snap["buckets"] == {"le_10": 2, "le_100": 2, "inf": 1}
    assert snap["count"] == 5
    assert snap["min"] == 0
    assert snap["max"] == 101


def test_histogram_mean_and_empty_defaults(registry):
    hist = registry.histogram("lat")
    assert hist.mean == 0.0
    hist.observe(2)
    hist.observe(4)
    assert hist.mean == 3.0


def test_histogram_rejects_bad_bounds(registry):
    with pytest.raises(ConfigurationError):
        registry.histogram("bad", bounds=())
    with pytest.raises(ConfigurationError):
        registry.histogram("bad2", bounds=(5.0, 5.0))
    with pytest.raises(ConfigurationError):
        registry.histogram("bad3", bounds=(5.0, 1.0))


def test_snapshot_groups_by_kind_and_is_json_serializable(registry):
    registry.counter("c").inc(7)
    registry.gauge("g").set(1.5)
    registry.histogram("h", bounds=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["counters"] == {"c": 7}
    assert snap["gauges"]["g"]["value"] == 1.5
    assert snap["histograms"]["h"]["count"] == 1
    # Round-trips through JSON without custom encoders.
    assert json.loads(registry.to_json()) == json.loads(json.dumps(snap))


def test_reset_zeroes_but_keeps_held_handles(registry):
    counter = registry.counter("kept")
    counter.inc(3)
    registry.reset()
    assert counter.value == 0
    counter.inc()  # the old handle still feeds the registry
    assert registry.snapshot()["counters"]["kept"] == 1


def test_clear_drops_instruments(registry):
    registry.counter("gone").inc()
    registry.clear()
    assert registry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "log_histograms": {},
    }


def test_snapshot_is_deterministic_for_a_deterministic_workload(registry):
    def run(reg):
        for i in range(10):
            reg.counter("ops").inc()
            reg.histogram("vals", bounds=DEFAULT_BUCKETS).observe(i * 37 % 11)
        return reg.snapshot()

    assert run(MetricsRegistry()) == run(MetricsRegistry())


def test_concurrent_increments_lose_nothing(registry):
    counter = registry.counter("racy")
    per_thread = 5000

    def hammer():
        for _ in range(per_thread):
            counter.inc()

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 4 * per_thread


def test_global_registry_collects_lbl_decrypt_counts():
    """Per-access decrypt counters appear for an instrumented LBL access."""
    import random

    from repro.core.lbl import LblOrtoa
    from repro.types import Request, StoreConfig

    config = StoreConfig(value_len=8, group_bits=2, point_and_permute=True)
    protocol = LblOrtoa(config, rng=random.Random(0))
    protocol.initialize({"k": b"v"})
    with obs.capture():
        protocol.access(Request.read("k"))
        counters = obs.REGISTRY.snapshot()["counters"]
    obs.reset()
    assert counters["lbl.server.requests"] == 1
    # Point-and-permute: exactly one decrypt per group.
    assert counters["lbl.server.decrypt_attempts"] == config.num_groups
    assert counters["lbl.server.failed_decrypts"] == 0
    assert counters["crypto.aead.encrypts"] == counters["lbl.proxy.ciphertexts_built"]
