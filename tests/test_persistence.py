"""Tests for server-store snapshots and full deployment resume."""

import random

import pytest

from repro.core import FheOrtoa, LblOrtoa, TwoRoundBaseline
from repro.crypto.fhe import FheParams
from repro.crypto.keys import KeyChain
from repro.errors import StorageError
from repro.storage import KeyValueStore
from repro.storage.persistence import (
    BytesCodec,
    FheCiphertextCodec,
    LabelListCodec,
    load_store,
    save_store,
)
from repro.types import StoreConfig

CONFIG = StoreConfig(value_len=8, group_bits=2, point_and_permute=True)


# --------------------------------------------------------------------- #
# Raw codec round trips
# --------------------------------------------------------------------- #

def test_bytes_store_roundtrip(tmp_path):
    store = KeyValueStore()
    store.put(b"k1", b"ciphertext-1")
    store.put(b"k2", b"")
    save_store(store, tmp_path / "snap.bin", BytesCodec())
    restored = load_store(tmp_path / "snap.bin", BytesCodec())
    assert restored.get(b"k1") == b"ciphertext-1"
    assert restored.get(b"k2") == b""
    assert len(restored) == 2


def test_label_store_roundtrip(tmp_path):
    from repro.crypto.labels import StoredLabel

    store = KeyValueStore()
    store.put(b"k", [StoredLabel(b"l" * 16, 3), StoredLabel(b"m" * 16, None)])
    save_store(store, tmp_path / "snap.bin", LabelListCodec())
    restored = load_store(tmp_path / "snap.bin", LabelListCodec())
    labels = restored.get(b"k")
    assert labels[0].label == b"l" * 16 and labels[0].decrypt_index == 3
    assert labels[1].label == b"m" * 16 and labels[1].decrypt_index is None


def test_fhe_store_roundtrip(tmp_path):
    params = FheParams(n=32, q_bits=100)
    protocol = FheOrtoa(StoreConfig(value_len=8), fhe_params=params)
    protocol.initialize({"k": b"value"})
    save_store(protocol.store, tmp_path / "snap.bin", FheCiphertextCodec(params))
    restored = load_store(tmp_path / "snap.bin", FheCiphertextCodec(params))
    encoded = protocol.keychain.encode_key("k")
    ct = restored.get(encoded)
    assert protocol.scheme.decrypt_bytes(ct, 8) == StoreConfig(value_len=8).pad(b"value")


def test_load_errors(tmp_path):
    with pytest.raises(StorageError):
        load_store(tmp_path / "missing.bin", BytesCodec())
    bad = tmp_path / "bad.bin"
    bad.write_bytes(b"NOTASNAPSHOT")
    with pytest.raises(StorageError):
        load_store(bad, BytesCodec())


def test_truncated_snapshot_rejected(tmp_path):
    store = KeyValueStore()
    store.put(b"key", b"value-bytes")
    save_store(store, tmp_path / "snap.bin", BytesCodec())
    data = (tmp_path / "snap.bin").read_bytes()
    (tmp_path / "cut.bin").write_bytes(data[:-4])
    with pytest.raises(StorageError):
        load_store(tmp_path / "cut.bin", BytesCodec())


def test_snapshot_is_atomic(tmp_path):
    """Saving over an existing snapshot must never leave a partial file."""
    store = KeyValueStore()
    store.put(b"k", b"v1")
    path = tmp_path / "snap.bin"
    save_store(store, path, BytesCodec())
    store.put(b"k", b"v2-longer")
    save_store(store, path, BytesCodec())
    assert load_store(path, BytesCodec()).get(b"k") == b"v2-longer"
    assert not path.with_suffix(".bin.tmp").exists()


# --------------------------------------------------------------------- #
# Full deployment resume
# --------------------------------------------------------------------- #

def test_baseline_server_restart(tmp_path):
    keychain = KeyChain(b"m" * 32)
    protocol = TwoRoundBaseline(StoreConfig(value_len=8), keychain)
    protocol.initialize({"k": b"alpha"})
    protocol.write("k", b"beta")
    save_store(protocol.store, tmp_path / "server.bin", BytesCodec())

    # "Restart": fresh protocol object, same keys, restored store.
    resumed = TwoRoundBaseline(StoreConfig(value_len=8), KeyChain(b"m" * 32))
    resumed.store = load_store(tmp_path / "server.bin", BytesCodec())
    assert resumed.read("k") == StoreConfig(value_len=8).pad(b"beta")


def test_lbl_full_deployment_resume(tmp_path):
    """Server snapshot + proxy counters + keychain = a resumable deployment."""
    keychain = KeyChain(b"m" * 32)
    protocol = LblOrtoa(CONFIG, keychain=keychain, rng=random.Random(1))
    protocol.initialize({"k1": b"one", "k2": b"two"})
    protocol.write("k1", b"1.1")
    protocol.read("k2")
    save_store(protocol.server.store, tmp_path / "server.bin", LabelListCodec())
    counters = protocol.proxy.counters()

    resumed = LblOrtoa(CONFIG, keychain=KeyChain(b"m" * 32), rng=random.Random(2))
    resumed.server.store = load_store(tmp_path / "server.bin", LabelListCodec())
    resumed.proxy.restore_counters(counters)
    assert resumed.read("k1") == CONFIG.pad(b"1.1")
    assert resumed.read("k2") == CONFIG.pad(b"two")
    resumed.write("k1", b"1.2")
    assert resumed.read("k1") == CONFIG.pad(b"1.2")
