"""Soak test: a longer randomized run across the whole stack at once.

One scenario, every layer: relational table + secondary index over a
durable (WAL-backed) LBL deployment with freshness-guarded TEE replica,
driven by a recorded-and-replayed trace, verified against a reference
model, then crash-recovered and verified again.
"""

import random

import pytest

from repro import (
    FreshnessGuard,
    LblOrtoa,
    Operation,
    StoreConfig,
    TeeOrtoa,
)
from repro.core.lbl.wal import DurableLblOrtoa
from repro.crypto.keys import KeyChain
from repro.workloads.trace import record_trace, replay_trace
from repro.workloads.synthetic import RequestStream, WorkloadSpec

CONFIG = StoreConfig(value_len=24, group_bits=2, point_and_permute=True)
KEYS = tuple(f"obj-{i}" for i in range(20))


def test_long_mixed_soak(tmp_path):
    keychain = KeyChain(b"soak-master-key-0123456789abcdef")
    primary = DurableLblOrtoa(
        CONFIG, tmp_path / "soak.wal", keychain=keychain, rng=random.Random(1)
    )
    replica = FreshnessGuard(
        StoreConfig(value_len=24), lambda cfg: TeeOrtoa(cfg)
    )
    records = {k: bytes(24) for k in KEYS}
    primary.initialize(dict(records))
    replica.initialize(dict(records))
    reference = {k: bytes(24) for k in KEYS}

    # Record a 400-request trace, then replay it (exercising the trace
    # round trip as part of the soak).
    stream = RequestStream(
        WorkloadSpec(keys=KEYS, value_len=24, write_fraction=0.4, seed=99)
    )
    trace_path = tmp_path / "soak-trace.jsonl"
    record_trace(stream.take(400), trace_path)

    for request in replay_trace(trace_path):
        if request.op is Operation.WRITE:
            reference[request.key] = CONFIG.pad(request.value)
            primary.write(request.key, request.value)
            replica.write(request.key, request.value)
        else:
            assert primary.read(request.key) == reference[request.key]
            assert replica.read(request.key) == reference[request.key]

    # Mid-life checkpoint + crash + recovery of the primary.
    primary.checkpoint()
    recovered = DurableLblOrtoa.recover(
        CONFIG,
        tmp_path / "soak.wal",
        keychain=keychain,
        server=primary.server,
        rng=random.Random(2),
    )
    for key in KEYS:
        assert recovered.read(key) == reference[key]

    # And the recovered deployment keeps serving.
    recovered.write(KEYS[0], b"post-recovery")
    assert recovered.read(KEYS[0]) == CONFIG.pad(b"post-recovery")
    assert recovered.recovered_resyncs == 0  # clean crash, no resync needed


def test_soak_counters_and_wire_shape_stay_disciplined(tmp_path):
    """After hundreds of accesses: counters equal access counts and the
    wire shape never drifted."""
    protocol = LblOrtoa(CONFIG, rng=random.Random(5))
    protocol.initialize({k: bytes(24) for k in KEYS})
    stream = RequestStream(
        WorkloadSpec(keys=KEYS, value_len=24, write_fraction=0.5, seed=11)
    )
    per_key_accesses = {k: 0 for k in KEYS}
    shapes = set()
    for request in stream.take(300):
        transcript = protocol.access(request)
        per_key_accesses[request.key] += 1
        shapes.add((transcript.request_bytes, transcript.response_bytes))
    assert len(shapes) == 1
    for key in KEYS:
        assert protocol.proxy.counter(key) == per_key_accesses[key]
