"""Tests for the sharded functional deployment (§6.2.4)."""

import random

import pytest

from repro.core import LblOrtoa, TwoRoundBaseline
from repro.core.deployment import ShardedDeployment
from repro.errors import ConfigurationError
from repro.types import StoreConfig

CONFIG = StoreConfig(value_len=8)


def make(num_shards=3, protocol="lbl"):
    if protocol == "lbl":
        factory = lambda: LblOrtoa(CONFIG, rng=random.Random(1))
    else:
        factory = lambda: TwoRoundBaseline(CONFIG)
    deployment = ShardedDeployment(CONFIG, factory, num_shards)
    deployment.initialize({f"key-{i}": bytes([i]) * 4 for i in range(30)})
    return deployment


def test_reads_after_init():
    d = make()
    for i in range(30):
        assert d.read(f"key-{i}") == CONFIG.pad(bytes([i]) * 4)


def test_writes_route_to_owning_shard():
    d = make()
    d.write("key-3", b"updated")
    assert d.read("key-3") == CONFIG.pad(b"updated")
    assert d.read("key-4") == CONFIG.pad(bytes([4]) * 4)


def test_all_shards_used():
    d = make(num_shards=3)
    sizes = d.shard_sizes()
    assert len(sizes) == 3
    assert all(size > 0 for size in sizes)
    assert sum(sizes) == 30


def test_each_shard_has_independent_keys():
    d = make(num_shards=2)
    chains = {id(shard.keychain) for shard in d.shards}
    assert len(chains) == 2
    encodings = {shard.keychain.encode_key("key-1") for shard in d.shards}
    assert len(encodings) == 2  # different master keys -> different PRFs


def test_unknown_key_rejected():
    d = make()
    with pytest.raises(ConfigurationError):
        d.read("never-initialized")


def test_single_shard_equivalent_to_plain_protocol():
    d = make(num_shards=1)
    assert d.num_shards == 1
    d.write("key-0", b"x")
    assert d.read("key-0") == CONFIG.pad(b"x")


def test_invalid_shard_count():
    with pytest.raises(ConfigurationError):
        ShardedDeployment(CONFIG, lambda: TwoRoundBaseline(CONFIG), 0)


def test_works_with_baseline_protocol_too():
    d = make(protocol="baseline")
    assert d.rounds == 2
    d.write("key-9", b"bb")
    assert d.read("key-9") == CONFIG.pad(b"bb")


def test_name_reflects_configuration():
    d = make(num_shards=3)
    assert d.name == "sharded-lbl-ortoa-x3"
