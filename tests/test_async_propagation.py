"""Obs control-frame coverage over the *async* transport.

``tests/test_propagation.py`` proves the 0x60/0x61 span-dump round trip
and the merged-forest property over the threaded transport; this file
mirrors it for :class:`AsyncLblServer` — the dump is assembled inline on
the event loop, so it deserves its own proof that (a) the control frame
answers over an event-loop server, (b) the bundle carries every obs
section (spans, metrics, recorder, exemplars), and (c) a process-backed
async cluster's dumps merge into one orphan-free forest.
"""

import json
import random

import pytest

from repro import obs
from repro.core.sharded import ShardedLblDeployment
from repro.obs.propagate import (
    REMOTE_PARENT_ATTR,
    ancestor_chain,
    orphan_spans,
    spans_by_id,
)
from repro.transport.async_client import SyncAsyncLblClient
from repro.transport.async_server import AsyncLblServer
from repro.transport.cluster import ShardCluster
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(180)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _run_traced_workload(deployment, num_keys=8):
    records = {f"p-{i}": f"v{i}".encode() for i in range(num_keys)}
    deployment.initialize(records)
    obs.enable()
    requests = [
        Request.read(key) if i % 2 else Request.write(key, bytes(16))
        for i, key in enumerate(records)
    ]
    deployment.access_pipelined(requests)
    return requests


def _assert_servers_descend_from_accesses(spans, expected):
    index = spans_by_id(spans)
    traced = [
        s
        for s in spans
        if s["name"] == "transport.server.request"
        and s["attributes"].get(REMOTE_PARENT_ATTR)
    ]
    assert len(traced) == expected, "one traced server span per access"
    for span in traced:
        chain = ancestor_chain(span, index)
        assert any(s["name"] == "sharded.access" for s in chain), (
            f"server span {span['span_id']} ({span['attributes']}) is not a "
            f"descendant of any client access span"
        )
    assert orphan_spans(spans) == []


def test_async_obs_pull_round_trip_carries_full_bundle():
    """0x60 over the async transport answers 0x61 with every obs section."""
    from repro.transport.server import OBS_DUMP_TAG, OBS_PULL_TAG

    obs.enable()
    with AsyncLblServer(point_and_permute=True) as server:
        with SyncAsyncLblClient(server.address) as client:
            reply = client.submit(bytes([OBS_PULL_TAG])).result(30)
    assert reply[:1] == bytes([OBS_DUMP_TAG])
    bundle = json.loads(reply[1:].decode("utf-8"))
    assert set(bundle) >= {"spans", "metrics", "recorder", "exemplars"}
    assert bundle["recorder"]["capacity"] > 0
    assert "exemplars" in bundle["exemplars"]


def test_async_inprocess_sharded_trace_links_server_to_client():
    with ShardCluster(
        2, point_and_permute=True, in_process=True, transport="async"
    ) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG,
            cluster.addresses,
            rng=random.Random(0),
            pipeline_depth=4,
            transport="async",
        )
        try:
            requests = _run_traced_workload(deployment)
            spans = deployment.merged_spans()
        finally:
            deployment.close()
    _assert_servers_descend_from_accesses(spans, expected=len(requests))


def test_async_process_backed_trace_merges_into_one_forest():
    """The satellite's acceptance: dumps pulled over the async transport,
    ids remapped, merged forest has no orphans, both shard processes
    represented — mirroring the threaded-transport proof exactly."""
    with ShardCluster(
        2,
        point_and_permute=True,
        in_process=False,
        enable_obs=True,
        transport="async",
    ) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG,
            cluster.addresses,
            rng=random.Random(0),
            pipeline_depth=4,
            transport="async",
        )
        try:
            requests = _run_traced_workload(deployment)
            remote = deployment.collect_remote_obs()
            spans = deployment.merged_spans(remote)
            timeline = deployment.merged_recorder(remote)
        finally:
            deployment.close()
    assert len(remote) == 2
    _assert_servers_descend_from_accesses(spans, expected=len(requests))
    processes = {
        s["attributes"].get("process")
        for s in spans
        if s["name"] == "transport.server.request"
    }
    assert processes == {"shard-0", "shard-1"}
    # The same pull carries each shard's recorder ring; the merged
    # timeline is time-ordered and process-tagged.
    assert all("process" in event for event in timeline)
    times = [event["time"] for event in timeline]
    assert times == sorted(times)
