"""Property test: interleaved concurrent requests never cross-attribute.

The ledger's attribution claim is per-request exactness under concurrency:
with many requests in flight — the pipelined window's worker/reader thread
hops, the batch path's prepare pool, the procpool backend's parent-side
crediting — every row must equal the cost model for *its own* key and
epoch, and the rows must sum to the transport's independently metered
socket totals.  A single misplaced contextvar would show up as one row
over-counting and its neighbour under-counting.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.analysis.costmodel import LblCostModel
from repro.core.sharded import ShardedLblDeployment
from repro.obs import ledger
from repro.transport.cluster import ShardCluster
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(300)

CONFIG = StoreConfig(value_len=8, group_bits=2, point_and_permute=True)
KEYS = tuple(f"h{i}" for i in range(6))

#: Each drawn element is one request: (key index, is_write).
WORKLOADS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=len(KEYS) - 1), st.booleans()),
    min_size=2,
    max_size=12,
)

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def pipelined_deployment():
    with ShardCluster(2, in_process=True) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG, cluster.addresses, rng=random.Random(11), pipeline_depth=4
        )
        deployment.initialize({key: b"\x01" * 8 for key in KEYS})
        yield deployment
        deployment.close()


@pytest.fixture(scope="module")
def async_deployment():
    """The same pipelined topology, but over the asyncio transport.

    Attribution here crosses one extra boundary: the caller's contextvars
    are invisible on the client's event-loop thread, so the trace context
    must ride the submit call and the server's per-task rows must land
    back on the right request.
    """
    with ShardCluster(2, in_process=True, transport="async") as cluster:
        deployment = ShardedLblDeployment(
            CONFIG,
            cluster.addresses,
            rng=random.Random(17),
            pipeline_depth=4,
            transport="async",
        )
        deployment.initialize({key: b"\x03" * 8 for key in KEYS})
        yield deployment
        deployment.close()


@pytest.fixture(scope="module")
def batch_deployment():
    with ShardCluster(2, in_process=True) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG,
            cluster.addresses,
            rng=random.Random(13),
            prepare_workers=2,
            prepare_backend="procpool",
            crypto_backend="stdlib",
        )
        deployment.initialize({key: b"\x02" * 8 for key in KEYS})
        yield deployment
        deployment.close()


@pytest.fixture(scope="module")
def coalesced_deployment():
    """Batch topology with the coalescing stage in front of the shm pool.

    Fused windows are the hardest attribution case: one worker dispatch and
    one ``encrypt_many`` serve several requests, so every PRF call and AEAD
    op is credited analytically to the row that caused it.  The per-row
    model equality below is exact only if that analytic split is exact.
    """
    with ShardCluster(2, in_process=True) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG,
            cluster.addresses,
            rng=random.Random(19),
            prepare_workers=2,
            prepare_backend="procpool",
            crypto_backend="stdlib",
            coalesce_window=0.0005,
            coalesce_batch=4,
        )
        deployment.initialize({key: b"\x04" * 8 for key in KEYS})
        yield deployment
        deployment.close()


def _requests(workload):
    return [
        Request.read(KEYS[index])
        if not is_write
        else Request.write(KEYS[index], bytes([i % 250 + 1]) * 8)
        for i, (index, is_write) in enumerate(workload)
    ]


def _expected_epochs(deployment, requests):
    """The epoch each request will consume: accesses to one key serialize
    in issue order, so the i-th access of a key sees counter + i."""
    seen: dict[str, int] = {}
    epochs = []
    for request in requests:
        base = deployment.proxy.counter(request.key)
        epochs.append(base + seen.get(request.key, 0))
        seen[request.key] = seen.get(request.key, 0) + 1
    return epochs


def _assert_rows_match_model(rows, requests, epochs, wire_frame):
    # Requests to the same key serialize in order, so pair rows with
    # requests per key in issue order.
    by_key: dict[str, list] = {}
    for row in rows:
        by_key.setdefault(row["label"].split(":", 1)[1], []).append(row)
    position: dict[str, int] = {}
    for request, epoch in zip(requests, epochs):
        key = request.key
        row = by_key[key][position.get(key, 0)]
        position[key] = position.get(key, 0) + 1
        model = LblCostModel.from_config(
            CONFIG, backend="stdlib", key=key, counter=epoch
        )
        expected = model.ops(include_server=False)
        actual = {name: row["ops"].get(name, 0) for name in expected}
        assert actual == expected, (key, epoch, row)
        if wire_frame == "access":
            assert row["wire"] == {
                "access.sent": model.framed_request_bytes(traced=True),
                "access.received": model.framed_response_bytes(),
            }, (key, epoch)


def _assert_rows_sum_to_registry(rows, frame):
    totals = ledger.registry_wire_snapshot()
    for direction in ("sent", "received"):
        assert totals.get(f"client.{frame}.{direction}", 0) == sum(
            row["wire"].get(f"{frame}.{direction}", 0) for row in rows
        )


@SETTINGS
@given(workload=WORKLOADS)
def test_pipelined_rows_never_cross_attribute(pipelined_deployment, workload):
    deployment = pipelined_deployment
    obs.reset()
    obs.enable()
    try:
        requests = _requests(workload)
        epochs = _expected_epochs(deployment, requests)
        deployment.access_pipelined(requests, depth=4)
    finally:
        obs.disable()
    rows = [
        row.snapshot()
        for row in ledger.completed_rows()
        if row.label.startswith("pipelined:")
    ]
    assert len(rows) == len(requests)
    _assert_rows_match_model(rows, requests, epochs, wire_frame="access")
    _assert_rows_sum_to_registry(rows, frame="access")


@SETTINGS
@given(workload=WORKLOADS)
def test_async_transport_rows_never_cross_attribute(async_deployment, workload):
    """The cost-model == ledger equality holds exactly over the async path.

    Same property as the threaded pipelined test, but every wire byte now
    flows through ``SyncAsyncLblClient`` → event loop → ``AsyncLblServer``
    tasks; a dropped or mis-copied contextvar anywhere along that chain
    would break the per-row equality or the registry sum."""
    deployment = async_deployment
    obs.reset()
    obs.enable()
    try:
        requests = _requests(workload)
        epochs = _expected_epochs(deployment, requests)
        deployment.access_pipelined(requests, depth=4)
    finally:
        obs.disable()
    rows = [
        row.snapshot()
        for row in ledger.completed_rows()
        if row.label.startswith("pipelined:")
    ]
    assert len(rows) == len(requests)
    _assert_rows_match_model(rows, requests, epochs, wire_frame="access")
    _assert_rows_sum_to_registry(rows, frame="access")


@SETTINGS
@given(workload=WORKLOADS)
def test_batch_procpool_rows_never_cross_attribute(batch_deployment, workload):
    deployment = batch_deployment
    obs.reset()
    obs.enable()
    try:
        requests = _requests(workload)
        epochs = _expected_epochs(deployment, requests)
        deployment.access_batch(requests)
    finally:
        obs.disable()
    rows = [
        row.snapshot()
        for row in ledger.completed_rows()
        if row.label.startswith("batched:")
    ]
    assert len(rows) == len(requests)
    _assert_rows_match_model(rows, requests, epochs, wire_frame="batch")
    _assert_rows_sum_to_registry(rows, frame="batch")


@SETTINGS
@given(workload=WORKLOADS)
def test_coalesced_batch_rows_never_cross_attribute(
    coalesced_deployment, workload
):
    """Fused-window rows still equal the per-request model exactly.

    Cold entries in a window share one procpool dispatch and one
    ``encrypt_many`` call; repeated keys chain through the per-request tail.
    Each row must nonetheless match the stdlib cost model for its own key
    and epoch, and the rows must sum to the transport's socket totals."""
    deployment = coalesced_deployment
    obs.reset()
    obs.enable()
    try:
        requests = _requests(workload)
        epochs = _expected_epochs(deployment, requests)
        deployment.access_batch(requests)
    finally:
        obs.disable()
    rows = [
        row.snapshot()
        for row in ledger.completed_rows()
        if row.label.startswith("batched:")
    ]
    assert len(rows) == len(requests)
    _assert_rows_match_model(rows, requests, epochs, wire_frame="batch")
    _assert_rows_sum_to_registry(rows, frame="batch")


@SETTINGS
@given(workload=WORKLOADS)
def test_coalesced_pipelined_rows_never_cross_attribute(
    coalesced_deployment, workload
):
    """The pipelined transport through the same coalescer: concurrent
    window joins from the issuing loop must keep per-row exactness."""
    deployment = coalesced_deployment
    obs.reset()
    obs.enable()
    try:
        requests = _requests(workload)
        epochs = _expected_epochs(deployment, requests)
        deployment.access_pipelined(requests, depth=4)
    finally:
        obs.disable()
    rows = [
        row.snapshot()
        for row in ledger.completed_rows()
        if row.label.startswith("pipelined:")
    ]
    assert len(rows) == len(requests)
    _assert_rows_match_model(rows, requests, epochs, wire_frame="access")
    _assert_rows_sum_to_registry(rows, frame="access")
