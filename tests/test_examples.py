"""Smoke tests: every shipped example must run cleanly end to end.

Examples are documentation that executes; letting one rot breaks the
quickstart experience, so they are part of the suite.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_cleanly(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they show"
    # Failure phrases examples print when an internal check breaks.
    assert "NOT detected" not in completed.stdout
