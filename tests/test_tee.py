"""Tests for the simulated TEE: attestation, sealing, and the oblivious ECALL."""

import pytest

from repro.crypto import aead
from repro.errors import AttestationError, EnclaveSealedError, ProtocolError
from repro.tee import AttestationService, Enclave, HardwareRoot
from repro.tee.attestation import Quote, measure_code
from repro.tee.enclave import ENCLAVE_CODE_IDENTITY

DATA_KEY = b"d" * 32


@pytest.fixture()
def enclave():
    enc = Enclave(HardwareRoot())
    enc.provision_key(DATA_KEY)
    return enc


# --------------------------------------------------------------------- #
# Attestation
# --------------------------------------------------------------------- #

def test_quote_verifies_for_expected_measurement():
    hw = HardwareRoot()
    enclave = Enclave(hw)
    service = AttestationService(hw, measure_code(ENCLAVE_CODE_IDENTITY))
    service.verify(enclave.generate_quote(b"nonce"))  # no raise


def test_forged_quote_rejected():
    hw = HardwareRoot()
    service = AttestationService(hw, measure_code(ENCLAVE_CODE_IDENTITY))
    fake = Quote(measure_code(ENCLAVE_CODE_IDENTITY), b"", b"\x00" * 32)
    with pytest.raises(AttestationError):
        service.verify(fake)


def test_wrong_measurement_rejected():
    hw = HardwareRoot()
    enclave = Enclave(hw)
    service = AttestationService(hw, measure_code("some-other-enclave"))
    with pytest.raises(AttestationError):
        service.verify(enclave.generate_quote())


def test_quote_from_other_machine_rejected():
    enclave = Enclave(HardwareRoot())
    other_service = AttestationService(HardwareRoot(), enclave.measurement)
    with pytest.raises(AttestationError):
        other_service.verify(enclave.generate_quote())


# --------------------------------------------------------------------- #
# Sealing
# --------------------------------------------------------------------- #

def test_host_cannot_read_sealed_key(enclave):
    with pytest.raises(EnclaveSealedError):
        _ = enclave.sealed_key


def test_unprovisioned_enclave_refuses_ecalls():
    enclave = Enclave(HardwareRoot())
    assert not enclave.is_provisioned
    with pytest.raises(ProtocolError):
        enclave.ecall_select_and_reencrypt(b"x", b"y", b"z")


def test_short_provisioned_key_rejected():
    enclave = Enclave(HardwareRoot())
    with pytest.raises(ProtocolError):
        enclave.provision_key(b"short")


# --------------------------------------------------------------------- #
# The oblivious ECALL
# --------------------------------------------------------------------- #

def _ecall(enclave, is_read, v_old, v_new):
    return enclave.ecall_select_and_reencrypt(
        aead.encrypt(DATA_KEY, bytes([1 if is_read else 0])),
        aead.encrypt(DATA_KEY, v_old),
        aead.encrypt(DATA_KEY, v_new),
    )


def test_read_selects_old_value(enclave):
    out = _ecall(enclave, True, b"old-value!", b"new-value!")
    assert aead.decrypt(DATA_KEY, out) == b"old-value!"


def test_write_selects_new_value(enclave):
    out = _ecall(enclave, False, b"old-value!", b"new-value!")
    assert aead.decrypt(DATA_KEY, out) == b"new-value!"


def test_output_is_reencrypted_not_replayed(enclave):
    v_old_ct = aead.encrypt(DATA_KEY, b"old")
    out = enclave.ecall_select_and_reencrypt(
        aead.encrypt(DATA_KEY, bytes([1])), v_old_ct, aead.encrypt(DATA_KEY, b"xxx")
    )
    assert out != v_old_ct  # fresh nonce -> different ciphertext


def test_trace_identical_for_reads_and_writes(enclave):
    """The step sequence inside the enclave must not depend on the op type."""
    _ecall(enclave, True, b"aa", b"bb")
    read_trace = enclave.last_trace
    _ecall(enclave, False, b"aa", b"bb")
    write_trace = enclave.last_trace
    assert read_trace == write_trace
    assert read_trace == (
        "decrypt-selector",
        "decrypt-old",
        "decrypt-new",
        "select",
        "encrypt-result",
    )


def test_ecall_count_increments(enclave):
    before = enclave.ecall_count
    _ecall(enclave, True, b"a", b"b")
    _ecall(enclave, False, b"a", b"b")
    assert enclave.ecall_count == before + 2


def test_bad_selector_rejected(enclave):
    with pytest.raises(ProtocolError):
        enclave.ecall_select_and_reencrypt(
            aead.encrypt(DATA_KEY, b"\x05"),
            aead.encrypt(DATA_KEY, b"a"),
            aead.encrypt(DATA_KEY, b"b"),
        )
    with pytest.raises(ProtocolError):
        enclave.ecall_select_and_reencrypt(
            aead.encrypt(DATA_KEY, b"10"),  # two bytes
            aead.encrypt(DATA_KEY, b"a"),
            aead.encrypt(DATA_KEY, b"b"),
        )


def test_mismatched_value_lengths_rejected(enclave):
    with pytest.raises(ProtocolError):
        enclave.ecall_select_and_reencrypt(
            aead.encrypt(DATA_KEY, bytes([1])),
            aead.encrypt(DATA_KEY, b"short"),
            aead.encrypt(DATA_KEY, b"much-longer-value"),
        )


def test_wrong_key_ciphertexts_fail_inside_enclave(enclave):
    from repro.errors import DecryptionError

    with pytest.raises(DecryptionError):
        enclave.ecall_select_and_reencrypt(
            aead.encrypt(b"wrong-key-123456", bytes([1])),
            aead.encrypt(DATA_KEY, b"a"),
            aead.encrypt(DATA_KEY, b"b"),
        )
