"""Tests for the KV engine and shard routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, KeyNotFoundError, StorageError
from repro.storage import KeyValueStore, ShardRouter


def test_put_get_roundtrip():
    store = KeyValueStore()
    store.put(b"k1", b"v1")
    assert store.get(b"k1") == b"v1"
    assert len(store) == 1
    assert b"k1" in store


def test_overwrite():
    store = KeyValueStore()
    store.put(b"k", b"v1")
    store.put(b"k", b"v2")
    assert store.get(b"k") == b"v2"
    assert len(store) == 1


def test_missing_key_raises():
    with pytest.raises(KeyNotFoundError):
        KeyValueStore().get(b"nope")


def test_put_new_rejects_duplicates():
    store = KeyValueStore()
    store.put_new(b"k", 1)
    with pytest.raises(StorageError):
        store.put_new(b"k", 2)


def test_non_bytes_keys_rejected():
    with pytest.raises(StorageError):
        KeyValueStore().put("str-key", 1)  # type: ignore[arg-type]


def test_counters():
    store = KeyValueStore()
    store.put(b"a", 1)
    store.put(b"b", 2)
    store.get(b"a")
    assert store.put_count == 2
    assert store.get_count == 1


def test_delete_and_clear():
    store = KeyValueStore()
    store.put(b"a", 1)
    store.delete(b"a")
    store.delete(b"a")  # idempotent
    assert b"a" not in store
    store.put(b"b", 2)
    store.clear()
    assert len(store) == 0


def test_stores_arbitrary_value_types():
    store = KeyValueStore()
    store.put(b"labels", [b"l1", b"l2"])
    assert store.get(b"labels") == [b"l1", b"l2"]


def test_iteration():
    store = KeyValueStore()
    store.put(b"a", 1)
    store.put(b"b", 2)
    assert sorted(store) == [b"a", b"b"]


# --------------------------------------------------------------------- #
# Sharding
# --------------------------------------------------------------------- #

def test_shard_router_deterministic():
    router = ShardRouter(5)
    assert router.shard_of(b"key") == router.shard_of(b"key")


def test_shard_router_range():
    router = ShardRouter(3)
    for i in range(100):
        assert 0 <= router.shard_of(f"k{i}".encode()) < 3


def test_single_shard_maps_everything_to_zero():
    router = ShardRouter(1)
    assert all(router.shard_of(f"k{i}".encode()) == 0 for i in range(20))


def test_partition_covers_all_keys():
    router = ShardRouter(4)
    keys = [f"key-{i}".encode() for i in range(200)]
    shards = router.partition(keys)
    assert sum(len(s) for s in shards) == 200
    assert sorted(k for shard in shards for k in shard) == sorted(keys)


def test_shards_roughly_balanced():
    router = ShardRouter(4)
    keys = [f"key-{i}".encode() for i in range(4000)]
    shards = router.partition(keys)
    for shard in shards:
        assert 800 <= len(shard) <= 1200  # within ±20% of 1000


def test_invalid_shard_count():
    with pytest.raises(ConfigurationError):
        ShardRouter(0)


@given(st.binary(min_size=1, max_size=32), st.integers(min_value=1, max_value=16))
@settings(max_examples=50)
def test_shard_stability_property(key, n):
    router = ShardRouter(n)
    assert router.shard_of(key) == router.shard_of(key)
    assert 0 <= router.shard_of(key) < n
