"""Fuzz tests: parsers must fail *cleanly* (ProtocolError/ConfigurationError),
never with unexpected exceptions, on arbitrary or mutated input."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import messages as m
from repro.crypto.fhe import FheCiphertext, FheParams
from repro.errors import ConfigurationError, ProtocolError

PARSERS = [
    m.ReadRequest,
    m.ReadResponse,
    m.WriteRequest,
    m.WriteAck,
    m.TeeAccessRequest,
    m.TeeAccessResponse,
    m.LblAccessRequest,
    m.LblAccessResponse,
    m.FheAccessRequest,
    m.FheAccessResponse,
]


@pytest.mark.parametrize("parser", PARSERS, ids=lambda p: p.__name__)
@given(data=st.binary(max_size=300))
@settings(max_examples=30, deadline=None)
def test_parsers_never_crash_on_garbage(parser, data):
    try:
        parser.from_bytes(data)
    except ProtocolError:
        pass  # the only acceptable failure mode


@given(
    mutation_at=st.integers(min_value=0, max_value=10_000),
    new_byte=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=50, deadline=None)
def test_lbl_request_mutation_is_rejected_or_parses(mutation_at, new_byte):
    """Any single-byte mutation of a valid message either still frames
    correctly (payload corruption is the AEAD's job) or raises cleanly."""
    original = m.LblAccessRequest(
        b"encoded-key", ((b"ct-one" * 4, b"ct-two" * 4),) * 3
    ).to_bytes()
    mutated = bytearray(original)
    mutated[mutation_at % len(mutated)] = new_byte
    try:
        parsed = m.LblAccessRequest.from_bytes(bytes(mutated))
        assert isinstance(parsed.tables, tuple)
    except ProtocolError:
        pass


@given(data=st.binary(max_size=400))
@settings(max_examples=30, deadline=None)
def test_fhe_ciphertext_parser_never_crashes(data):
    params = FheParams(n=8, q_bits=40)
    try:
        FheCiphertext.from_bytes(params, data)
    except ConfigurationError:
        pass


@given(
    truncate_to=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_truncated_fhe_ciphertext_rejected(truncate_to):
    from repro.crypto.fhe import FheScheme

    params = FheParams(n=8, q_bits=40)
    blob = FheScheme(params).encrypt_scalar(1).to_bytes()
    if truncate_to >= len(blob):
        return
    with pytest.raises(ConfigurationError):
        FheCiphertext.from_bytes(params, blob[:truncate_to])


def test_cross_protocol_tag_confusion_rejected():
    """Feeding one protocol's message to another parser must fail."""
    lbl = m.LblAccessRequest(b"k", ((b"a", b"b"),)).to_bytes()
    tee = m.TeeAccessRequest(b"k", b"s", b"v").to_bytes()
    with pytest.raises(ProtocolError):
        m.TeeAccessRequest.from_bytes(lbl)
    with pytest.raises(ProtocolError):
        m.LblAccessRequest.from_bytes(tee)
    with pytest.raises(ProtocolError):
        m.FheAccessRequest.from_bytes(tee)
