"""Fuzz tests: parsers must fail *cleanly* (ProtocolError/ConfigurationError),
never with unexpected exceptions, on arbitrary or mutated input.

The final section points the same adversarial streams at a *live*
:class:`~repro.transport.AsyncLblServer` over real sockets: a garbage,
truncated, or oversized frame may earn an error reply or a hangup, but
must never wedge the event loop or take the server down for other
connections."""

import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import messages as m
from repro.crypto.fhe import FheCiphertext, FheParams
from repro.crypto.labels import StoredLabel
from repro.errors import ConfigurationError, OrtoaError, ProtocolError
from repro.transport import framing
from repro.transport.async_server import AsyncLblServer
from repro.transport.framing import (
    _LEN,
    MAX_FRAME_BYTES,
    MAX_REQUEST_ID,
    unwrap_mux,
    wrap_mux,
)
from repro.transport.server import (
    ERROR_TAG,
    LOAD_TAG,
    OBS_DUMP_TAG,
    OBS_PROFILE_DUMP_TAG,
    OBS_PROFILE_START_TAG,
    OBS_PROFILE_STOP_TAG,
    OBS_PULL_TAG,
    pack_load,
    unpack_load,
)

PARSERS = [
    m.ReadRequest,
    m.ReadResponse,
    m.WriteRequest,
    m.WriteAck,
    m.TeeAccessRequest,
    m.TeeAccessResponse,
    m.LblAccessRequest,
    m.LblAccessResponse,
    m.FheAccessRequest,
    m.FheAccessResponse,
    m.LblBatchRequest,
    m.LblBatchResponse,
    m.LblErrorEntry,
]


@pytest.mark.parametrize("parser", PARSERS, ids=lambda p: p.__name__)
@given(data=st.binary(max_size=300))
@settings(max_examples=30, deadline=None)
def test_parsers_never_crash_on_garbage(parser, data):
    try:
        parser.from_bytes(data)
    except ProtocolError:
        pass  # the only acceptable failure mode


@given(
    mutation_at=st.integers(min_value=0, max_value=10_000),
    new_byte=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=50, deadline=None)
def test_lbl_request_mutation_is_rejected_or_parses(mutation_at, new_byte):
    """Any single-byte mutation of a valid message either still frames
    correctly (payload corruption is the AEAD's job) or raises cleanly."""
    original = m.LblAccessRequest(
        b"encoded-key", ((b"ct-one" * 4, b"ct-two" * 4),) * 3
    ).to_bytes()
    mutated = bytearray(original)
    mutated[mutation_at % len(mutated)] = new_byte
    try:
        parsed = m.LblAccessRequest.from_bytes(bytes(mutated))
        assert isinstance(parsed.tables, tuple)
    except ProtocolError:
        pass


@given(data=st.binary(max_size=400))
@settings(max_examples=30, deadline=None)
def test_fhe_ciphertext_parser_never_crashes(data):
    params = FheParams(n=8, q_bits=40)
    try:
        FheCiphertext.from_bytes(params, data)
    except ConfigurationError:
        pass


@given(
    truncate_to=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_truncated_fhe_ciphertext_rejected(truncate_to):
    from repro.crypto.fhe import FheScheme

    params = FheParams(n=8, q_bits=40)
    blob = FheScheme(params).encrypt_scalar(1).to_bytes()
    if truncate_to >= len(blob):
        return
    with pytest.raises(ConfigurationError):
        FheCiphertext.from_bytes(params, blob[:truncate_to])


def test_cross_protocol_tag_confusion_rejected():
    """Feeding one protocol's message to another parser must fail."""
    lbl = m.LblAccessRequest(b"k", ((b"a", b"b"),)).to_bytes()
    tee = m.TeeAccessRequest(b"k", b"s", b"v").to_bytes()
    with pytest.raises(ProtocolError):
        m.TeeAccessRequest.from_bytes(lbl)
    with pytest.raises(ProtocolError):
        m.LblAccessRequest.from_bytes(tee)
    with pytest.raises(ProtocolError):
        m.FheAccessRequest.from_bytes(tee)


# --------------------------------------------------------------------- #
# Bulk-load records (server-side parser for untrusted bytes)
# --------------------------------------------------------------------- #

stored_labels = st.lists(
    st.builds(
        StoredLabel,
        label=st.binary(min_size=0, max_size=40),
        decrypt_index=st.one_of(st.none(), st.integers(min_value=0, max_value=255)),
    ),
    max_size=8,
)


@given(encoded_key=st.binary(min_size=1, max_size=64), labels=stored_labels)
@settings(max_examples=50, deadline=None)
def test_load_record_roundtrip(encoded_key, labels):
    decoded_key, decoded_labels = unpack_load(pack_load(encoded_key, labels))
    assert decoded_key == encoded_key
    assert list(decoded_labels) == labels


@given(data=st.binary(max_size=300))
@settings(max_examples=50, deadline=None)
def test_unpack_load_never_crashes_on_garbage(data):
    try:
        unpack_load(data)
    except OrtoaError:
        pass  # ProtocolError or StorageError; nothing rawer may escape


@given(
    encoded_key=st.binary(min_size=1, max_size=32),
    labels=stored_labels,
    truncate_to=st.integers(min_value=0, max_value=200),
    claimed_len=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_unpack_load_adversarial_lengths(encoded_key, labels, truncate_to, claimed_len):
    """Truncations and lying key-length headers must fail cleanly."""
    blob = pack_load(encoded_key, labels)
    try:
        unpack_load(blob[: truncate_to % (len(blob) + 1)])
    except OrtoaError:
        pass
    # Rewrite the 4-byte key length to an arbitrary claim.
    lying = bytes([LOAD_TAG]) + claimed_len.to_bytes(4, "big") + blob[5:]
    try:
        unpack_load(lying)
    except OrtoaError:
        pass


# --------------------------------------------------------------------- #
# Mux framing (request-id envelope for pipelined transport)
# --------------------------------------------------------------------- #

@given(
    request_id=st.integers(min_value=0, max_value=MAX_REQUEST_ID),
    payload=st.binary(max_size=200),
)
@settings(max_examples=50, deadline=None)
def test_mux_roundtrip(request_id, payload):
    assert unwrap_mux(wrap_mux(request_id, payload)) == (request_id, payload)


@given(data=st.binary(max_size=200))
@settings(max_examples=50, deadline=None)
def test_unwrap_mux_never_crashes_on_garbage(data):
    try:
        request_id, inner = unwrap_mux(data)
    except ProtocolError:
        pass
    else:
        # Anything accepted must re-wrap to the identical bytes.
        assert wrap_mux(request_id, inner) == data


@given(
    mutation_at=st.integers(min_value=0, max_value=10_000),
    new_byte=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=50, deadline=None)
def test_batch_response_mutation_is_rejected_or_parses(mutation_at, new_byte):
    """Mixed success/error batch responses survive single-byte mutation
    without raw struct/index errors escaping the parser."""
    original = m.LblBatchResponse(
        (
            m.LblAccessResponse((b"label-one", b"label-two")),
            m.LblErrorEntry("stale label at epoch 4"),
            m.LblAccessResponse((b"label-three",)),
        )
    ).to_bytes()
    mutated = bytearray(original)
    mutated[mutation_at % len(mutated)] = new_byte
    try:
        parsed = m.LblBatchResponse.from_bytes(bytes(mutated))
        assert isinstance(parsed.responses, tuple)
    except ProtocolError:
        pass


# --------------------------------------------------------------------- #
# Live async server under adversarial byte streams
# --------------------------------------------------------------------- #

PING = bytes([OBS_PULL_TAG])


@pytest.fixture(scope="module")
def async_server():
    """One event-loop server shared by every fuzz example in this module.

    Sharing is the point: each example attacks the same loop, so a wedge
    or crash caused by example N fails the liveness probes of N+1.
    """
    with AsyncLblServer(point_and_permute=True) as server:
        yield server
    # A fuzzed frame that happens to start with the profiler-start tag
    # attaches the in-process sampling profiler; never leak that sampler
    # into later tests.
    from repro.obs import profiler

    profiler.detach()


def assert_loop_alive(server) -> None:
    """A well-formed request on a fresh connection still completes."""
    probe = socket.create_connection(server.address, timeout=30)
    try:
        framing.send_frame(probe, framing.wrap_mux(1, PING))
        _rid, inner = unwrap_mux(framing.recv_frame(probe))
        assert inner[:1] == bytes([OBS_DUMP_TAG])
    finally:
        probe.close()


def exchange(server, blob: bytes, timeout: float = 10.0) -> bytes | None:
    """Send raw bytes; return the first reply frame, or None on hangup.

    A timeout (the server neither replying nor hanging up) is the one
    outcome that fails the test: it means a connection wedged the loop.
    """
    sock = socket.create_connection(server.address, timeout=timeout)
    try:
        sock.sendall(blob)
        try:
            return framing.recv_frame(sock)
        except ProtocolError:
            return None  # server hung up cleanly
        except TimeoutError:
            pytest.fail(f"server neither replied nor hung up for {blob[:40]!r}")
    finally:
        sock.close()


#: First bytes the dispatcher recognizes (access, batch, load, obs pull,
#: and the two mux envelopes).  Garbage behind a known tag may parse by
#: coincidence; garbage behind anything else must earn an error frame.
KNOWN_TAGS = {
    m.LblAccessRequest.TAG,
    m.LblBatchRequest.TAG,
    LOAD_TAG,
    OBS_PULL_TAG,
    OBS_PROFILE_START_TAG,
    OBS_PROFILE_STOP_TAG,
    framing.MUX_TAG,
    framing.MUX_TRACED_TAG,
}


@given(payload=st.binary(min_size=0, max_size=300))
@settings(max_examples=25, deadline=None)
def test_async_server_replies_or_hangs_up_on_garbage_frames(async_server, payload):
    """A well-framed garbage payload earns an error reply or a hangup."""
    reply = exchange(async_server, _LEN.pack(len(payload)) + payload)
    if reply is not None and (not payload or payload[0] not in KNOWN_TAGS):
        # Unknown leading tag: the reply must be an explicit error frame,
        # not a fake success.
        assert reply[:1] == bytes([ERROR_TAG]), reply
    assert_loop_alive(async_server)


@given(
    request_id=st.integers(min_value=0, max_value=MAX_REQUEST_ID),
    inner=st.binary(min_size=0, max_size=200),
)
@settings(max_examples=25, deadline=None)
def test_async_server_answers_garbage_mux_frames_under_their_id(
    async_server, request_id, inner
):
    """Garbage *inside* a mux envelope is answered under that request id,
    so a pipelined client can fail just the one future."""
    frame = wrap_mux(request_id, inner)
    reply = exchange(async_server, _LEN.pack(len(frame)) + frame)
    if reply is not None and reply[:1] != bytes([ERROR_TAG]):
        reply_id, reply_inner = unwrap_mux(reply)
        assert reply_id == request_id
        # Almost always an error frame; a coincidentally-valid control
        # frame (obs pull, load record, profiler start/stop) may earn its
        # genuine ack.
        assert reply_inner[:1] in (
            bytes([ERROR_TAG]),
            bytes([OBS_DUMP_TAG]),
            bytes([OBS_PROFILE_DUMP_TAG]),
            bytes([LOAD_TAG + 1]),  # LOAD_ACK
        )
    assert_loop_alive(async_server)


@given(
    claimed=st.integers(min_value=0, max_value=2**32 - 1),
    delivered=st.binary(max_size=100),
)
@settings(max_examples=25, deadline=None)
def test_async_server_survives_lying_length_prefixes(async_server, claimed, delivered):
    """Length prefixes that promise more (or less) than delivered.

    Over-claims beyond MAX_FRAME_BYTES must be refused outright; short
    deliveries just look like a slow client until we hang up first.
    """
    sock = socket.create_connection(async_server.address, timeout=10)
    try:
        sock.sendall(_LEN.pack(claimed) + delivered)
        if claimed > MAX_FRAME_BYTES:
            # The server must refuse without reading the (absent) payload.
            try:
                reply = framing.recv_frame(sock)
                assert reply[:1] == bytes([ERROR_TAG])
            except ProtocolError:
                pass  # immediate hangup is acceptable too
    finally:
        sock.close()
    assert_loop_alive(async_server)


@given(raw=st.binary(min_size=1, max_size=300))
@settings(max_examples=25, deadline=None)
def test_async_server_survives_unframed_byte_storm(async_server, raw):
    """Raw bytes with no framing discipline at all, then a hard close."""
    sock = socket.create_connection(async_server.address, timeout=10)
    try:
        sock.sendall(raw)
    finally:
        sock.close()
    assert_loop_alive(async_server)


def test_async_server_survives_max_frame_boundary(async_server):
    """Frames exactly at, one under, and one over the size limit."""
    at_limit_ok = _LEN.pack(MAX_FRAME_BYTES)
    over_limit = _LEN.pack(MAX_FRAME_BYTES + 1)
    # Over the limit: refused before any payload is read.
    reply = exchange(async_server, over_limit)
    assert reply is None or reply[:1] == bytes([ERROR_TAG])
    # At the limit: legal length, we just never deliver the body; the
    # server must not block anyone else while waiting, and our hangup
    # must reap the connection.
    sock = socket.create_connection(async_server.address, timeout=10)
    try:
        sock.sendall(at_limit_ok)
        assert_loop_alive(async_server)
    finally:
        sock.close()
    assert_loop_alive(async_server)
