"""Fuzz tests: parsers must fail *cleanly* (ProtocolError/ConfigurationError),
never with unexpected exceptions, on arbitrary or mutated input."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import messages as m
from repro.crypto.fhe import FheCiphertext, FheParams
from repro.crypto.labels import StoredLabel
from repro.errors import ConfigurationError, OrtoaError, ProtocolError
from repro.transport.framing import MAX_REQUEST_ID, unwrap_mux, wrap_mux
from repro.transport.server import LOAD_TAG, pack_load, unpack_load

PARSERS = [
    m.ReadRequest,
    m.ReadResponse,
    m.WriteRequest,
    m.WriteAck,
    m.TeeAccessRequest,
    m.TeeAccessResponse,
    m.LblAccessRequest,
    m.LblAccessResponse,
    m.FheAccessRequest,
    m.FheAccessResponse,
    m.LblBatchRequest,
    m.LblBatchResponse,
    m.LblErrorEntry,
]


@pytest.mark.parametrize("parser", PARSERS, ids=lambda p: p.__name__)
@given(data=st.binary(max_size=300))
@settings(max_examples=30, deadline=None)
def test_parsers_never_crash_on_garbage(parser, data):
    try:
        parser.from_bytes(data)
    except ProtocolError:
        pass  # the only acceptable failure mode


@given(
    mutation_at=st.integers(min_value=0, max_value=10_000),
    new_byte=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=50, deadline=None)
def test_lbl_request_mutation_is_rejected_or_parses(mutation_at, new_byte):
    """Any single-byte mutation of a valid message either still frames
    correctly (payload corruption is the AEAD's job) or raises cleanly."""
    original = m.LblAccessRequest(
        b"encoded-key", ((b"ct-one" * 4, b"ct-two" * 4),) * 3
    ).to_bytes()
    mutated = bytearray(original)
    mutated[mutation_at % len(mutated)] = new_byte
    try:
        parsed = m.LblAccessRequest.from_bytes(bytes(mutated))
        assert isinstance(parsed.tables, tuple)
    except ProtocolError:
        pass


@given(data=st.binary(max_size=400))
@settings(max_examples=30, deadline=None)
def test_fhe_ciphertext_parser_never_crashes(data):
    params = FheParams(n=8, q_bits=40)
    try:
        FheCiphertext.from_bytes(params, data)
    except ConfigurationError:
        pass


@given(
    truncate_to=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_truncated_fhe_ciphertext_rejected(truncate_to):
    from repro.crypto.fhe import FheScheme

    params = FheParams(n=8, q_bits=40)
    blob = FheScheme(params).encrypt_scalar(1).to_bytes()
    if truncate_to >= len(blob):
        return
    with pytest.raises(ConfigurationError):
        FheCiphertext.from_bytes(params, blob[:truncate_to])


def test_cross_protocol_tag_confusion_rejected():
    """Feeding one protocol's message to another parser must fail."""
    lbl = m.LblAccessRequest(b"k", ((b"a", b"b"),)).to_bytes()
    tee = m.TeeAccessRequest(b"k", b"s", b"v").to_bytes()
    with pytest.raises(ProtocolError):
        m.TeeAccessRequest.from_bytes(lbl)
    with pytest.raises(ProtocolError):
        m.LblAccessRequest.from_bytes(tee)
    with pytest.raises(ProtocolError):
        m.FheAccessRequest.from_bytes(tee)


# --------------------------------------------------------------------- #
# Bulk-load records (server-side parser for untrusted bytes)
# --------------------------------------------------------------------- #

stored_labels = st.lists(
    st.builds(
        StoredLabel,
        label=st.binary(min_size=0, max_size=40),
        decrypt_index=st.one_of(st.none(), st.integers(min_value=0, max_value=255)),
    ),
    max_size=8,
)


@given(encoded_key=st.binary(min_size=1, max_size=64), labels=stored_labels)
@settings(max_examples=50, deadline=None)
def test_load_record_roundtrip(encoded_key, labels):
    decoded_key, decoded_labels = unpack_load(pack_load(encoded_key, labels))
    assert decoded_key == encoded_key
    assert list(decoded_labels) == labels


@given(data=st.binary(max_size=300))
@settings(max_examples=50, deadline=None)
def test_unpack_load_never_crashes_on_garbage(data):
    try:
        unpack_load(data)
    except OrtoaError:
        pass  # ProtocolError or StorageError; nothing rawer may escape


@given(
    encoded_key=st.binary(min_size=1, max_size=32),
    labels=stored_labels,
    truncate_to=st.integers(min_value=0, max_value=200),
    claimed_len=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_unpack_load_adversarial_lengths(encoded_key, labels, truncate_to, claimed_len):
    """Truncations and lying key-length headers must fail cleanly."""
    blob = pack_load(encoded_key, labels)
    try:
        unpack_load(blob[: truncate_to % (len(blob) + 1)])
    except OrtoaError:
        pass
    # Rewrite the 4-byte key length to an arbitrary claim.
    lying = bytes([LOAD_TAG]) + claimed_len.to_bytes(4, "big") + blob[5:]
    try:
        unpack_load(lying)
    except OrtoaError:
        pass


# --------------------------------------------------------------------- #
# Mux framing (request-id envelope for pipelined transport)
# --------------------------------------------------------------------- #

@given(
    request_id=st.integers(min_value=0, max_value=MAX_REQUEST_ID),
    payload=st.binary(max_size=200),
)
@settings(max_examples=50, deadline=None)
def test_mux_roundtrip(request_id, payload):
    assert unwrap_mux(wrap_mux(request_id, payload)) == (request_id, payload)


@given(data=st.binary(max_size=200))
@settings(max_examples=50, deadline=None)
def test_unwrap_mux_never_crashes_on_garbage(data):
    try:
        request_id, inner = unwrap_mux(data)
    except ProtocolError:
        pass
    else:
        # Anything accepted must re-wrap to the identical bytes.
        assert wrap_mux(request_id, inner) == data


@given(
    mutation_at=st.integers(min_value=0, max_value=10_000),
    new_byte=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=50, deadline=None)
def test_batch_response_mutation_is_rejected_or_parses(mutation_at, new_byte):
    """Mixed success/error batch responses survive single-byte mutation
    without raw struct/index errors escaping the parser."""
    original = m.LblBatchResponse(
        (
            m.LblAccessResponse((b"label-one", b"label-two")),
            m.LblErrorEntry("stale label at epoch 4"),
            m.LblAccessResponse((b"label-three",)),
        )
    ).to_bytes()
    mutated = bytearray(original)
    mutated[mutation_at % len(mutated)] = new_byte
    try:
        parsed = m.LblBatchResponse.from_bytes(bytes(mutated))
        assert isinstance(parsed.responses, tuple)
    except ProtocolError:
        pass
