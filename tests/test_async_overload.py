"""Fault injection against the asyncio transport: misbehaving clients and
the security contract of load shedding.

The obliviousness claim extends to overload: a shed request's reply is a
single constant tag byte, produced *before* the inner payload is parsed,
so shedding a GET and shedding a PUT are byte-identical on the wire and in
the ledger — an adversary timing or sizing OVERLOAD replies learns
nothing about the operation type.  The rest of the file throws broken
clients at the loop (stalled readers, half-closes, mid-request
disconnects) and requires the server to keep serving everyone else.
"""

import asyncio
import random
import socket
import time

import pytest

from repro import obs
from repro.core.lbl.proxy import LblProxy
from repro.crypto.keys import KeyChain
from repro.errors import OverloadError
from repro.obs import ledger
from repro.transport import framing
from repro.transport.async_client import SyncAsyncLblClient
from repro.transport.async_server import AsyncLblServer
from repro.transport.framing import _LEN
from repro.transport.server import (
    OBS_DUMP_TAG,
    OBS_PULL_TAG,
    OVERLOAD_FRAME,
    OVERLOAD_TAG,
    pack_load,
)
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(120)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)
PING = bytes([OBS_PULL_TAG])


def make_proxy(seed: int = 1) -> LblProxy:
    return LblProxy(
        CONFIG, KeyChain(label_bits=CONFIG.label_bits), rng=random.Random(seed)
    )


def occupy_window(address, delay_margin: int = 1) -> socket.socket:
    """Open a raw connection and park requests in the server's window."""
    sock = socket.create_connection(address, timeout=30)
    for request_id in range(delay_margin):
        framing.send_frame(sock, framing.wrap_mux(1000 + request_id, PING))
    return sock


# --------------------------------------------------------------------- #
# OVERLOAD byte-identity: shedding must not leak the operation type
# --------------------------------------------------------------------- #


def test_overload_frame_identical_for_get_and_put():
    """The raw shed reply for a GET equals the raw shed reply for a PUT.

    Byte-for-byte, same request id, captured off the wire — the strongest
    form of the no-leak claim for the load-shedding path.
    """
    proxy = make_proxy()
    with AsyncLblServer(max_in_flight=1, response_delay_s=1.0) as server:
        proxy.initial_records({"k": bytes(16)})  # register the key
        get_request, _ = proxy.prepare(Request.read("k"))
        put_request, _ = proxy.prepare(Request.write("k", b"\x07" * 16))

        blocker = occupy_window(server.address)
        try:
            raw_replies = []
            for payload in (get_request.to_bytes(), put_request.to_bytes()):
                sock = socket.create_connection(server.address, timeout=30)
                try:
                    framing.send_frame(sock, framing.wrap_mux(42, payload))
                    raw_replies.append(framing.recv_frame(sock))
                finally:
                    sock.close()
        finally:
            blocker.close()

    shed_get, shed_put = raw_replies
    assert shed_get == shed_put, "shed GET and shed PUT must be byte-identical"
    assert shed_get == framing.wrap_mux(42, OVERLOAD_FRAME)
    # The whole reply is the mux header plus exactly one constant tag byte:
    # nothing derived from the request (which differs between GET and PUT
    # far beyond the op bit) survives into the shed reply.
    request_id, inner = framing.unwrap_mux(shed_get)
    assert request_id == 42
    assert inner == bytes([OVERLOAD_TAG])
    assert len(inner) == 1


def test_shed_path_ledger_rows_identical_for_get_and_put():
    """The wire ledger of a shed GET equals the wire ledger of a shed PUT.

    GET and PUT requests are already size-identical (the protocol's core
    claim); the shed reply is constant; so the per-frame byte counters
    must match exactly between a shed-GET run and a shed-PUT run.
    """
    proxy = make_proxy()
    proxy.initial_records({"k": bytes(16)})
    get_request, _ = proxy.prepare(Request.read("k"))
    put_request, _ = proxy.prepare(Request.write("k", b"\x07" * 16))

    snapshots = []
    for payload in (get_request.to_bytes(), put_request.to_bytes()):
        with AsyncLblServer(max_in_flight=1, response_delay_s=1.0) as server:
            blocker = occupy_window(server.address)
            try:
                obs.reset()
                obs.enable()
                try:
                    with SyncAsyncLblClient(server.address) as client:
                        with pytest.raises(OverloadError):
                            client.submit(payload).result(30)
                    snapshot = ledger.registry_wire_snapshot()
                finally:
                    obs.disable()
            finally:
                blocker.close()
        # Only the access/overload traffic matters (the blocker's PING
        # frames race the obs.enable() window nondeterministically).
        snapshots.append(
            {
                name: value
                for name, value in snapshot.items()
                if "access" in name or "overload" in name
            }
        )

    shed_get, shed_put = snapshots
    assert shed_get == shed_put, (shed_get, shed_put)
    assert shed_get.get("client.overload.received", 0) > 0
    assert shed_get.get("server.overload.sent", 0) > 0


# --------------------------------------------------------------------- #
# Misbehaving clients must not wedge the loop
# --------------------------------------------------------------------- #


@pytest.fixture()
def server():
    with AsyncLblServer(point_and_permute=True) as srv:
        yield srv


def assert_server_alive(server) -> None:
    """A well-behaved request on a fresh connection completes promptly."""
    with SyncAsyncLblClient(server.address) as probe:
        assert probe.submit(PING).result(30)[:1] == bytes([OBS_DUMP_TAG])


def test_mid_request_disconnect_does_not_leak_window_slots():
    """A client that vanishes with requests in flight frees its slots."""
    with AsyncLblServer(max_in_flight=4, response_delay_s=0.3) as server:
        sock = socket.create_connection(server.address, timeout=30)
        for request_id in range(4):  # fill the whole global window
            framing.send_frame(sock, framing.wrap_mux(request_id, PING))
        deadline = time.time() + 5.0
        while server.in_flight < 4 and time.time() < deadline:
            time.sleep(0.005)
        assert server.in_flight == 4
        sock.close()  # vanish mid-request: replies have nowhere to go

        # The slots must come back once the in-flight dispatches finish.
        deadline = time.time() + 10.0
        while server.in_flight > 0 and time.time() < deadline:
            time.sleep(0.01)
        assert server.in_flight == 0
        assert_server_alive(server)


def test_half_closed_client_is_cleaned_up(server):
    """SHUT_WR mid-stream: the server finishes what it read, then reaps."""
    sock = socket.create_connection(server.address, timeout=30)
    framing.send_frame(sock, framing.wrap_mux(7, PING))
    sock.shutdown(socket.SHUT_WR)  # half-close: we still read
    reply = framing.recv_frame(sock)
    request_id, inner = framing.unwrap_mux(reply)
    assert request_id == 7 and inner[:1] == bytes([OBS_DUMP_TAG])
    sock.close()
    deadline = time.time() + 5.0
    while server.num_connections > 0 and time.time() < deadline:
        time.sleep(0.01)
    assert server.num_connections == 0
    assert_server_alive(server)


def test_client_closing_mid_frame_is_harmless(server):
    """A connection dying between the length header and the body."""
    sock = socket.create_connection(server.address, timeout=30)
    sock.sendall(_LEN.pack(500) + b"partial")  # promise 500 B, send 7
    sock.close()
    assert_server_alive(server)


def test_stalled_reader_is_aborted_not_waited_on():
    """A peer that stops reading cannot hold the loop or its slots.

    A tiny write buffer plus a short write timeout: replies to the stalled
    connection jam its send buffer, the drain times out, the server aborts
    that one connection — and keeps serving others throughout.
    """
    with AsyncLblServer(
        write_timeout_s=0.5,
        write_buffer_bytes=2048,
    ) as server:
        stalled = socket.create_connection(server.address, timeout=30)
        stalled.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1024)
        # Never read a byte; obs dumps (a few KB each) jam the buffer.
        for request_id in range(64):
            framing.send_frame(stalled, framing.wrap_mux(request_id, PING))

        # While the stalled connection is wedged, others are served fine.
        assert_server_alive(server)

        deadline = time.time() + 15.0
        while server.num_connections > 0 and time.time() < deadline:
            time.sleep(0.05)
        assert server.num_connections == 0, "stalled consumer must be aborted"
        assert server.in_flight == 0
        assert_server_alive(server)
        stalled.close()


def test_slow_reader_with_healthy_pace_is_served(server):
    """Slow-but-reading clients are backpressured, not punished."""
    sock = socket.create_connection(server.address, timeout=30)
    try:
        for request_id in range(5):
            framing.send_frame(sock, framing.wrap_mux(request_id, PING))
            time.sleep(0.05)  # slow, but reading every reply
            reply_id, inner = framing.unwrap_mux(framing.recv_frame(sock))
            assert reply_id == request_id
            assert inner[:1] == bytes([OBS_DUMP_TAG])
    finally:
        sock.close()


def test_many_faulty_clients_do_not_starve_good_ones(server):
    """A pile of connect-and-abandon clients alongside real traffic."""
    proxy = make_proxy()
    faulty = []
    for _ in range(50):
        sock = socket.create_connection(server.address, timeout=30)
        sock.sendall(_LEN.pack(100))  # promise a frame, never deliver
        faulty.append(sock)
    try:
        with SyncAsyncLblClient(server.address, pool_size=2) as client:
            records = {f"good-{i}": bytes(16) for i in range(16)}
            pending = [
                client.submit(pack_load(ek, labels))
                for ek, labels in proxy.initial_records(records)
            ]
            from repro.transport.server import LOAD_ACK

            assert all(f.result(30) == LOAD_ACK for f in pending)
    finally:
        for sock in faulty:
            sock.close()


def test_abrupt_reset_storm(server):
    """Connections RST-ing at random points must never take the loop down."""

    async def chaos(index: int):
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        try:
            frame = framing.wrap_mux(index, PING)
            blob = _LEN.pack(len(frame)) + frame
            cut = index % (len(blob) + 1)
            writer.write(blob[:cut])
            await writer.drain()
            if cut == len(blob) and index % 3 == 0:
                await reader.readexactly(_LEN.size)  # then vanish mid-reply
        finally:
            sock = writer.get_extra_info("socket")
            if sock is not None and index % 2 == 0:
                # Hard RST instead of FIN for half the storm.
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    __import__("struct").pack("ii", 1, 0),
                )
            writer.close()

    async def storm():
        await asyncio.gather(
            *(chaos(i) for i in range(60)), return_exceptions=True
        )

    asyncio.run(storm())
    assert_server_alive(server)
