"""Wire-format round-trip and robustness tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import messages as m
from repro.errors import ProtocolError


def test_read_request_roundtrip():
    req = m.ReadRequest(b"encoded-key")
    assert m.ReadRequest.from_bytes(req.to_bytes()) == req


def test_read_response_roundtrip():
    resp = m.ReadResponse(b"ciphertext-bytes")
    assert m.ReadResponse.from_bytes(resp.to_bytes()) == resp


def test_write_request_roundtrip():
    req = m.WriteRequest(b"key", b"ct")
    assert m.WriteRequest.from_bytes(req.to_bytes()) == req


def test_write_ack_roundtrip():
    assert m.WriteAck.from_bytes(m.WriteAck().to_bytes()) == m.WriteAck()


def test_tee_messages_roundtrip():
    req = m.TeeAccessRequest(b"key", b"selector", b"newvalue")
    assert m.TeeAccessRequest.from_bytes(req.to_bytes()) == req
    resp = m.TeeAccessResponse(b"result")
    assert m.TeeAccessResponse.from_bytes(resp.to_bytes()) == resp


def test_fhe_messages_roundtrip():
    req = m.FheAccessRequest(b"key", b"cr" * 50, b"cw" * 50, b"nv" * 100)
    assert m.FheAccessRequest.from_bytes(req.to_bytes()) == req
    resp = m.FheAccessResponse(b"result" * 100)
    assert m.FheAccessResponse.from_bytes(resp.to_bytes()) == resp


def test_lbl_request_roundtrip():
    tables = (
        (b"ct00", b"ct01"),
        (b"ct10", b"ct11"),
    )
    req = m.LblAccessRequest(b"key", tables)
    assert m.LblAccessRequest.from_bytes(req.to_bytes()) == req


def test_lbl_request_roundtrip_y2():
    tables = ((b"a", b"b", b"c", b"d"),) * 3
    req = m.LblAccessRequest(b"key", tables)
    parsed = m.LblAccessRequest.from_bytes(req.to_bytes())
    assert parsed.tables == tables


def test_lbl_response_roundtrip():
    resp = m.LblAccessResponse((b"label1", b"label2", b"label3"))
    assert m.LblAccessResponse.from_bytes(resp.to_bytes()) == resp


def test_lbl_request_rejects_empty_tables():
    with pytest.raises(ProtocolError):
        m.LblAccessRequest(b"key", ()).to_bytes()


def test_lbl_request_rejects_ragged_tables():
    with pytest.raises(ProtocolError):
        m.LblAccessRequest(b"key", ((b"a", b"b"), (b"c",))).to_bytes()


def test_wrong_tag_rejected():
    req = m.ReadRequest(b"key").to_bytes()
    with pytest.raises(ProtocolError):
        m.WriteRequest.from_bytes(req)


def test_truncated_message_rejected():
    data = m.TeeAccessRequest(b"key", b"sel", b"val").to_bytes()
    with pytest.raises(ProtocolError):
        m.TeeAccessRequest.from_bytes(data[:-2])


def test_empty_buffer_rejected():
    with pytest.raises(ProtocolError):
        m.ReadRequest.from_bytes(b"")


def test_size_is_fields_plus_framing():
    req = m.WriteRequest(b"k" * 16, b"c" * 100)
    # 1 tag byte + 2 fields x (4-byte length + body)
    assert len(req.to_bytes()) == 1 + (4 + 16) + (4 + 100)


@given(st.binary(max_size=64), st.binary(max_size=256), st.binary(max_size=256))
@settings(max_examples=50)
def test_tee_request_roundtrip_property(key, sel, val):
    req = m.TeeAccessRequest(key, sel, val)
    assert m.TeeAccessRequest.from_bytes(req.to_bytes()) == req


@given(
    st.lists(
        st.lists(st.binary(min_size=1, max_size=40), min_size=2, max_size=2),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=50)
def test_lbl_request_roundtrip_property(table_lists):
    tables = tuple(tuple(t) for t in table_lists)
    req = m.LblAccessRequest(b"key", tables)
    assert m.LblAccessRequest.from_bytes(req.to_bytes()) == req
