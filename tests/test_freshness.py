"""Rollback-protection tests for the FreshnessGuard wrapper."""

import pytest

from repro.core import TeeOrtoa, TwoRoundBaseline
from repro.core.freshness import FreshnessGuard
from repro.errors import ConfigurationError, TamperDetectedError
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=16)


@pytest.fixture(params=["baseline", "tee"])
def guarded(request):
    factory = TwoRoundBaseline if request.param == "baseline" else TeeOrtoa
    protocol = FreshnessGuard(CONFIG, lambda cfg: factory(cfg))
    protocol.initialize({"k": b"genesis"})
    return protocol


def test_normal_reads_and_writes(guarded):
    assert guarded.read("k") == CONFIG.pad(b"genesis")
    guarded.write("k", b"v1")
    assert guarded.read("k") == CONFIG.pad(b"v1")


def test_versions_increment_on_writes_only(guarded):
    assert guarded.expected_version("k") == 0
    guarded.read("k")
    assert guarded.expected_version("k") == 0
    guarded.write("k", b"v1")
    guarded.write("k", b"v2")
    assert guarded.expected_version("k") == 2


def test_rollback_attack_detected(guarded):
    """A malicious server replays the pre-write ciphertext; the next read
    must raise instead of silently returning stale data."""
    inner = guarded.inner
    encoded = inner.keychain.encode_key("k")
    stale_ciphertext = inner.store.get(encoded)
    guarded.write("k", b"new-balance")
    inner.store.put(encoded, stale_ciphertext)  # the rollback
    with pytest.raises(TamperDetectedError):
        guarded.read("k")


def test_replay_between_reads_is_harmless(guarded):
    """Replaying a read-era ciphertext serves the same version/value — no
    integrity violation, so no false positive either."""
    inner = guarded.inner
    encoded = inner.keychain.encode_key("k")
    guarded.read("k")
    snapshot = inner.store.get(encoded)
    guarded.read("k")
    inner.store.put(encoded, snapshot)
    assert guarded.read("k") == CONFIG.pad(b"genesis")


def test_wire_shape_identical_for_reads_and_writes(guarded):
    t_read = guarded.access(Request.read("k"))
    t_write = guarded.access(Request.write("k", CONFIG.pad(b"x")))
    assert [rt.request_bytes for rt in t_read.round_trips] == [
        rt.request_bytes for rt in t_write.round_trips
    ]


def test_transcript_strips_version_from_response(guarded):
    transcript = guarded.access(Request.read("k"))
    assert len(transcript.response.value) == CONFIG.value_len


def test_rounds_passthrough():
    baseline = FreshnessGuard(CONFIG, lambda cfg: TwoRoundBaseline(cfg))
    tee = FreshnessGuard(CONFIG, lambda cfg: TeeOrtoa(cfg))
    assert baseline.rounds == 2
    assert tee.rounds == 1


def test_unknown_key_rejected(guarded):
    with pytest.raises(ConfigurationError):
        guarded.expected_version("never")


def test_inner_config_must_be_widened():
    with pytest.raises(ConfigurationError):
        # A factory ignoring the widened config is a deployment bug.
        FreshnessGuard(CONFIG, lambda cfg: TwoRoundBaseline(CONFIG))
