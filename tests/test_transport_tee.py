"""Tests for TEE-ORTOA over TCP with the remote-attestation handshake."""

import socket

import pytest

from repro.errors import AttestationError, ProtocolError
from repro.tee.attestation import AttestationService, HardwareRoot, measure_code
from repro.tee.enclave import ENCLAVE_CODE_IDENTITY
from repro.transport.framing import recv_frame, send_frame
from repro.transport.tee_client import RemoteTeeOrtoa
from repro.transport.tee_server import (
    ATTEST_TAG,
    TeeTcpServer,
    pack_quote,
    unpack_quote,
)
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=16)


@pytest.fixture()
def server():
    tcp = TeeTcpServer()
    tcp.serve_in_background()
    yield tcp
    tcp.close()


def good_attestation(server):
    return AttestationService(server.hardware, measure_code(ENCLAVE_CODE_IDENTITY))


@pytest.fixture()
def client(server):
    remote = RemoteTeeOrtoa(CONFIG, server.address, good_attestation(server))
    remote.initialize({"k1": b"one", "k2": b"two"})
    yield remote
    remote.close()


# --------------------------------------------------------------------- #
# The handshake
# --------------------------------------------------------------------- #

def test_handshake_provisions_enclave(server):
    assert not server.enclave.is_provisioned
    remote = RemoteTeeOrtoa(CONFIG, server.address, good_attestation(server))
    assert server.enclave.is_provisioned
    remote.close()


def test_wrong_measurement_blocks_provisioning(server):
    wrong = AttestationService(server.hardware, measure_code("rogue-enclave"))
    with pytest.raises(AttestationError):
        RemoteTeeOrtoa(CONFIG, server.address, wrong)
    assert not server.enclave.is_provisioned


def test_wrong_hardware_root_blocks_provisioning(server):
    other_machine = AttestationService(
        HardwareRoot(), measure_code(ENCLAVE_CODE_IDENTITY)
    )
    with pytest.raises(AttestationError):
        RemoteTeeOrtoa(CONFIG, server.address, other_machine)


def test_quote_carries_fresh_nonce(server):
    sock = socket.create_connection(server.address, timeout=5)
    try:
        send_frame(sock, bytes([ATTEST_TAG]) + b"my-nonce-123")
        quote = unpack_quote(recv_frame(sock))
        assert quote.report_data == b"my-nonce-123"
        good_attestation(server).verify(quote)
    finally:
        sock.close()


def test_quote_pack_roundtrip(server):
    quote = server.enclave.generate_quote(b"nonce")
    assert unpack_quote(pack_quote(quote)) == quote


def test_unprovisioned_server_refuses_accesses(server):
    """Skip the handshake entirely: accesses must fail server-side."""
    from repro.core.messages import TeeAccessRequest

    sock = socket.create_connection(server.address, timeout=5)
    try:
        send_frame(
            sock, TeeAccessRequest(b"key", b"selector", b"value").to_bytes()
        )
        reply = recv_frame(sock)
        assert reply[0] == 0x7F  # error frame
        assert b"provision" in reply or b"attest" in reply
    finally:
        sock.close()


# --------------------------------------------------------------------- #
# Data path
# --------------------------------------------------------------------- #

def test_read_write_over_tcp(client):
    assert client.read("k1") == CONFIG.pad(b"one")
    client.write("k1", b"updated")
    assert client.read("k1") == CONFIG.pad(b"updated")
    assert client.read("k2") == CONFIG.pad(b"two")


def test_wire_shape_identical_for_reads_and_writes(client):
    t_read = client.access(Request.read("k1"))
    t_write = client.access(Request.write("k1", CONFIG.pad(b"x")))
    assert t_read.request_bytes == t_write.request_bytes
    assert t_read.response_bytes == t_write.response_bytes


def test_server_state_rotates_on_reads(server, client):
    encoded = client.keychain.encode_key("k1")
    before = server.store.get(encoded)
    client.read("k1")
    assert server.store.get(encoded) != before


def test_server_process_never_holds_plaintext_keys(server, client):
    client.write("k1", b"sensitive")
    for encoded_key in server.store:
        assert b"k1" not in encoded_key


def test_ecall_count_grows_per_access(server, client):
    before = server.enclave.ecall_count
    client.read("k1")
    client.write("k2", b"v")
    assert server.enclave.ecall_count == before + 2


def test_malformed_load_rejected(server, client):
    from repro.transport.tee_server import TEE_LOAD_TAG

    with pytest.raises(ProtocolError, match="server error"):
        client._exchange(bytes([TEE_LOAD_TAG]) + b"\x00\x00\x00\xffshort")
