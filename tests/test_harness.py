"""Tests for the cost model, the DES runner, and report rendering."""

import pytest

from repro.core.base import OpCounts
from repro.errors import ConfigurationError
from repro.harness import CostModel, DeploymentSpec, run_experiment
from repro.harness.report import ratio_summary, render_table
from repro.sim.network import DATACENTER_RTT_MS

FAST = {"duration_ms": 400.0}


# --------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------- #

def test_phase_ms_prices_all_counters():
    model = CostModel(
        prf_us=1.0, aead_enc_us=2.0, aead_dec_us=3.0, failed_dec_us=4.0,
        ecall_overhead_us=5.0, kv_op_us=6.0,
        fhe_enc_ms=7.0, fhe_dec_ms=8.0, fhe_add_ms=9.0, fhe_mul_ms=10.0,
    )
    ops = OpCounts(prf=1, aead_enc=1, aead_dec=1, failed_dec=1, ecalls=1,
                   kv_ops=1, fhe_enc=1, fhe_dec=1, fhe_add=1, fhe_mul=1)
    assert model.phase_ms(ops) == pytest.approx((1+2+3+4+5+6) / 1000 + (7+8+9+10))


def test_zero_ops_cost_nothing():
    assert CostModel.paper_like().phase_ms(OpCounts()) == 0.0


def test_measured_calibration_returns_positive_costs():
    model = CostModel.measured(samples=200)
    assert model.prf_us > 0
    assert model.aead_enc_us > 0
    assert model.aead_dec_us > 0
    assert model.failed_dec_us > 0
    # FHE costs stay at paper-like defaults.
    assert model.fhe_mul_ms == CostModel.paper_like().fhe_mul_ms


def test_measured_calibration_rejects_tiny_sample():
    with pytest.raises(ConfigurationError):
        CostModel.measured(samples=1)


# --------------------------------------------------------------------- #
# Runner semantics
# --------------------------------------------------------------------- #

def test_one_round_beats_two_rounds():
    lbl = run_experiment(DeploymentSpec(protocol="lbl", **FAST))
    baseline = run_experiment(DeploymentSpec(protocol="baseline", **FAST))
    assert lbl.metrics.avg_latency_ms < baseline.metrics.avg_latency_ms
    assert lbl.metrics.throughput_ops_per_s > baseline.metrics.throughput_ops_per_s


def test_latency_grows_with_distance():
    latencies = []
    for location in ("oregon", "london", "mumbai"):
        result = run_experiment(
            DeploymentSpec(protocol="tee", server_location=location,
                           server_cores=48, duration_ms=1500.0)
        )
        latencies.append(result.metrics.avg_latency_ms)
    assert latencies == sorted(latencies)
    # TEE compute is negligible: latency ≈ client hop + server RTT.
    assert latencies[0] == pytest.approx(DATACENTER_RTT_MS["oregon"] + 0.5, abs=2.0)


def test_throughput_scales_with_clients_before_saturation():
    t1 = run_experiment(DeploymentSpec(protocol="tee", num_clients=1,
                                       server_cores=48, **FAST))
    t8 = run_experiment(DeploymentSpec(protocol="tee", num_clients=8,
                                       server_cores=48, **FAST))
    ratio = t8.metrics.throughput_ops_per_s / t1.metrics.throughput_ops_per_s
    assert ratio == pytest.approx(8.0, rel=0.15)


def test_sharding_scales_throughput_linearly():
    one = run_experiment(DeploymentSpec(protocol="lbl", num_shards=1, **FAST))
    three = run_experiment(DeploymentSpec(protocol="lbl", num_shards=3, **FAST))
    ratio = three.metrics.throughput_ops_per_s / one.metrics.throughput_ops_per_s
    assert ratio == pytest.approx(3.0, rel=0.15)
    assert three.metrics.avg_latency_ms == pytest.approx(
        one.metrics.avg_latency_ms, rel=0.1
    )


def test_write_fraction_does_not_change_performance():
    """The access-oblivious guarantee, observed from the outside (Fig 2c)."""
    results = [
        run_experiment(DeploymentSpec(protocol="lbl", write_fraction=f, **FAST))
        for f in (0.0, 0.5, 1.0)
    ]
    latencies = [r.metrics.avg_latency_ms for r in results]
    assert max(latencies) - min(latencies) < 0.5


def test_memory_pressure_only_hits_big_message_protocols():
    small = run_experiment(DeploymentSpec(protocol="lbl", num_objects=2**20, **FAST))
    big = run_experiment(DeploymentSpec(protocol="lbl", num_objects=2**22, **FAST))
    assert big.metrics.avg_latency_ms > small.metrics.avg_latency_ms * 1.05

    tee_small = run_experiment(DeploymentSpec(protocol="tee", num_objects=2**20,
                                              server_cores=48, **FAST))
    tee_big = run_experiment(DeploymentSpec(protocol="tee", num_objects=2**22,
                                            server_cores=48, **FAST))
    assert tee_big.metrics.avg_latency_ms == pytest.approx(
        tee_small.metrics.avg_latency_ms, rel=0.02
    )


def test_lbl_message_sizes_follow_analysis():
    """§5.3.2 (with §10.1): 2^y ciphertexts per y bits of plaintext."""
    result = run_experiment(DeploymentSpec(protocol="lbl", **FAST))
    groups = 160 * 8 // 2
    # Each entry: 12 B nonce + 16 B label + 1 B slot + 16 B tag + 4 B framing.
    expected = groups * 4 * (12 + 16 + 1 + 16 + 4)
    assert result.request_bytes == pytest.approx(expected, rel=0.05)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        DeploymentSpec(protocol="nonexistent")
    with pytest.raises(ConfigurationError):
        DeploymentSpec(num_clients=0)
    with pytest.raises(ConfigurationError):
        DeploymentSpec(duration_ms=0)


def test_deterministic_given_seed():
    a = run_experiment(DeploymentSpec(protocol="tee", server_cores=48, seed=5, **FAST))
    b = run_experiment(DeploymentSpec(protocol="tee", server_cores=48, seed=5, **FAST))
    assert a.metrics.throughput_ops_per_s == b.metrics.throughput_ops_per_s
    assert a.metrics.avg_latency_ms == b.metrics.avg_latency_ms


# --------------------------------------------------------------------- #
# Report rendering
# --------------------------------------------------------------------- #

def test_render_table_aligns_columns():
    text = render_table("T", [{"a": 1, "b": "xy"}, {"a": 22.5, "b": "z"}])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "b" in lines[2]
    assert len({len(line) for line in lines[1:]}) <= 2  # rules + rows align


def test_render_table_rejects_empty():
    with pytest.raises(ConfigurationError):
        render_table("T", [])


def test_ratio_summary():
    rows = [
        {"protocol": "baseline", "tput": 100.0},
        {"protocol": "lbl", "tput": 170.0},
        {"protocol": "lbl", "tput": 150.0},
    ]
    ratios = ratio_summary(rows, "protocol", "tput", base="baseline")
    assert ratios["baseline"] == 1.0
    assert ratios["lbl"] == pytest.approx(1.6)


def test_ratio_summary_requires_base():
    with pytest.raises(ConfigurationError):
        ratio_summary([{"protocol": "lbl", "tput": 1.0}], "protocol", "tput", "baseline")


def test_csv_rendering():
    from repro.harness.report import rows_to_csv

    csv = rows_to_csv([{"a": 1, "b": "x,y"}, {"a": 2.5, "b": 'say "hi"'}])
    lines = csv.splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == '1,"x,y"'
    assert lines[2] == '2.50,"say ""hi"""'
    with pytest.raises(ConfigurationError):
        rows_to_csv([])


def test_jitter_widens_latency_spread_but_keeps_average():
    calm = run_experiment(DeploymentSpec(protocol="tee", server_cores=48, **FAST))
    jittery = run_experiment(
        DeploymentSpec(protocol="tee", server_cores=48, rtt_jitter_ms=4.0, **FAST)
    )
    assert jittery.metrics.p99_latency_ms > calm.metrics.p99_latency_ms
    # Uniform [0, 4] jitter on two one-way hops adds ~4 ms on average.
    assert jittery.metrics.avg_latency_ms == pytest.approx(
        calm.metrics.avg_latency_ms + 4.0, abs=1.0
    )


def test_jitter_is_reproducible():
    a = run_experiment(DeploymentSpec(protocol="tee", server_cores=48,
                                      rtt_jitter_ms=3.0, seed=4, **FAST))
    b = run_experiment(DeploymentSpec(protocol="tee", server_cores=48,
                                      rtt_jitter_ms=3.0, seed=4, **FAST))
    assert a.metrics.avg_latency_ms == b.metrics.avg_latency_ms


def test_negative_jitter_rejected():
    with pytest.raises(ConfigurationError):
        DeploymentSpec(rtt_jitter_ms=-1.0)


# --------------------------------------------------------------------- #
# Replicated runs (§6: "average of 3 runs")
# --------------------------------------------------------------------- #

def test_run_replicated_aggregates():
    from repro.harness.replication import run_replicated

    result = run_replicated(
        DeploymentSpec(protocol="tee", server_cores=48, rtt_jitter_ms=2.0, **FAST),
        num_runs=3,
    )
    assert result.num_runs == 3
    assert result.throughput_mean > 0
    # Jitter makes replicas differ, so the spread is non-degenerate...
    assert result.latency_stdev_ms >= 0
    # ...and the mean sits inside the replica range.
    latencies = [r.metrics.avg_latency_ms for r in result.runs]
    assert min(latencies) <= result.latency_mean_ms <= max(latencies)


def test_run_replicated_single_run_has_zero_stdev():
    from repro.harness.replication import run_replicated

    result = run_replicated(DeploymentSpec(protocol="tee", server_cores=48, **FAST),
                            num_runs=1)
    assert result.throughput_stdev == 0.0
    assert result.latency_stdev_ms == 0.0


def test_run_replicated_validation():
    from repro.harness.replication import run_replicated

    with pytest.raises(ConfigurationError):
        run_replicated(DeploymentSpec(**FAST), num_runs=0)


def test_utilization_reporting():
    """Proxy utilization must expose the saturation mechanism: low at 8
    clients, near-saturated at 128 for LBL; and the server stays cool."""
    light = run_experiment(DeploymentSpec(protocol="lbl", num_clients=8, **FAST))
    heavy = run_experiment(DeploymentSpec(protocol="lbl", num_clients=128, **FAST))
    assert 0.0 < light.proxy_utilization < 0.6
    assert heavy.proxy_utilization > 0.85
    assert heavy.server_utilization < heavy.proxy_utilization
    assert 0.0 <= heavy.server_utilization <= 1.0
