"""Tests for the clock abstraction and the calibration path that uses it."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.calibration import CostModel
from repro.obs.clock import (
    FakeClock,
    SimClock,
    WallClock,
    get_time_source,
    now,
    set_time_source,
    use_clock,
)


def test_fake_clock_manual_advance():
    clock = FakeClock(start=5.0)
    assert clock.now() == 5.0
    clock.advance(2.0)
    assert clock.now() == 7.0
    with pytest.raises(ConfigurationError):
        clock.advance(-1.0)


def test_fake_clock_auto_advance_steps_after_each_reading():
    clock = FakeClock(auto_advance=0.5)
    assert [clock.now() for _ in range(3)] == [0.0, 0.5, 1.0]


def test_fake_clock_rejects_negative_step():
    with pytest.raises(ConfigurationError):
        FakeClock(auto_advance=-0.1)


def test_use_clock_installs_and_restores():
    original = get_time_source()
    fake = FakeClock(start=100.0)
    with use_clock(fake):
        assert get_time_source() is fake
        assert now() == 100.0
    assert get_time_source() is original


def test_use_clock_restores_on_exception():
    original = get_time_source()
    with pytest.raises(RuntimeError):
        with use_clock(FakeClock()):
            raise RuntimeError("boom")
    assert get_time_source() is original


def test_set_time_source_returns_previous():
    original = get_time_source()
    fake = FakeClock()
    assert set_time_source(fake) is original
    assert set_time_source(original) is fake


def test_wall_clock_is_monotonic():
    clock = WallClock()
    assert clock.unit == "s"
    assert clock.now() <= clock.now()


def test_sim_clock_tracks_environment():
    class Env:
        now = 0.0

    env = Env()
    clock = SimClock(env)
    assert clock.unit == "sim_ms"
    assert clock.now() == 0.0
    env.now = 42.5
    assert clock.now() == 42.5


def test_measured_cost_model_with_fake_clock_is_deterministic():
    """Calibration timed by a fake clock yields exact, repeatable constants.

    ``time_us`` takes two readings around ``samples`` iterations; with
    ``auto_advance=step`` the elapsed span is exactly one step, so each
    primitive's cost comes out to ``step / samples * 1e6`` microseconds.
    """

    def calibrate():
        return CostModel.measured(
            label_bytes=16, samples=10, clock=FakeClock(auto_advance=0.001)
        )

    model = calibrate()
    expected_us = 0.001 / 10 * 1e6
    assert model.prf_us == pytest.approx(expected_us)
    assert model.aead_enc_us == pytest.approx(expected_us)
    assert model.aead_dec_us == pytest.approx(expected_us)
    assert model.failed_dec_us == pytest.approx(expected_us)
    assert calibrate() == model
    # FHE constants keep the paper-like defaults.
    assert model.fhe_mul_ms == CostModel.paper_like().fhe_mul_ms


def test_measured_cost_model_rejects_too_few_samples():
    with pytest.raises(ConfigurationError):
        CostModel.measured(samples=5)


def test_measured_cost_model_defaults_to_wall_clock():
    model = CostModel.measured(samples=10)
    assert model.prf_us > 0
    assert model.aead_enc_us > 0
