"""Edge-case tests for the shared vocabulary types and the error hierarchy."""

import pytest

from repro import errors
from repro.types import (
    AccessStats,
    LatencySample,
    Operation,
    Request,
    Response,
    StoreConfig,
)


# --------------------------------------------------------------------- #
# Error hierarchy
# --------------------------------------------------------------------- #

def test_every_library_error_is_an_ortoa_error():
    exception_types = [
        obj
        for obj in vars(errors).values()
        if isinstance(obj, type) and issubclass(obj, Exception)
    ]
    assert len(exception_types) >= 10
    for exc_type in exception_types:
        assert issubclass(exc_type, errors.OrtoaError), exc_type


def test_error_specialization_relationships():
    assert issubclass(errors.DecryptionError, errors.CryptoError)
    assert issubclass(errors.NoiseBudgetExhausted, errors.CryptoError)
    assert issubclass(errors.TamperDetectedError, errors.CryptoError)
    assert issubclass(errors.KeyNotFoundError, errors.ProtocolError)
    assert issubclass(errors.AttestationError, errors.EnclaveError)


def test_catching_the_base_class_works():
    with pytest.raises(errors.OrtoaError):
        raise errors.DecryptionError("boom")


# --------------------------------------------------------------------- #
# Request/Response invariants
# --------------------------------------------------------------------- #

def test_read_request_must_not_carry_value():
    with pytest.raises(errors.ConfigurationError):
        Request(Operation.READ, "k", b"value")


def test_write_request_must_carry_value():
    with pytest.raises(errors.ConfigurationError):
        Request(Operation.WRITE, "k", None)


def test_request_constructors():
    read = Request.read("k")
    assert read.op.is_read and not read.op.is_write and read.value is None
    write = Request.write("k", b"v")
    assert write.op.is_write and write.value == b"v"


def test_requests_are_immutable():
    request = Request.read("k")
    with pytest.raises(AttributeError):
        request.key = "other"  # type: ignore[misc]


def test_response_holds_key_and_value():
    response = Response("k", b"v")
    assert (response.key, response.value) == ("k", b"v")


# --------------------------------------------------------------------- #
# StoreConfig semantics
# --------------------------------------------------------------------- #

def test_config_derived_quantities():
    config = StoreConfig(value_len=10, group_bits=2)
    assert config.value_bits == 80
    assert config.num_groups == 40
    config3 = StoreConfig(value_len=10, group_bits=3)
    assert config3.num_groups == 27  # ceil(80 / 3)


def test_config_pad_behaviour():
    config = StoreConfig(value_len=8)
    assert config.pad(b"abc") == b"abc" + bytes(5)
    assert config.pad(b"x" * 8) == b"x" * 8
    with pytest.raises(errors.ConfigurationError):
        config.pad(b"x" * 9)


def test_config_validation():
    with pytest.raises(errors.ConfigurationError):
        StoreConfig(value_len=0)
    with pytest.raises(errors.ConfigurationError):
        StoreConfig(value_len=8, label_bits=12)
    with pytest.raises(errors.ConfigurationError):
        StoreConfig(value_len=8, group_bits=0)


# --------------------------------------------------------------------- #
# Stats and samples
# --------------------------------------------------------------------- #

def test_access_stats_record_and_merge():
    a = AccessStats()
    a.record_op(Operation.READ)
    a.record_op(Operation.WRITE)
    a.bytes_sent = 100
    b = AccessStats(requests=3, reads=3, bytes_sent=50)
    merged = a.merged_with(b)
    assert merged.requests == 5
    assert merged.reads == 4
    assert merged.writes == 1
    assert merged.bytes_sent == 150
    # merging is non-destructive
    assert a.requests == 2 and b.requests == 3


def test_latency_sample_arithmetic():
    sample = LatencySample(Operation.READ, start_ms=10.0, end_ms=35.5)
    assert sample.latency_ms == pytest.approx(25.5)
