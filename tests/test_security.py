"""Empirical ROR-RW indistinguishability tests (paper §7 / §11).

These tests run the Figure 5 game with representative adversaries and
assert that (a) structural fingerprints are identical across operation
types, and (b) statistical adversaries get negligible advantage.
"""

import random

import pytest

from repro.core import TeeOrtoa
from repro.security.distinguisher import (
    byte_histogram_advantage,
    make_byte_mean_adversary,
    make_first_block_adversary,
    make_size_adversary,
    shape_fingerprint,
    size_advantage,
)
from repro.security.games import (
    Access,
    RorRwGame,
    ideal_lbl_output,
    real_lbl_output,
    uniform_random_accesses,
)
from repro.security.simulators import FheSimulator, LblSimulator, TeeSimulator
from repro.crypto.fhe import FheParams
from repro.types import Operation, Request, StoreConfig

CONFIG = StoreConfig(value_len=8)
KEYS = ["k0", "k1", "k2"]


def reads(n):
    return [Access(Operation.READ, KEYS[i % len(KEYS)]) for i in range(n)]


def writes(n):
    return [
        Access(Operation.WRITE, KEYS[i % len(KEYS)], bytes([i % 256]) * 8)
        for i in range(n)
    ]


# --------------------------------------------------------------------- #
# Structural checks: shapes must not depend on op types
# --------------------------------------------------------------------- #

def test_read_only_and_write_only_fingerprints_match():
    out_reads = real_lbl_output(CONFIG, reads(12), rng=random.Random(1))
    out_writes = real_lbl_output(CONFIG, writes(12), rng=random.Random(2))
    assert shape_fingerprint(out_reads) == shape_fingerprint(out_writes)


def test_real_and_ideal_fingerprints_match():
    accesses = uniform_random_accesses(KEYS, 10, 8, random.Random(3))
    real = real_lbl_output(CONFIG, accesses, rng=random.Random(4))
    ideal = ideal_lbl_output(CONFIG, accesses, rng=random.Random(5))
    assert shape_fingerprint(real) == shape_fingerprint(ideal)


@pytest.mark.parametrize(
    "config",
    [
        StoreConfig(value_len=8),
        StoreConfig(value_len=8, group_bits=2),
        StoreConfig(value_len=8, group_bits=2, point_and_permute=True),
    ],
    ids=["y1", "y2", "y2-pnp"],
)
def test_fingerprints_match_across_optimizations(config):
    out_reads = real_lbl_output(config, reads(6), rng=random.Random(1))
    out_writes = real_lbl_output(config, writes(6), rng=random.Random(2))
    assert shape_fingerprint(out_reads) == shape_fingerprint(out_writes)
    ideal = ideal_lbl_output(config, reads(6), rng=random.Random(3))
    assert shape_fingerprint(out_reads) == shape_fingerprint(ideal)


# --------------------------------------------------------------------- #
# Statistical adversaries against LBL-ORTOA
# --------------------------------------------------------------------- #

def test_size_adversary_has_zero_advantage():
    accesses = uniform_random_accesses(KEYS, 8, 8, random.Random(7))
    real = [real_lbl_output(CONFIG, accesses, rng=random.Random(i)) for i in range(8)]
    ideal = [ideal_lbl_output(CONFIG, accesses, rng=random.Random(i)) for i in range(8)]
    assert size_advantage(real, ideal) == 0.0


def test_byte_histogram_close_to_uniform():
    accesses = uniform_random_accesses(KEYS, 20, 8, random.Random(7))
    real = [real_lbl_output(CONFIG, accesses, rng=random.Random(i)) for i in range(4)]
    ideal = [ideal_lbl_output(CONFIG, accesses, rng=random.Random(i)) for i in range(4)]
    assert byte_histogram_advantage(real, ideal) < 0.05


@pytest.mark.parametrize(
    "make_adversary",
    [
        lambda: make_size_adversary(10_000),
        lambda: make_byte_mean_adversary(),
        lambda: make_first_block_adversary(),
    ],
    ids=["size", "byte-mean", "repeat-prefix"],
)
def test_game_advantage_negligible(make_adversary):
    accesses = uniform_random_accesses(KEYS, 6, 8, random.Random(11))
    game = RorRwGame(
        real=lambda a: real_lbl_output(CONFIG, a),
        ideal=lambda a: ideal_lbl_output(CONFIG, a),
        rng=random.Random(13),
    )
    # With 40 fair coin flips sampling noise is ~0.16 at 1 sigma; an actual
    # leak (e.g. sizes differing) would give advantage 1.0.
    assert game.advantage(make_adversary(), accesses, rounds=40) < 0.45


def test_oracle_adversary_wins_sanity_check():
    """The game must be able to detect a *broken* scheme: give the adversary
    an oracle bit (message count parity trick) and check advantage is high.
    This guards against the game itself being vacuous."""
    game = RorRwGame(
        real=lambda a: [b"real"] * len(a),
        ideal=lambda a: [b"idea", b"l"] * len(a),  # different shape
        rng=random.Random(17),
    )
    adversary = lambda out: len(out) == 3
    assert game.advantage(adversary, reads(3), rounds=60) > 0.9


# --------------------------------------------------------------------- #
# TEE and FHE simulators: shape parity with the real protocols
# --------------------------------------------------------------------- #

def test_tee_simulator_matches_real_request_sizes():
    protocol = TeeOrtoa(CONFIG)
    protocol.initialize({"k": b"v"})
    real_read = protocol.access(Request.read("k"))
    real_write = protocol.access(Request.write("k", CONFIG.pad(b"x")))
    sim = TeeSimulator(CONFIG)
    sim_size = len(sim.simulate("k").to_bytes())
    assert real_read.round_trips[0].request_bytes == sim_size
    assert real_write.round_trips[0].request_bytes == sim_size


def test_fhe_simulator_matches_fresh_request_sizes():
    from repro.core import FheOrtoa

    params = FheParams(n=32, q_bits=160)
    protocol = FheOrtoa(CONFIG, fhe_params=params)
    protocol.initialize({"k": b"v"})
    real = protocol.access(Request.read("k"))
    sim = FheSimulator(CONFIG, fhe_params=params)
    assert len(sim.simulate("k").to_bytes()) == real.round_trips[0].request_bytes


def test_lbl_simulator_state_rotates():
    sim = LblSimulator(CONFIG, rng=random.Random(1))
    first = sim.simulate("k").to_bytes()
    second = sim.simulate("k").to_bytes()
    assert first != second
    assert len(first) == len(second)


# --------------------------------------------------------------------- #
# The learned (linear-classifier) distinguisher
# --------------------------------------------------------------------- #

def test_learned_distinguisher_fails_against_lbl():
    """Real vs ideal LBL outputs: a trained classifier stays near chance."""
    from repro.security.distinguisher import learned_distinguisher_accuracy

    accesses = uniform_random_accesses(KEYS, 6, 8, random.Random(2))
    real = [real_lbl_output(CONFIG, accesses, rng=random.Random(i)) for i in range(12)]
    ideal = [ideal_lbl_output(CONFIG, accesses, rng=random.Random(i)) for i in range(12)]
    accuracy = learned_distinguisher_accuracy(real, ideal)
    assert 0.2 <= accuracy <= 0.8  # chance is 0.5; wide band absorbs noise


def test_learned_distinguisher_fails_on_read_vs_write_transcripts():
    from repro.security.distinguisher import learned_distinguisher_accuracy

    read_outputs = [
        real_lbl_output(CONFIG, reads(5), rng=random.Random(i)) for i in range(12)
    ]
    write_outputs = [
        real_lbl_output(CONFIG, writes(5), rng=random.Random(100 + i))
        for i in range(12)
    ]
    accuracy = learned_distinguisher_accuracy(read_outputs, write_outputs)
    assert 0.2 <= accuracy <= 0.8


def test_learned_distinguisher_wins_against_a_leaky_scheme():
    """Sanity: the same classifier must crush the §1.1 leaky strawman,
    whose read and write requests differ in size."""
    from repro.core.naive import LeakyOneRound
    from repro.security.distinguisher import learned_distinguisher_accuracy
    from repro.types import Request as Req

    def transcript_bytes(is_read, seed):
        protocol = LeakyOneRound(StoreConfig(value_len=8))
        protocol.initialize({"k": b"v"})
        out = []
        for _ in range(5):
            if is_read:
                t = protocol.access(Req.read("k"))
            else:
                t = protocol.access(Req.write("k", protocol.config.pad(b"x")))
            out.append(bytes(t.request_bytes))  # size-only observation
        return out

    read_outputs = [transcript_bytes(True, i) for i in range(12)]
    write_outputs = [transcript_bytes(False, i) for i in range(12)]
    accuracy = learned_distinguisher_accuracy(read_outputs, write_outputs)
    assert accuracy > 0.9


def test_learned_distinguisher_needs_enough_samples():
    from repro.security.distinguisher import learned_distinguisher_accuracy

    with pytest.raises(ValueError):
        learned_distinguisher_accuracy([[b"x"]], [[b"y"]] * 8)
