"""Tests for the linear-scan ORAM baseline."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.oram.linear_scan import LinearScanOram
from repro.types import Operation


def make(num_blocks=8, value_len=4):
    oram = LinearScanOram(num_blocks, value_len)
    oram.initialize({i: bytes([i]) * value_len for i in range(num_blocks)})
    return oram


def test_read_write_roundtrip():
    oram = make()
    assert oram.read(3) == bytes([3]) * 4
    oram.write(3, b"abcd")
    assert oram.read(3) == b"abcd"
    assert oram.read(4) == bytes([4]) * 4


def test_every_access_touches_every_slot():
    oram = make(num_blocks=8)
    before_gets = oram.store.get_count
    before_puts = oram.store.put_count
    oram.read(0)
    assert oram.store.get_count - before_gets == 8
    assert oram.store.put_count - before_puts == 8


def test_bandwidth_is_linear_in_n():
    small, large = make(num_blocks=4), make(num_blocks=16)
    small.read(0)
    large.read(0)
    assert large.bytes_transferred == pytest.approx(4 * small.bytes_transferred, rel=0.01)


def test_access_pattern_is_trivially_hidden():
    """The observable (get sequence) is identical for every block id."""
    oram = make()

    def observed(block):
        before = oram.store.get_count
        oram.read(block)
        return oram.store.get_count - before

    assert observed(0) == observed(7) == oram.num_blocks


def test_op_type_is_hidden_by_rewrite():
    """Reads rewrite every ciphertext too — stored bytes change either way."""
    oram = make()
    key = oram._slot_key(2)
    before = oram.store.get(key)
    oram.read(5)  # reading a *different* block still rewrites slot 2
    assert oram.store.get(key) != before


def test_single_round_counter():
    oram = make()
    oram.read(0)
    oram.write(1, b"xxxx")
    assert oram.rounds_used == 2
    assert oram.rounds_per_access == 1


def test_random_workload_matches_dict():
    oram = make(num_blocks=6)
    reference = {i: bytes([i]) * 4 for i in range(6)}
    rng = random.Random(1)
    for _ in range(40):
        block = rng.randrange(6)
        if rng.random() < 0.5:
            value = rng.randbytes(4)
            reference[block] = value
            oram.write(block, value)
        else:
            assert oram.read(block) == reference[block]


def test_validation():
    with pytest.raises(ConfigurationError):
        LinearScanOram(0, 4)
    oram = make()
    with pytest.raises(ConfigurationError):
        oram.read(99)
    with pytest.raises(ConfigurationError):
        oram.access(Operation.WRITE, 0, b"wrong-length")
    with pytest.raises(ConfigurationError):
        LinearScanOram(2, 4).initialize({0: b"toolongvalue"})
