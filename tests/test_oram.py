"""Tests for PathORAM and the one-round ORTOA-based ORAM (§8)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.oram import OneRoundOram, PathOram, TreeConfig
from repro.types import Operation


# --------------------------------------------------------------------- #
# Tree geometry
# --------------------------------------------------------------------- #

def test_tree_counts():
    tree = TreeConfig(height=3, bucket_size=4)
    assert tree.num_leaves == 8
    assert tree.num_levels == 4
    assert tree.num_buckets == 15
    assert tree.capacity == 60


def test_path_runs_root_to_leaf():
    tree = TreeConfig(height=2)
    assert tree.path_buckets(0) == [0, 1, 3]
    assert tree.path_buckets(3) == [0, 2, 6]


def test_paths_share_root():
    tree = TreeConfig(height=3)
    for leaf in range(tree.num_leaves):
        assert tree.path_buckets(leaf)[0] == 0
        assert len(tree.path_buckets(leaf)) == tree.num_levels


def test_paths_intersect_at():
    tree = TreeConfig(height=2)
    assert tree.paths_intersect_at(0, 3, 0)      # root always shared
    assert tree.paths_intersect_at(0, 1, 1)      # same left subtree
    assert not tree.paths_intersect_at(0, 3, 1)  # different subtrees
    assert not tree.paths_intersect_at(0, 1, 2)  # different leaves


def test_for_blocks_sizing():
    tree = TreeConfig.for_blocks(100, bucket_size=4)
    assert tree.num_leaves * tree.bucket_size >= 100


def test_tree_validation():
    with pytest.raises(ConfigurationError):
        TreeConfig(height=0)
    with pytest.raises(ConfigurationError):
        TreeConfig(height=2).path_buckets(99)
    with pytest.raises(ConfigurationError):
        TreeConfig(height=2).bucket_at(0, 9)


# --------------------------------------------------------------------- #
# Shared ORAM behaviour
# --------------------------------------------------------------------- #

def make_oram(kind, num_blocks=16, value_len=8, seed=11):
    rng = random.Random(seed)
    if kind == "path":
        oram = PathOram(num_blocks, value_len, rng=rng)
    else:
        oram = OneRoundOram(num_blocks, value_len, rng=rng)
    oram.initialize({i: bytes([i]) * value_len for i in range(num_blocks)})
    return oram


@pytest.fixture(params=["path", "one-round"])
def oram(request):
    return make_oram(request.param)


def test_reads_return_initial_values(oram):
    for block_id in range(oram.num_blocks):
        assert oram.read(block_id) == bytes([block_id]) * 8


def test_write_then_read(oram):
    oram.write(3, b"updated!")
    assert oram.read(3) == b"updated!"
    assert oram.read(4) == bytes([4]) * 8


def test_random_workload_matches_dict(oram):
    rng = random.Random(5)
    reference = {i: bytes([i]) * 8 for i in range(oram.num_blocks)}
    for _ in range(80):
        block = rng.randrange(oram.num_blocks)
        if rng.random() < 0.5:
            value = rng.randbytes(8)
            reference[block] = value
            oram.write(block, value)
        else:
            assert oram.read(block) == reference[block]


def test_access_returns_pre_write_value(oram):
    before = oram.read(7)
    returned = oram.access(Operation.WRITE, 7, b"xxxxxxxx")
    assert returned == before


def test_invalid_access_rejected(oram):
    with pytest.raises(ConfigurationError):
        oram.read(999)
    with pytest.raises(ConfigurationError):
        oram.access(Operation.WRITE, 0, b"short")


# --------------------------------------------------------------------- #
# The round-count contrast — the point of §8
# --------------------------------------------------------------------- #

def test_path_oram_uses_two_rounds_per_access():
    oram = make_oram("path")
    before = oram.rounds_used
    oram.read(0)
    assert oram.rounds_used == before + 2
    oram.write(1, b"abcdefgh")
    assert oram.rounds_used == before + 4


def test_one_round_oram_uses_one_round_per_access():
    oram = make_oram("one-round")
    before = oram.rounds_used
    oram.read(0)
    assert oram.rounds_used == before + 1
    oram.write(1, b"abcdefgh")
    assert oram.rounds_used == before + 2


def test_one_round_touches_one_cell_per_level():
    oram = make_oram("one-round")
    before = oram.cells.server.store.get_count
    oram.read(0)
    # Server does 2 KV ops (get+put) per cell access, one cell per level.
    gets = oram.cells.server.store.get_count - before
    assert gets == oram.tree.num_levels


def test_one_round_eviction_keeps_stash_bounded():
    oram = make_oram("one-round", num_blocks=24, seed=3)
    rng = random.Random(9)
    for _ in range(150):
        oram.read(rng.randrange(24))
    # Continuous eviction must keep the stash well below total blocks.
    assert len(oram.stash) < 24 // 2


def test_path_oram_stash_bounded():
    oram = make_oram("path", num_blocks=24, seed=3)
    rng = random.Random(9)
    for _ in range(150):
        oram.read(rng.randrange(24))
    assert oram.stash.max_occupancy < 24


def test_position_map_remaps_on_access(oram):
    rng_state = [oram._position[0]]
    for _ in range(12):
        oram.read(0)
        rng_state.append(oram._position[0])
    assert len(set(rng_state)) > 1


def test_bytes_transferred_accumulates(oram):
    before = oram.bytes_transferred
    oram.read(0)
    assert oram.bytes_transferred > before


def test_oram_capacity_validation():
    with pytest.raises(ConfigurationError):
        PathOram(1000, 8, tree=TreeConfig(height=1, bucket_size=1))
    with pytest.raises(ConfigurationError):
        OneRoundOram(0, 8)


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.one_of(st.none(), st.binary(min_size=4, max_size=4)),
        ),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=15, deadline=None)
def test_one_round_oram_correctness_property(ops):
    oram = OneRoundOram(8, 4, rng=random.Random(2))
    oram.initialize({i: bytes([i]) * 4 for i in range(8)})
    reference = {i: bytes([i]) * 4 for i in range(8)}
    for block, value in ops:
        if value is None:
            assert oram.read(block) == reference[block]
        else:
            oram.write(block, value)
            reference[block] = value
