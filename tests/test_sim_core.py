"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.core import Environment
from repro.sim.resources import Resource


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(5.0)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [5.0, 7.5]


def test_parallel_processes_interleave():
    env = Environment()
    log = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        log.append((name, env.now))

    env.process(proc(env, "slow", 10))
    env.process(proc(env, "fast", 1))
    env.run()
    assert log == [("fast", 1), ("slow", 10)]


def test_process_return_value():
    env = Environment()
    result = {}

    def child(env):
        yield env.timeout(3)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        result["value"] = value
        result["time"] = env.now

    env.process(parent(env))
    env.run()
    assert result == {"value": 42, "time": 3}


def test_waiting_on_already_completed_process():
    env = Environment()
    seen = []

    def child(env):
        yield env.timeout(1)
        return "done"

    def parent(env, child_proc):
        yield env.timeout(10)  # child completed long ago
        value = yield child_proc
        seen.append((value, env.now))

    child_proc = env.process(child(env))
    env.process(parent(env, child_proc))
    env.run()
    assert seen == [("done", 10)]


def test_event_succeed_delivers_value():
    env = Environment()
    got = []

    def waiter(env, ev):
        value = yield ev
        got.append(value)

    def trigger(env, ev):
        yield env.timeout(4)
        ev.succeed("payload")

    ev = env.event()
    env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert got == ["payload"]


def test_event_fail_raises_in_waiter():
    env = Environment()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def trigger(env, ev):
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    ev = env.event()
    env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_run_until_stops_clock():
    env = Environment()
    ticks = []

    def clock(env):
        while True:
            yield env.timeout(10)
            ticks.append(env.now)

    env.process(clock(env))
    env.run(until=35)
    assert ticks == [10, 20, 30]
    assert env.now == 35


def test_all_of_waits_for_every_event():
    env = Environment()
    done = []

    def child(env, delay):
        yield env.timeout(delay)
        return delay

    def parent(env):
        procs = [env.process(child(env, d)) for d in (5, 1, 3)]
        values = yield env.all_of(procs)
        done.append((sorted(values), env.now))

    env.process(parent(env))
    env.run()
    assert done == [([1, 3, 5], 5)]


def test_yielding_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_resource_limits_concurrency():
    env = Environment()
    active = {"now": 0, "max": 0}
    finished = []

    def worker(env, res):
        yield from _use(env, res, active)
        finished.append(env.now)

    res = Resource(env, capacity=2)
    for _ in range(4):
        env.process(worker(env, res))
    env.run()
    assert active["max"] == 2
    # Two workers run [0,10), two more [10,20).
    assert finished == [10, 10, 20, 20]


def _use(env, res, active):
    grant = res.request()
    yield grant
    active["now"] += 1
    active["max"] = max(active["max"], active["now"])
    try:
        yield env.timeout(10)
    finally:
        active["now"] -= 1
        res.release(grant)


def test_resource_use_helper():
    env = Environment()
    times = []

    def worker(env, res):
        yield from res.use(env, 5)
        times.append(env.now)

    res = Resource(env, capacity=1)
    env.process(worker(env, res))
    env.process(worker(env, res))
    env.run()
    assert times == [5, 10]


def test_resource_release_requires_grant():
    env = Environment()
    res = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        res.release(env.event())


def test_resource_fifo_order():
    env = Environment()
    order = []

    def worker(env, res, name):
        grant = res.request()
        yield grant
        order.append(name)
        yield env.timeout(1)
        res.release(grant)

    res = Resource(env, capacity=1)
    for name in ("a", "b", "c"):
        env.process(worker(env, res, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_resource_busy_time_and_utilization():
    env = Environment()
    res = Resource(env, capacity=2)

    def worker(env):
        yield from res.use(env, 10)

    for _ in range(3):
        env.process(worker(env))
    env.run()
    # Two run [0,10), one runs [10,20): 30 units of busy time over 20 time
    # units at capacity 2 -> utilization 0.75.
    assert res.busy_time == 30
    assert res.utilization(20) == pytest.approx(0.75)
    with pytest.raises(ConfigurationError):
        res.utilization(0)
