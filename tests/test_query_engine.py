"""Tests for the query layer (plan selection + index maintenance)."""

import random

import pytest

from repro.core import LblOrtoa
from repro.errors import ConfigurationError
from repro.relational import IntColumn, ObliviousTable, Schema, SecondaryIndex, StrColumn
from repro.relational.query import QueryEngine
from repro.types import StoreConfig

SCHEMA = Schema(
    [
        StrColumn("user_id", 8),
        StrColumn("city", 8),
        IntColumn("age", 2),
    ],
    primary_key="user_id",
)


def make_engine(with_index=True):
    table_protocol = LblOrtoa(
        StoreConfig(value_len=SCHEMA.row_len + 1, group_bits=2, point_and_permute=True),
        rng=random.Random(1),
    )
    table = ObliviousTable("users", SCHEMA, table_protocol, capacity=32)
    indexes = {}
    if with_index:
        city_col = SCHEMA.column("city")
        pk_col = SCHEMA.column("user_id")
        entry_len = 2 + 6 * (city_col.width + pk_col.width)
        index_protocol = LblOrtoa(
            StoreConfig(value_len=entry_len, group_bits=2, point_and_permute=True),
            rng=random.Random(2),
        )
        indexes["city"] = SecondaryIndex(
            "users-by-city", city_col, pk_col, index_protocol,
            num_buckets=16, postings_per_bucket=6,
        )
    engine = QueryEngine(table, indexes)
    for i, city in enumerate(["waterloo", "paris", "waterloo", "berlin"]):
        engine.insert({"user_id": f"u{i}", "city": city, "age": 20 + i})
    return engine


# --------------------------------------------------------------------- #
# Plan selection
# --------------------------------------------------------------------- #

def test_explain_picks_cheapest_plan():
    engine = make_engine()
    assert engine.explain("user_id").strategy == "primary-key"
    assert engine.explain("city").strategy == "secondary-index"
    assert engine.explain("age").strategy == "full-scan"
    assert engine.explain("city").uses_index
    assert not engine.explain("age").uses_index


def test_explain_rejects_unknown_column():
    with pytest.raises(ConfigurationError):
        make_engine().explain("nonexistent")


# --------------------------------------------------------------------- #
# Queries
# --------------------------------------------------------------------- #

def test_primary_key_query():
    engine = make_engine()
    rows = engine.where("user_id", "u1")
    assert len(rows) == 1 and rows[0]["city"] == "paris"
    assert engine.where("user_id", "ghost") == []


def test_indexed_query():
    engine = make_engine()
    rows = engine.where("city", "waterloo")
    assert sorted(r["user_id"] for r in rows) == ["u0", "u2"]
    assert engine.where("city", "atlantis") == []


def test_scan_query():
    engine = make_engine()
    rows = engine.where("age", 22)
    assert [r["user_id"] for r in rows] == ["u2"]


def test_index_and_scan_agree():
    """The indexed plan must return exactly what a full scan returns."""
    engine = make_engine()
    via_index = sorted(r["user_id"] for r in engine.where("city", "waterloo"))
    via_scan = sorted(
        r["user_id"] for r in engine.table.scan() if r["city"] == "waterloo"
    )
    assert via_index == via_scan


# --------------------------------------------------------------------- #
# Index maintenance through mutations
# --------------------------------------------------------------------- #

def test_delete_removes_postings():
    engine = make_engine()
    engine.delete("u0")
    assert sorted(r["user_id"] for r in engine.where("city", "waterloo")) == ["u2"]


def test_update_migrates_postings():
    engine = make_engine()
    engine.update("u1", city="waterloo")
    assert sorted(r["user_id"] for r in engine.where("city", "waterloo")) == [
        "u0", "u1", "u2",
    ]
    assert engine.where("city", "paris") == []


def test_update_of_unindexed_column_leaves_index_alone():
    engine = make_engine()
    engine.update("u0", age=99)
    assert sorted(r["user_id"] for r in engine.where("city", "waterloo")) == [
        "u0", "u2",
    ]


def test_engine_without_indexes_scans():
    engine = make_engine(with_index=False)
    assert engine.explain("city").strategy == "full-scan"
    rows = engine.where("city", "paris")
    assert [r["user_id"] for r in rows] == ["u1"]


def test_engine_validates_index_columns_early():
    engine = make_engine(with_index=False)
    bogus_index = object()
    with pytest.raises(ConfigurationError):
        QueryEngine(engine.table, {"not-a-column": bogus_index})  # type: ignore[dict-item]
