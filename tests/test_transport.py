"""Tests for LBL-ORTOA over real TCP sockets."""

import random
import socket
import threading

import pytest

from repro.core.lbl.server import LblServer
from repro.crypto.labels import StoredLabel
from repro.errors import ProtocolError
from repro.transport import LblTcpServer, RemoteLblOrtoa
from repro.transport.framing import MAX_FRAME_BYTES, recv_frame, send_frame
from repro.transport.server import pack_load, unpack_load
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture()
def server():
    tcp = LblTcpServer(point_and_permute=True)
    tcp.serve_in_background()
    yield tcp
    tcp.close()


@pytest.fixture()
def client(server):
    remote = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(1))
    remote.initialize({"k1": b"value-one", "k2": b"value-two"})
    yield remote
    remote.close()


# --------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------- #

def test_framing_roundtrip():
    a, b = socket.socketpair()
    try:
        send_frame(a, b"hello framing")
        assert recv_frame(b) == b"hello framing"
        send_frame(b, b"")
        assert recv_frame(a) == b""
    finally:
        a.close()
        b.close()


def test_framing_rejects_oversize():
    a, b = socket.socketpair()
    try:
        with pytest.raises(ProtocolError):
            send_frame(a, b"x" * (MAX_FRAME_BYTES + 1))
        # A peer announcing an absurd length is refused before allocation.
        a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_framing_detects_closed_connection():
    a, b = socket.socketpair()
    a.sendall(b"\x00\x00\x00\x10partial")
    a.close()
    with pytest.raises(ProtocolError):
        recv_frame(b)
    b.close()


def test_load_record_roundtrip():
    labels = [StoredLabel(b"l" * 16, 2), StoredLabel(b"m" * 16, 0)]
    encoded_key, decoded = unpack_load(pack_load(b"ek-bytes", labels))
    assert encoded_key == b"ek-bytes"
    assert decoded == labels


# --------------------------------------------------------------------- #
# End-to-end over TCP
# --------------------------------------------------------------------- #

def test_read_write_over_tcp(client):
    assert client.read("k1") == CONFIG.pad(b"value-one")
    client.write("k2", b"updated!")
    assert client.read("k2") == CONFIG.pad(b"updated!")


def test_transcripts_report_real_wire_bytes(client):
    transcript = client.access(Request.read("k1"))
    assert transcript.num_rounds == 1
    # Same shape as the in-process protocol at this configuration.
    from repro.core.lbl import LblOrtoa

    local = LblOrtoa(CONFIG, rng=random.Random(1))
    local.initialize({"k1": bytes(16)})
    local_transcript = local.access(Request.read("k1"))
    assert transcript.request_bytes == local_transcript.request_bytes
    assert transcript.response_bytes == local_transcript.response_bytes


def test_read_and_write_identical_on_the_wire(client):
    t_read = client.access(Request.read("k1"))
    t_write = client.access(Request.write("k1", CONFIG.pad(b"w")))
    assert t_read.request_bytes == t_write.request_bytes
    assert t_read.response_bytes == t_write.response_bytes


def test_server_error_propagates_as_protocol_error(server, client):
    # Desynchronize: roll the server's labels back behind the proxy.
    encoded = client.keychain.encode_key("k1")
    stale = list(server.lbl.store.get(encoded))
    client.read("k1")
    server.lbl.store.put(encoded, stale)
    with pytest.raises(ProtocolError, match="server error"):
        client.read("k1")


def test_multiple_clients_share_one_server(server):
    clients = []
    for i in range(3):
        remote = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(i))
        remote.initialize({f"tenant{i}": bytes([i]) * 16})
        clients.append(remote)
    try:
        for i, remote in enumerate(clients):
            assert remote.read(f"tenant{i}") == bytes([i]) * 16
    finally:
        for remote in clients:
            remote.close()


def test_concurrent_clients_over_tcp(server):
    errors: list[Exception] = []

    def worker(worker_id: int) -> None:
        try:
            remote = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(worker_id))
            remote.initialize({f"w{worker_id}-k": bytes(16)})
            for round_no in range(8):
                remote.write(f"w{worker_id}-k", bytes([round_no]) * 16)
                assert remote.read(f"w{worker_id}-k") == bytes([round_no]) * 16
            remote.close()
        except Exception as exc:  # noqa: BLE001 - collected for assertion
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


def test_unknown_frame_tag_rejected(server):
    sock = socket.create_connection(server.address, timeout=5)
    try:
        send_frame(sock, b"\xeejunk")
        reply = recv_frame(sock)
        assert reply[0] == 0x7F  # error frame
    finally:
        sock.close()


def test_server_requires_load_before_access(server):
    remote = RemoteLblOrtoa(CONFIG, server.address, rng=random.Random(9))
    remote.proxy._counters["ghost"] = 0  # skip initialize on purpose
    try:
        with pytest.raises(ProtocolError, match="server error"):
            remote.read("ghost")
    finally:
        remote.close()


def test_direct_dispatch_matches_in_process_server():
    """The TCP dispatch layer adds nothing semantic over LblServer."""
    tcp = LblTcpServer(point_and_permute=False)
    direct = LblServer(point_and_permute=False)
    from repro.core.lbl import LblOrtoa

    config = StoreConfig(value_len=8)
    protocol = LblOrtoa(config, rng=random.Random(4))
    records = protocol.proxy.initial_records({"k": b"v"})
    for encoded_key, labels in records:
        tcp.dispatch(pack_load(encoded_key, list(labels)))
        direct.load(encoded_key, list(labels))
    request, _ = protocol.proxy.prepare(Request.read("k"))
    from repro.core.messages import LblAccessResponse

    via_tcp = LblAccessResponse.from_bytes(tcp.dispatch(request.to_bytes()))
    tcp.server_close()
    # Both servers opened the same entry (deterministic: same labels).
    direct_response, _ = direct.process(request)
    assert via_tcp.opened_labels == direct_response.opened_labels


# --------------------------------------------------------------------- #
# Batched accesses over one physical round trip
# --------------------------------------------------------------------- #

def test_batch_over_tcp(client):
    transcripts = client.access_batch(
        [
            Request.read("k1"),
            Request.write("k2", CONFIG.pad(b"batched")),
            Request.read("k2"),
        ]
    )
    assert len(transcripts) == 3
    assert transcripts[0].response.value == CONFIG.pad(b"value-one")
    assert transcripts[2].response.value == CONFIG.pad(b"batched")
    assert client.read("k2") == CONFIG.pad(b"batched")


def test_batch_over_tcp_with_repeated_key(client):
    transcripts = client.access_batch(
        [
            Request.write("k1", CONFIG.pad(b"first")),
            Request.read("k1"),
            Request.write("k1", CONFIG.pad(b"second")),
        ]
    )
    assert transcripts[1].response.value == CONFIG.pad(b"first")
    assert client.read("k1") == CONFIG.pad(b"second")


def test_empty_batch_rejected_client_side(client):
    with pytest.raises(ProtocolError):
        client.access_batch([])


def test_batch_wire_messages_roundtrip():
    from repro.core.messages import (
        LblAccessRequest,
        LblAccessResponse,
        LblBatchRequest,
        LblBatchResponse,
    )

    batch = LblBatchRequest(
        (
            LblAccessRequest(b"k1", ((b"a", b"b"),)),
            LblAccessRequest(b"k2", ((b"c", b"d"), (b"e", b"f"))),
        )
    )
    assert LblBatchRequest.from_bytes(batch.to_bytes()) == batch
    resp = LblBatchResponse(
        (LblAccessResponse((b"l1",)), LblAccessResponse((b"l2", b"l3")))
    )
    assert LblBatchResponse.from_bytes(resp.to_bytes()) == resp
    with pytest.raises(ProtocolError):
        LblBatchRequest(()).to_bytes()
