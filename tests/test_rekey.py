"""Tests for LBL master-key rotation."""

import random

import pytest

from repro.core.lbl import LblOrtoa
from repro.core.lbl.rekey import rekey
from repro.crypto.keys import KeyChain
from repro.crypto.labels import StoredLabel
from repro.errors import ConfigurationError, TamperDetectedError
from repro.types import StoreConfig

CONFIG = StoreConfig(value_len=8, group_bits=2, point_and_permute=True)


def make():
    protocol = LblOrtoa(CONFIG, keychain=KeyChain(b"old-master-key-0123456789abcdef!"),
                        rng=random.Random(1))
    protocol.initialize({f"k{i}": bytes([i]) * 8 for i in range(5)})
    return protocol


def test_rekey_preserves_all_values():
    old = make()
    old.write("k2", b"modified")
    new = rekey(old, rng=random.Random(2))
    for i in range(5):
        expected = CONFIG.pad(b"modified") if i == 2 else bytes([i]) * 8
        assert new.read(f"k{i}") == expected


def test_rekey_changes_every_server_encoding():
    old = make()
    new = rekey(old, rng=random.Random(2))
    old_keys = set(old.server.store)
    new_keys = set(new.server.store)
    assert old_keys.isdisjoint(new_keys)


def test_rekey_resets_counters():
    old = make()
    for _ in range(3):
        old.read("k0")
    new = rekey(old, rng=random.Random(2))
    assert new.proxy.counter("k0") == 0


def test_rekey_with_explicit_keychain():
    old = make()
    target = KeyChain(b"new-master-key-0123456789abcdef!")
    new = rekey(old, new_keychain=target, rng=random.Random(2))
    assert new.keychain is target
    assert new.read("k0") == bytes([0]) * 8


def test_rekey_rejects_same_keychain():
    old = make()
    with pytest.raises(ConfigurationError):
        rekey(old, new_keychain=KeyChain(b"old-master-key-0123456789abcdef!"))


def test_rekey_is_an_integrity_audit():
    """Tampered server state must abort the rotation loudly."""
    old = make()
    encoded = old.keychain.encode_key("k3")
    labels = old.server.store.get(encoded)
    labels[0] = StoredLabel(bytes(len(labels[0].label)), labels[0].decrypt_index)
    with pytest.raises((TamperDetectedError, Exception)):
        rekey(old, rng=random.Random(2))


def test_new_deployment_fully_functional():
    old = make()
    new = rekey(old, rng=random.Random(2))
    new.write("k4", b"after-rk")
    assert new.read("k4") == CONFIG.pad(b"after-rk")
    # And the old deployment still works until cut-over.
    assert old.read("k4") == bytes([4]) * 8
