"""The live telemetry path: ``--metrics-port`` scrape endpoint + ``repro top``.

The acceptance check from ISSUE 4: an HTTP GET against a server started
with ``metrics_port=`` returns Prometheus-parseable text that includes the
round-trip p99 from the log-bucket histogram (the client and the
in-process server share the global registry, which is exactly how a
single-box deployment exposes end-to-end latency at the shard).
"""

import random
import urllib.request

import pytest

from repro import obs
from repro.core.sharded import ShardedLblDeployment
from repro.obs.export import parse_prometheus_text
from repro.obs.top import CLEAR, render_top, run_top, scrape, target_row
from repro.transport.server import LblTcpServer
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture()
def metrics_server():
    server = LblTcpServer(point_and_permute=True, metrics_port=0)
    server.serve_in_background()
    yield server
    server.close()


def _metrics_url(server: LblTcpServer) -> str:
    host, port = server.metrics_address
    return f"http://{host}:{port}/metrics"


def _run_workload(server: LblTcpServer, num_keys: int = 8) -> None:
    deployment = ShardedLblDeployment(
        CONFIG, [server.address], rng=random.Random(0), pipeline_depth=4
    )
    try:
        deployment.initialize({f"k{i}": b"v" for i in range(num_keys)})
        obs.enable()
        deployment.access_pipelined(
            [Request.read(f"k{i}") for i in range(num_keys)]
        )
    finally:
        deployment.close()


def test_scrape_endpoint_serves_roundtrip_p99(metrics_server):
    _run_workload(metrics_server)
    with urllib.request.urlopen(_metrics_url(metrics_server), timeout=5) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode("utf-8")
    samples = parse_prometheus_text(text)  # raises on malformed exposition
    roundtrip = {
        labels["quantile"]: value
        for labels, value in samples["repro_transport_pipeline_roundtrip_seconds"]
    }
    assert roundtrip["0.99"] > 0.0
    assert roundtrip["0.5"] <= roundtrip["0.99"]
    (_labels, count), = samples["repro_transport_pipeline_roundtrip_seconds_count"]
    assert count >= 8
    (_labels2, dispatched), = samples["repro_transport_requests_dispatched_total"]
    assert dispatched >= 8
    (_labels3, service_p99), = [
        s
        for s in samples["repro_transport_server_service_seconds"]
        if s[0] == {"quantile": "0.99"}
    ]
    assert service_p99 > 0.0


def test_scrape_helper_and_target_row(metrics_server):
    _run_workload(metrics_server)
    url = _metrics_url(metrics_server)
    first = scrape(url)
    assert first  # reachable
    _run_workload(metrics_server)
    second = scrape(url)
    row = target_row("shard-0", second, first, interval_s=1.0)
    assert row["up"] is True
    assert row["ops_per_s"] is not None and row["ops_per_s"] > 0
    assert row["p99_ms"] is not None and row["p99_ms"] > 0
    assert row["requests"] >= 16


def test_scrape_returns_empty_for_unreachable_target():
    assert scrape("http://127.0.0.1:1/metrics", timeout=0.2) == {}


def test_render_top_marks_down_targets():
    up = target_row("a:1", {"repro_transport_requests_dispatched_total": [({}, 5.0)]}, None, 1.0)
    down = target_row("b:2", {}, None, 1.0)
    frame = render_top([up, down], refreshed_at="12:00:00")
    lines = frame.splitlines()
    assert "2 target(s)" in lines[0]
    assert any("a:1" in line and "5" in line for line in lines)
    assert any("b:2" in line and "DOWN" in line for line in lines)


def test_run_top_polls_and_writes_frames(metrics_server):
    _run_workload(metrics_server)
    frames = []
    code = run_top(
        [f"{metrics_server.metrics_address[0]}:{metrics_server.metrics_address[1]}"],
        interval_s=0.01,
        iterations=2,
        clear=False,
        write=frames.append,
    )
    assert code == 0
    assert len(frames) == 2
    assert CLEAR not in frames[0]  # clear=False keeps frames log-friendly
    assert "RT p99" in frames[0]
    # The second frame has a previous scrape to diff, so OPS/S is numeric.
    assert "DOWN" not in frames[1]
