"""Executable versions of §1.1's impossibility arguments: each naive
one-round design fails in exactly the way the paper says."""

import pytest

from repro.core.naive import LeakyOneRound, LossyReadModifyWrite
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=16)


def make(cls):
    protocol = cls(CONFIG)
    protocol.initialize({"k": b"precious-data"})
    return protocol


# --------------------------------------------------------------------- #
# Strawman 1: one round, but the type leaks
# --------------------------------------------------------------------- #

def test_leaky_variant_is_functionally_fine():
    p = make(LeakyOneRound)
    assert p.read("k") == CONFIG.pad(b"precious-data")
    p.write("k", b"updated")
    assert p.read("k") == CONFIG.pad(b"updated")


def test_leaky_variant_reveals_type_via_messages():
    p = make(LeakyOneRound)
    p.read("k")
    p.write("k", b"x")
    p.read("k")
    assert p.server_observations == ["READ", "WRITE", "READ"]


def test_leaky_variant_reveals_type_via_message_sizes():
    """Even without tags, read and write requests differ in size."""
    p = make(LeakyOneRound)
    t_read = p.access(Request.read("k"))
    t_write = p.access(Request.write("k", CONFIG.pad(b"x")))
    assert t_read.request_bytes != t_write.request_bytes


def test_leaky_variant_reveals_type_via_server_state():
    """Reads never touch stored state — the put-counter tells all."""
    p = make(LeakyOneRound)
    before = p.store.put_count
    p.read("k")
    assert p.store.put_count == before  # unchanged: it was a read
    p.write("k", b"x")
    assert p.store.put_count == before + 1  # changed: it was a write


# --------------------------------------------------------------------- #
# Strawman 2: type-hiding, but data-destroying
# --------------------------------------------------------------------- #

def test_lossy_variant_hides_the_type():
    """Credit where due: the blind-swap server genuinely can't tell."""
    p_read, p_write = make(LossyReadModifyWrite), make(LossyReadModifyWrite)
    t_read = p_read.access(Request.read("k"))
    t_write = p_write.access(Request.write("k", CONFIG.pad(b"x")))
    assert t_read.request_bytes == t_write.request_bytes
    assert t_read.ops_at("server").kv_ops == t_write.ops_at("server").kv_ops


def test_lossy_variant_first_read_works():
    p = make(LossyReadModifyWrite)
    assert p.read("k") == CONFIG.pad(b"precious-data")


def test_lossy_variant_destroys_data_on_read():
    """§1.1 verbatim: 'any subsequent reads after the first read operation
    will fetch a dummy value, permanently losing an application's data!'"""
    p = make(LossyReadModifyWrite)
    first = p.read("k")
    second = p.read("k")
    assert first == CONFIG.pad(b"precious-data")
    assert second != CONFIG.pad(b"precious-data")  # a random dummy


def test_lossy_variant_write_then_read_then_read_still_loses():
    p = make(LossyReadModifyWrite)
    p.write("k", b"fresh")
    assert p.read("k") == CONFIG.pad(b"fresh")   # consumes the value
    assert p.read("k") != CONFIG.pad(b"fresh")   # gone


@pytest.mark.parametrize("cls", [LeakyOneRound, LossyReadModifyWrite])
def test_both_strawmen_are_single_round(cls):
    p = make(cls)
    assert p.access(Request.read("k")).num_rounds == 1
