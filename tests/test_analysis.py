"""Tests for metrics aggregation, the dollar-cost model, and Figure 6."""

import pytest

from repro.analysis import (
    estimate_lbl_cost,
    optimal_y,
    overhead_factors,
    summarize,
)
from repro.analysis.costmodel import LblCostModel
from repro.analysis.overhead import measured_factors
from repro.errors import ConfigurationError
from repro.types import LatencySample, Operation


def sample(latency, op=Operation.READ, compute=0.0, overhead=0.0):
    return LatencySample(op, 0.0, latency, compute, overhead)


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #

def test_summarize_basic():
    samples = [sample(10.0), sample(20.0), sample(30.0, op=Operation.WRITE)]
    m = summarize(samples, duration_ms=1000.0)
    assert m.num_requests == 3
    assert m.throughput_ops_per_s == 3.0
    assert m.avg_latency_ms == pytest.approx(20.0)
    assert m.p50_latency_ms == pytest.approx(20.0)
    assert m.read_fraction == pytest.approx(2 / 3)


def test_summarize_breakdown():
    samples = [sample(30.0, compute=4.0, overhead=5.0)] * 4
    m = summarize(samples, duration_ms=100.0)
    assert m.avg_compute_ms == pytest.approx(4.0)
    assert m.avg_comm_overhead_ms == pytest.approx(5.0)
    assert m.avg_base_comm_ms == pytest.approx(21.0)


def test_summarize_percentiles_ordered():
    samples = [sample(float(i)) for i in range(1, 101)]
    m = summarize(samples, duration_ms=1.0)
    assert m.p50_latency_ms <= m.p95_latency_ms <= m.p99_latency_ms


def test_summarize_rejects_empty_and_bad_duration():
    with pytest.raises(ConfigurationError):
        summarize([], 10.0)
    with pytest.raises(ConfigurationError):
        summarize([sample(1.0)], 0.0)


# --------------------------------------------------------------------- #
# Dollar cost (§6.3.3)
# --------------------------------------------------------------------- #

def test_cost_paper_configuration():
    """r=128, t=1280, E_len=128, 1M objects: per-request cost must land in
    the paper's order of magnitude (~$2e-5)."""
    est = estimate_lbl_cost()
    assert 1e-6 < est.per_request < 1e-4
    assert est.storage_gb > 0
    assert est.network_per_million_accesses > est.compute_per_million_accesses


def test_cost_scales_linearly_with_value_bits():
    small = estimate_lbl_cost(value_bits=640)
    large = estimate_lbl_cost(value_bits=1280)
    assert large.network_gb_per_million_accesses == pytest.approx(
        2 * small.network_gb_per_million_accesses, rel=0.01
    )


def test_cost_storage_halves_with_y2():
    y1 = estimate_lbl_cost(group_bits=1)
    y2 = estimate_lbl_cost(group_bits=2)
    assert y2.storage_gb == pytest.approx(y1.storage_gb / 2, rel=0.01)
    # ...while the request — Figure 6's communication term, the 2^y·t/y
    # ciphertext tables — stays byte-identical.  The wire-accurate model
    # also counts the response (one opened label per group), which *halves*
    # with y=2, so total network can only improve.
    m1 = LblCostModel(value_len=160, group_bits=1, point_and_permute=True)
    m2 = LblCostModel(value_len=160, group_bits=2, point_and_permute=True)
    assert m2.request_bytes == m1.request_bytes
    assert m2.response_bytes == pytest.approx(m1.response_bytes / 2, abs=1)
    assert y2.network_gb_per_million_accesses < y1.network_gb_per_million_accesses


def test_cost_validation():
    with pytest.raises(ConfigurationError):
        estimate_lbl_cost(num_objects=0)
    with pytest.raises(ConfigurationError):
        estimate_lbl_cost(group_bits=0)


# --------------------------------------------------------------------- #
# Figure 6: overhead factors
# --------------------------------------------------------------------- #

def test_optimal_y_is_2():
    assert optimal_y() == 2


def test_factor_shapes_match_paper():
    factors = {f.y: f for f in overhead_factors(5)}
    # storage decreases monotonically
    assert factors[1].storage_factor > factors[2].storage_factor > factors[3].storage_factor
    # communication flat from y=1 to y=2, then increasing
    assert factors[1].communication_factor == factors[2].communication_factor == 2.0
    assert factors[3].communication_factor > 2.0
    # total dips at 2 and rises after
    assert factors[2].total < factors[1].total
    assert factors[3].total > factors[2].total


@pytest.mark.parametrize("y", [1, 2, 4])
def test_measured_factors_agree_with_analytic(y):
    analytic = {f.y: f for f in overhead_factors(4)}[y]
    measured = measured_factors(y, value_len=16)
    assert measured.storage_factor == pytest.approx(analytic.storage_factor, rel=0.01)
    assert measured.communication_factor == pytest.approx(
        analytic.communication_factor, rel=0.01
    )
