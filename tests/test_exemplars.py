"""Tail exemplars: the exact p999 request survives with its evidence.

Acceptance criterion: a forced-slow request yields a retained exemplar
whose span tree renders with no orphan spans — proven here against a real
sharded deployment with an artificially delayed shard, plus unit coverage
of the retention policy (threshold, per-window top-K, displacement,
bounded capacity).
"""

import random

import pytest

from repro import obs
from repro.obs.clock import FakeClock, use_clock
from repro.obs.exemplars import EXEMPLARS, TailExemplarStore, render_exemplar
from repro.obs.propagate import orphan_spans
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(120)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# --------------------------------------------------------------------- #
# Retention policy
# --------------------------------------------------------------------- #


def test_above_threshold_always_retained():
    store = TailExemplarStore(threshold_s=0.050, top_k=1)
    assert store.consider(0.051, trace_id=1)
    assert store.consider(0.300, trace_id=2)
    assert len(store) == 2


def test_window_top_k_retained_even_when_fast():
    store = TailExemplarStore(threshold_s=0.050, top_k=2, window_s=10.0)
    with use_clock(FakeClock(start=0.0)):
        assert store.consider(0.001, trace_id=1)  # window has < K entries
        assert store.consider(0.002, trace_id=2)
        assert not store.consider(0.0005, trace_id=3)  # slower than both
    assert [r["trace_id"] for r in store.exemplars()] == [1, 2]


def test_displacement_evicts_the_displaced_record():
    store = TailExemplarStore(threshold_s=0.050, top_k=1, window_s=10.0)
    with use_clock(FakeClock(start=0.0)):
        assert store.consider(0.001, trace_id=1)
        assert store.consider(0.010, trace_id=2)  # displaces trace 1
    retained = [r["trace_id"] for r in store.exemplars()]
    assert retained == [2], "the displaced window winner leaves the store"


def test_window_roll_resets_top_k():
    store = TailExemplarStore(threshold_s=0.050, top_k=1, window_s=1.0)
    clock = FakeClock(start=0.0)
    with use_clock(clock):
        assert store.consider(0.010, trace_id=1)
        assert not store.consider(0.001, trace_id=2)
        clock.advance(1.5)  # new window: top-K slots open again
        assert store.consider(0.001, trace_id=3)
    assert [r["trace_id"] for r in store.exemplars()] == [1, 3]


def test_capacity_bounds_retained_exemplars():
    store = TailExemplarStore(threshold_s=0.0, capacity=4)
    for i in range(20):
        store.consider(1.0 + i, trace_id=i)
    assert len(store) == 4
    assert [r["trace_id"] for r in store.exemplars()] == [16, 17, 18, 19]


def test_export_resolves_span_trees_lazily():
    store = TailExemplarStore(threshold_s=0.0)
    store.consider(1.0, trace_id=77, ledger_row={"label": "x"})
    spans = [
        {"name": "root", "span_id": 1, "trace_id": 77, "parent_id": None,
         "start": 0.0, "end": 1.0, "duration": 1.0, "attributes": {}},
        {"name": "other-trace", "span_id": 2, "trace_id": 99, "parent_id": None,
         "start": 0.0, "end": 1.0, "duration": 1.0, "attributes": {}},
    ]
    bundle = store.export(spans)
    (record,) = bundle["exemplars"]
    assert [s["name"] for s in record["spans"]] == ["root"]
    assert record["ledger"] == {"label": "x"}


def test_slowest_returns_the_max():
    store = TailExemplarStore(threshold_s=0.0)
    store.consider(0.2, trace_id=1)
    store.consider(0.9, trace_id=2)
    store.consider(0.5, trace_id=3)
    assert store.slowest()["trace_id"] == 2


def test_render_exemplar_indents_children():
    record = {
        "label": "access",
        "duration_s": 0.123,
        "trace_id": 5,
        "ledger": None,
        "spans": [
            {"name": "parent", "span_id": 1, "trace_id": 5, "parent_id": None,
             "start": 0.0, "duration": 0.1, "attributes": {}},
            {"name": "child", "span_id": 2, "trace_id": 5, "parent_id": 1,
             "start": 0.01, "duration": 0.05, "attributes": {}},
        ],
    }
    text = render_exemplar(record)
    lines = text.splitlines()
    assert "123.00 ms" in lines[0]
    parent_line = next(l for l in lines if "parent" in l)
    child_line = next(l for l in lines if "child" in l)
    assert len(child_line) - len(child_line.lstrip()) > len(parent_line) - len(
        parent_line.lstrip()
    )


# --------------------------------------------------------------------- #
# Acceptance: a forced-slow request leaves a renderable exemplar
# --------------------------------------------------------------------- #


def test_forced_slow_request_yields_orphan_free_exemplar_tree():
    """A deployment with a deliberately slow shard retains the slow access
    as an exemplar; its resolved span tree has no orphans and contains the
    server-side request span."""
    from repro.core.sharded import ShardedLblDeployment
    from repro.transport.cluster import ShardCluster

    with ShardCluster(
        1,
        point_and_permute=True,
        in_process=True,
        response_delay_s=0.08,  # beyond the 50 ms exemplar threshold
    ) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG, cluster.addresses, rng=random.Random(0)
        )
        try:
            deployment.initialize({"slow": b"v"})
            obs.enable()
            deployment.access(Request.read("slow"))
            obs.disable()
            spans = deployment.merged_spans()
        finally:
            deployment.close()

    bundle = EXEMPLARS.export(spans)
    records = [
        r for r in bundle["exemplars"] if r["duration_s"] >= bundle["threshold_s"]
    ]
    assert records, "the forced-slow access must be retained above threshold"
    record = records[0]
    assert orphan_spans(record["spans"]) == []
    names = {s["name"] for s in record["spans"]}
    assert "sharded.access" in names
    assert "transport.server.request" in names
    # The ledger row travelled with the exemplar (ambient row not tracked
    # here, so it may be None for plain access(); rendering must cope).
    text = render_exemplar(record)
    assert "sharded.access" in text
    assert "(no spans resolved" not in text


def test_pipelined_exemplars_carry_ledger_rows():
    """The pipelined drain path snapshots each request's ledger row into
    its exemplar (wire bytes fully credited at capture time)."""
    from repro.core.sharded import ShardedLblDeployment
    from repro.transport.cluster import ShardCluster

    with ShardCluster(1, point_and_permute=True, in_process=True) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG, cluster.addresses, rng=random.Random(0), pipeline_depth=4
        )
        try:
            deployment.initialize({f"k-{i}": b"v" for i in range(6)})
            obs.enable()
            deployment.access_pipelined(
                [Request.read(f"k-{i}") for i in range(6)]
            )
            obs.disable()
        finally:
            deployment.close()

    records = EXEMPLARS.exemplars()
    assert records, "top-K retention must capture something every window"
    for record in records:
        assert record["label"] == "pipelined"
        ledger = record["ledger"]
        assert ledger is not None
        assert ledger["label"].startswith("pipelined:")
        assert sum(ledger["wire"].values()) > 0
