"""Meta-test: every public item in the library carries a docstring.

"Doc comments on every public item" is a deliverable, so it is enforced,
not hoped for: this test imports every module under ``repro`` and walks its
public classes, functions, and methods.
"""

import importlib
import inspect
import pkgutil

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _owned_by(obj, module) -> bool:
    return getattr(obj, "__module__", None) == module.__name__


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _iter_modules() if not inspect.getdoc(m)]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in _iter_modules():
        for name, obj in vars(module).items():
            if not _is_public(name):
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if _owned_by(obj, module) and not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without docstrings: {missing}"


def test_every_public_method_has_a_docstring():
    missing = []
    for module in _iter_modules():
        for class_name, cls in vars(module).items():
            if not _is_public(class_name) or not inspect.isclass(cls):
                continue
            if not _owned_by(cls, module):
                continue
            for method_name, method in vars(cls).items():
                if not _is_public(method_name):
                    continue
                target = None
                if inspect.isfunction(method):
                    target = method
                elif isinstance(method, (staticmethod, classmethod)):
                    target = method.__func__
                elif isinstance(method, property):
                    target = method.fget
                if target is not None and not inspect.getdoc(target):
                    missing.append(f"{module.__name__}.{class_name}.{method_name}")
    assert not missing, f"public methods without docstrings: {missing}"
