"""Property-based tests of the simulation kernel's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Environment
from repro.sim.resources import Resource


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50)
def test_clock_is_monotone_and_reaches_max_delay(delays):
    env = Environment()
    observed = []

    def proc(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert observed == sorted(observed)
    assert env.now == max(delays)


@given(
    capacity=st.integers(min_value=1, max_value=5),
    jobs=st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=15,
    ),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(capacity, jobs):
    env = Environment()
    resource = Resource(env, capacity)
    peak = {"value": 0}
    done = []

    def worker(env, hold):
        grant = resource.request()
        yield grant
        peak["value"] = max(peak["value"], resource.in_use)
        try:
            yield env.timeout(hold)
        finally:
            resource.release(grant)
        done.append(hold)

    for hold in jobs:
        env.process(worker(env, hold))
    env.run()
    assert peak["value"] <= capacity
    assert len(done) == len(jobs)  # no job starves


@given(
    capacity=st.integers(min_value=1, max_value=4),
    hold=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    jobs=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=50)
def test_equal_jobs_finish_in_ceil_batches(capacity, hold, jobs):
    """With identical jobs, the makespan is ceil(jobs/capacity) * hold."""
    env = Environment()
    resource = Resource(env, capacity)
    finished = []

    def worker(env):
        yield from resource.use(env, hold)
        finished.append(env.now)

    for _ in range(jobs):
        env.process(worker(env))
    env.run()
    batches = -(-jobs // capacity)
    assert max(finished) == env.now
    assert abs(env.now - batches * hold) < 1e-9


@given(
    sequence=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=8)
)
@settings(max_examples=30)
def test_sequential_timeouts_accumulate(sequence):
    env = Environment()
    result = {}

    def proc(env):
        for delay in sequence:
            yield env.timeout(delay)
        result["end"] = env.now

    env.process(proc(env))
    env.run()
    assert abs(result["end"] - sum(sequence)) < 1e-9
