"""Leakage accounting tests: ORTOA leaks the access pattern (by design,
§2.3); the §8 one-round ORAM removes it."""

import random

import pytest

from repro.core.lbl import LblOrtoa
from repro.errors import ConfigurationError
from repro.oram import OneRoundOram
from repro.security.leakage import (
    analyze_observations,
    frequency_recovery_accuracy,
)
from repro.types import Request, StoreConfig
from repro.workloads.synthetic import RequestStream, WorkloadSpec

CONFIG = StoreConfig(value_len=8, group_bits=2, point_and_permute=True)


# --------------------------------------------------------------------- #
# The analyzers themselves
# --------------------------------------------------------------------- #

def test_uniform_observations_have_high_entropy():
    report = analyze_observations([f"loc{i % 8}" for i in range(800)])
    assert report.distinct_locations == 8
    assert report.normalized_entropy > 0.99
    assert report.top_location_share == pytest.approx(1 / 8)


def test_skewed_observations_have_low_entropy():
    observed = ["hot"] * 90 + ["cold1", "cold2"] * 5
    report = analyze_observations(observed)
    assert report.top_location_share == 0.9
    assert report.normalized_entropy < 0.5


def test_analyzer_rejects_empty():
    with pytest.raises(ConfigurationError):
        analyze_observations([])
    with pytest.raises(ConfigurationError):
        frequency_recovery_accuracy([1], [1, 2])


def test_frequency_recovery_bounds():
    logical = ["a"] * 80 + ["b"] * 20
    assert frequency_recovery_accuracy(logical, logical) == 1.0
    flat = ["x", "y"] * 50
    assert frequency_recovery_accuracy(logical, flat) < 0.8


# --------------------------------------------------------------------- #
# ORTOA: pattern leaks (the documented non-goal)
# --------------------------------------------------------------------- #

def _zipf_requests(keys, count, seed):
    stream = RequestStream(
        WorkloadSpec(keys=tuple(keys), value_len=8, write_fraction=0.5,
                     zipf_s=1.3, seed=seed)
    )
    return stream.take(count)


def test_ortoa_server_recovers_access_skew():
    keys = [f"k{i}" for i in range(10)]
    protocol = LblOrtoa(CONFIG, rng=random.Random(1))
    protocol.initialize({k: bytes(8) for k in keys})
    logical = []
    observed = []
    for request in _zipf_requests(keys, 300, seed=5):
        lbl_request, _ = protocol.proxy.prepare(request)
        protocol.server.process(lbl_request)
        logical.append(request.key)
        observed.append(lbl_request.encoded_key)  # what the server sees
    # Encodings hide identities but the frequency structure survives intact.
    assert frequency_recovery_accuracy(logical, observed) == pytest.approx(1.0)
    report = analyze_observations(observed)
    assert report.normalized_entropy < 0.95  # skew visible


def test_ortoa_never_reveals_plaintext_keys():
    keys = ["alice-account", "bob-account"]
    protocol = LblOrtoa(CONFIG, rng=random.Random(1))
    protocol.initialize({k: bytes(8) for k in keys})
    request, _ = protocol.proxy.prepare(Request.read("alice-account"))
    assert b"alice" not in request.encoded_key


# --------------------------------------------------------------------- #
# One-round ORAM: pattern hidden
# --------------------------------------------------------------------- #

def test_oram_decorrelates_pattern():
    """Under the same Zipf skew, the ORAM's observed *path* histogram looks
    near-uniform: frequency recovery collapses toward uniform structure."""
    oram = OneRoundOram(16, 8, rng=random.Random(3))
    oram.initialize({i: bytes(8) for i in range(16)})
    rng = random.Random(7)
    logical = []
    observed_paths = []
    for _ in range(300):
        # Zipf-ish hot block: block 0 with probability ~0.5.
        block = 0 if rng.random() < 0.5 else rng.randrange(16)
        logical.append(block)
        leaf_before = oram._position[block]
        oram.read(block)
        observed_paths.append(leaf_before)  # the path the server saw

    logical_report = analyze_observations(logical)
    observed_report = analyze_observations(observed_paths)
    # The logical stream is strongly skewed; the observed paths are not.
    assert logical_report.top_location_share > 0.4
    assert observed_report.top_location_share < 0.3
    assert observed_report.normalized_entropy > logical_report.normalized_entropy
