"""Cross-request prepare coalescing: fused windows must be transparent.

The coalescing stage changes *how many* lane dispatches serve a burst of
prepares, and nothing else.  These tests pin the transparency claims:

* protocol equivalence — a coalesced batch returns exactly the values and
  counter chains a sequential scalar-path loop over the same interleaving
  produces (hypothesis property over arbitrary key/op interleavings);
* obliviousness — inside one fused window, GET and PUT entries produce
  wire requests of identical shape, and the flush routing itself never
  depends on the op;
* attribution — fused windows still credit every PRF call, compression,
  and AEAD op to the request that caused it (the model==ledger equality is
  exercised through ``run_model_check``'s ``coalesced`` backend);
* determinism — the flush timer reads the injected clock, so timer-window
  behavior is testable without real sleeps.
"""

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lbl import LblOrtoa
from repro.core.lbl.coalesce import PrepareCoalescer
from repro.core.lbl.parallel import ParallelPrepareEngine
from repro.errors import ConfigurationError
from repro.obs.clock import FakeClock
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(300)

KEYS = tuple(f"c{i}" for i in range(4))
VALUE_LEN = 8

#: One access: (key index, is_write, written byte).
WORKLOADS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(KEYS) - 1),
        st.booleans(),
        st.integers(min_value=1, max_value=250),
    ),
    min_size=1,
    max_size=10,
)


def _store(batched: bool, **overrides) -> LblOrtoa:
    params = dict(
        value_len=VALUE_LEN, group_bits=2, point_and_permute=True
    )
    params.update(overrides)
    store = LblOrtoa(StoreConfig(**params), rng=random.Random(5), batched=batched)
    store.initialize({key: bytes([i + 1]) * VALUE_LEN for i, key in enumerate(KEYS)})
    return store


def _requests(workload):
    return [
        Request.write(KEYS[index], bytes([byte]) * VALUE_LEN)
        if is_write
        else Request.read(KEYS[index])
        for index, is_write, byte in workload
    ]


def _run_coalesced(store, requests, **engine_kwargs):
    """Prepare the whole workload through a coalescing engine, then drive
    each built request through the server and finalize — the access_batch
    order (prepare all, then process in order)."""
    engine = ParallelPrepareEngine(store.proxy, workers=0, **engine_kwargs)
    try:
        triples = engine.prepare_batch(requests)
        values = []
        for request, (built, _ops, epoch) in zip(requests, triples):
            response, _ = store.server.process(built)
            value, _ = store.proxy.finalize(request.key, response, counter=epoch)
            values.append(value)
        return values
    finally:
        engine.close()


# --------------------------------------------------------------------- #
# Equivalence
# --------------------------------------------------------------------- #


@settings(max_examples=8, deadline=None)
@given(workload=WORKLOADS)
def test_coalesced_matches_sequential_scalar(workload):
    """Fused windows return exactly what the scalar reference loop returns.

    Arbitrary interleavings of keys, ops, and written values: the scalar
    path processes each access in full before the next, the coalesced path
    fuses derivation and encryption across the window (repeated keys chain
    epochs inside one flush) — values, read-back semantics, and final
    counters must agree exactly.
    """
    requests = _requests(workload)

    scalar = _store(batched=False)
    expected = [scalar.access(request).response.value for request in requests]

    coalesced = _store(batched=True)
    actual = _run_coalesced(
        coalesced, requests, coalesce_window=0.0005, coalesce_batch=4
    )

    assert actual == expected
    assert {key: coalesced.proxy.counter(key) for key in KEYS} == {
        key: scalar.proxy.counter(key) for key in KEYS
    }


@settings(max_examples=4, deadline=None)
@given(workload=WORKLOADS)
def test_coalesced_matches_sequential_with_label_cache(workload):
    """Same property with the label cache on: warm entries skip the fused
    path (a cached epoch always wins) and must still decode identically."""
    requests = _requests(workload)

    scalar = _store(batched=False)
    expected = [scalar.access(request).response.value for request in requests]

    coalesced = _store(batched=True, label_cache_entries=-1)
    actual = _run_coalesced(
        coalesced, requests, coalesce_window=0.0005, coalesce_batch=4
    )

    assert actual == expected


def test_coalesced_procpool_end_to_end():
    """Coalescing over the shared-memory procpool: fused worker batches
    feed fused table encrypts, and every access still decodes."""
    store = _store(batched=True)
    requests = [Request.read(key) for key in KEYS] + [
        Request.write(KEYS[0], b"\x99" * VALUE_LEN),
        Request.read(KEYS[0]),
    ]
    values = _run_coalesced(
        store,
        requests,
        backend="procpool",
        coalesce_window=0.0005,
        coalesce_batch=4,
    )
    assert values[0] == bytes([1]) * VALUE_LEN
    assert values[-1] == b"\x99" * VALUE_LEN


# --------------------------------------------------------------------- #
# Concurrency: leader/follower windows
# --------------------------------------------------------------------- #


def test_concurrent_prepares_fuse_into_one_window():
    """Concurrent callers fill one window; everyone gets a decodable result."""
    store = _store(batched=True)
    engine = ParallelPrepareEngine(
        store.proxy, workers=0, coalesce_window=0.05, coalesce_batch=len(KEYS)
    )
    barrier = threading.Barrier(len(KEYS))
    values = [None] * len(KEYS)

    def go(position: int) -> None:
        barrier.wait()
        request = Request.read(KEYS[position])
        built, _ops, epoch = engine.prepare_one(request)
        response, _ = store.server.process(built)
        values[position], _ = store.proxy.finalize(
            request.key, response, counter=epoch
        )

    threads = [threading.Thread(target=go, args=(i,)) for i in range(len(KEYS))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert values == [bytes([i + 1]) * VALUE_LEN for i in range(len(KEYS))]


def test_flush_failure_propagates_to_every_caller():
    """A failed flush raises for leader and followers alike — no caller
    blocks forever on a window whose flush died."""
    store = _store(batched=True)
    coalescer = PrepareCoalescer(store.proxy, window=0.05, max_batch=2)

    def boom(entries, rows=None):
        raise RuntimeError("fused encrypt failed")

    store.proxy.prepare_window = boom
    errors = []
    barrier = threading.Barrier(2)

    def go(position: int) -> None:
        barrier.wait()
        try:
            coalescer.prepare(Request.read(KEYS[position]))
        except RuntimeError as exc:
            errors.append(str(exc))

    threads = [threading.Thread(target=go, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert errors == ["fused encrypt failed"] * 2


# --------------------------------------------------------------------- #
# Deterministic flush timer (injected clock)
# --------------------------------------------------------------------- #


def test_timer_flush_reads_injected_clock():
    """A lone prepare flushes when the *injected* clock passes the window —
    no real sleeping — proving the timer is clock-driven."""
    store = _store(batched=True)
    clock = FakeClock(start=0.0, auto_advance=30.0)  # each read jumps 30s
    coalescer = PrepareCoalescer(
        store.proxy, window=60.0, max_batch=8, clock=clock
    )
    request = Request.read(KEYS[0])
    built, _ops, epoch = coalescer.prepare(request)
    response, _ = store.server.process(built)
    value, _ = store.proxy.finalize(request.key, response, counter=epoch)
    assert value == bytes([1]) * VALUE_LEN
    assert clock.now() > 60.0  # the timer consumed fake time, not wall time


def test_frozen_clock_never_time_flushes():
    """With a frozen fake clock the window can only flush on size — the
    leader waits for its follower, not for wall time."""
    store = _store(batched=True)
    clock = FakeClock(start=0.0, auto_advance=0.0)
    coalescer = PrepareCoalescer(
        store.proxy, window=3600.0, max_batch=2, clock=clock
    )
    results = [None, None]
    barrier = threading.Barrier(2)

    def go(position: int) -> None:
        barrier.wait()
        results[position] = coalescer.prepare(Request.read(KEYS[position]))

    threads = [threading.Thread(target=go, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert all(result is not None for result in results)
    assert clock.now() == 0.0  # frozen clock: the flush was size-triggered


# --------------------------------------------------------------------- #
# Obliviousness of the fused path
# --------------------------------------------------------------------- #


def test_fused_window_get_and_put_have_identical_shape():
    """Inside one fused window, a GET and a PUT entry are shape-identical
    on the wire: same request bytes, same table counts, same entry sizes.
    The window mix leaks nothing about which entries wrote."""
    shapes = []
    for ops in (("r", "r", "r", "r"), ("r", "w", "w", "r")):
        store = _store(batched=True)
        requests = [
            Request.read(KEYS[i])
            if op == "r"
            else Request.write(KEYS[i], b"\x42" * VALUE_LEN)
            for i, op in enumerate(ops)
        ]
        engine = ParallelPrepareEngine(
            store.proxy, workers=0, coalesce_window=0.0005, coalesce_batch=4
        )
        try:
            triples = engine.prepare_batch(requests)
        finally:
            engine.close()
        shapes.append(
            [
                (
                    len(built.to_bytes()),
                    len(built.tables),
                    {len(table) for table in built.tables},
                    {
                        len(entry)
                        for table in built.tables
                        for entry in table
                    },
                )
                for built, _ops, _epoch in triples
            ]
        )
    assert shapes[0] == shapes[1]


def test_model_check_passes_on_coalesced_backend():
    """`repro plan --check`'s coalesced case: model == ledger exactly on
    the coalesced shared-memory path."""
    from repro.analysis.costmodel import run_model_check

    report = run_model_check(value_sizes=(8,), backends=("coalesced",))
    assert report["ok"], report["cases"]


# --------------------------------------------------------------------- #
# Construction validation
# --------------------------------------------------------------------- #


def test_coalescer_rejects_bad_parameters():
    store = _store(batched=True)
    with pytest.raises(ConfigurationError):
        PrepareCoalescer(store.proxy, window=-1.0)
    with pytest.raises(ConfigurationError):
        PrepareCoalescer(store.proxy, max_batch=0)
    scalar = _store(batched=False)
    with pytest.raises(ConfigurationError):
        PrepareCoalescer(scalar.proxy)
