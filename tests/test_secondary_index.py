"""Tests for the private secondary index (§8.2)."""

import random

import pytest

from repro.core import LblOrtoa, TwoRoundBaseline
from repro.errors import ConfigurationError
from repro.relational import IntColumn, StrColumn
from repro.relational.index import SecondaryIndex
from repro.types import StoreConfig


def make_index(num_buckets=32, postings=4, protocol=None):
    city = StrColumn("city", 8)
    user_id = IntColumn("user_id", 4)
    entry_len = 2 + postings * (city.width + user_id.width)
    protocol = protocol or LblOrtoa(
        StoreConfig(value_len=entry_len, group_bits=2, point_and_permute=True),
        rng=random.Random(1),
    )
    return SecondaryIndex(
        "by-city", city, user_id, protocol,
        num_buckets=num_buckets, postings_per_bucket=postings,
    )


def test_add_lookup():
    index = make_index()
    index.add("waterloo", 1)
    index.add("waterloo", 2)
    index.add("paris", 3)
    assert sorted(index.lookup("waterloo")) == [1, 2]
    assert index.lookup("paris") == [3]


def test_lookup_missing_value_is_empty():
    index = make_index()
    index.add("waterloo", 1)
    assert index.lookup("nowhere") == []


def test_add_is_idempotent():
    index = make_index()
    index.add("waterloo", 1)
    index.add("waterloo", 1)
    assert index.lookup("waterloo") == [1]


def test_remove():
    index = make_index()
    index.add("waterloo", 1)
    index.add("waterloo", 2)
    assert index.remove("waterloo", 1) is True
    assert index.lookup("waterloo") == [2]
    assert index.remove("waterloo", 99) is False


def test_collisions_are_filtered_proxy_side():
    """Force collisions with a single bucket: lookups must still be exact."""
    index = make_index(num_buckets=1, postings=8)
    index.add("city-a", 1)
    index.add("city-b", 2)
    index.add("city-a", 3)
    assert sorted(index.lookup("city-a")) == [1, 3]
    assert index.lookup("city-b") == [2]


def test_bucket_overflow_raises():
    index = make_index(num_buckets=1, postings=2)
    index.add("x", 1)
    index.add("y", 2)
    with pytest.raises(ConfigurationError, match="overflow"):
        index.add("z", 3)


def test_entry_size_validated_against_protocol():
    tiny = LblOrtoa(StoreConfig(value_len=4), rng=random.Random(1))
    with pytest.raises(ConfigurationError):
        SecondaryIndex("i", StrColumn("c", 8), IntColumn("p", 4), tiny)


def test_server_sees_neither_values_nor_pks():
    index = make_index()
    index.add("waterloo", 42)
    server_store = index.protocol.server.store
    for encoded_key in server_store:
        assert b"waterloo" not in encoded_key
        for stored in server_store.get(encoded_key):
            assert b"waterloo" not in stored.label


def test_lookup_and_update_have_identical_wire_shape():
    """The server cannot tell an index query from an index maintenance
    write: both are ordinary ORTOA accesses to a bucket."""
    from repro.types import Request

    index = make_index()
    protocol = index.protocol
    bucket_key = index._bucket_key(index._bucket_of("waterloo"))
    read_t = protocol.access(Request.read(bucket_key))
    write_t = protocol.access(
        Request.write(bucket_key, protocol.config.pad(bytes(2)))
    )
    assert read_t.request_bytes == write_t.request_bytes
    assert read_t.response_bytes == write_t.response_bytes


def test_works_over_baseline_protocol():
    protocol = TwoRoundBaseline(StoreConfig(value_len=2 + 4 * 12))
    index = make_index(protocol=protocol)
    index.add("berlin", 7)
    assert index.lookup("berlin") == [7]


def test_validation():
    with pytest.raises(ConfigurationError):
        make_index(num_buckets=0)
    with pytest.raises(ConfigurationError):
        make_index(postings=0)
