"""The numpy lane engine must be byte-identical to ``hashlib``/``hmac``.

Hypothesis drives arbitrary message lengths (empty, sub-block, exact-block,
multi-block), batch sizes (0, 1, non-powers-of-two), and key lengths
(including > one block, which HMAC pre-hashes); every digest is compared
against the stdlib reference.  Routing (calibration threshold, the
``REPRO_VECTOR_THRESHOLD`` override, ``lanes_disabled``) is covered
separately, and the batch entry points built on the engine
(``Prf.evaluate_many``, ``aead.encrypt_many``) are cross-checked with the
lanes forced on vs pinned off.

CI runs this module twice more: once under ``REPRO_NO_VECTOR=1`` (the
stdlib-fallback leg — the engine math is still checked directly, but the
routing tests assert it stays out of every batch entry point) and once
under ``REPRO_VECTOR_THRESHOLD=1`` (lane paths forced on regardless of
host calibration).
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import aead
from repro.crypto import sha256_lanes as lanes
from repro.crypto.prf import Prf

pytestmark = pytest.mark.skipif(
    not lanes.HAVE_NUMPY, reason="lane engine requires numpy"
)

# Message lengths crossing every padding regime: empty, short, one byte
# under/at/over the 55-byte single-block padding limit, exact blocks, and
# multi-block.
_EDGE_LENGTHS = (0, 1, 54, 55, 56, 63, 64, 65, 119, 120, 128, 200)


@pytest.fixture
def forced_threshold(monkeypatch):
    """Route every batch (>= 1 lane) through the engine, restoring after."""
    monkeypatch.setattr(lanes, "_threshold", 1)
    monkeypatch.setattr(lanes, "_disabled", False)


# --------------------------------------------------------------------- #
# Golden pins (FIPS 180-4 / RFC 4231 reference vectors)
# --------------------------------------------------------------------- #


def test_sha256_golden_vectors():
    digests = lanes.sha256_many([b"abc", b"", b"a" * 1_000])
    assert digests[0].hex() == (
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )
    assert digests[1].hex() == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )
    assert digests[2] == hashlib.sha256(b"a" * 1_000).digest()


def test_hmac_golden_vector_rfc4231_case1():
    [digest] = lanes.hmac_many(b"\x0b" * 20, [b"Hi There"])
    assert digest.hex() == (
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    )


# --------------------------------------------------------------------- #
# Equivalence with the stdlib, property-based
# --------------------------------------------------------------------- #


@settings(max_examples=50, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=300), min_size=0, max_size=17))
def test_sha256_many_matches_hashlib(messages):
    assert lanes.sha256_many(messages) == [
        hashlib.sha256(m).digest() for m in messages
    ]


@settings(max_examples=50, deadline=None)
@given(
    key=st.binary(min_size=1, max_size=100),
    messages=st.lists(st.binary(min_size=0, max_size=300), min_size=0, max_size=17),
    out_bytes=st.integers(min_value=1, max_value=32),
)
def test_hmac_many_matches_stdlib(key, messages, out_bytes):
    expected = [
        hmac_mod.new(key, m, hashlib.sha256).digest()[:out_bytes] for m in messages
    ]
    assert lanes.hmac_many(key, messages, out_bytes) == expected


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=9),
    length=st.integers(min_value=0, max_value=150),
)
def test_hmac_with_distinct_key_states_matches_stdlib(keys, length):
    messages = [bytes([i % 256]) * length for i in range(len(keys))]
    inner, outer = lanes.key_states_many(keys)
    expected = [
        hmac_mod.new(key, m, hashlib.sha256).digest()
        for key, m in zip(keys, messages)
    ]
    assert lanes.hmac_many_with_states(inner, outer, messages) == expected


def test_edge_lengths_single_and_batch():
    messages = [b"\xa5" * length for length in _EDGE_LENGTHS]
    assert lanes.sha256_many(messages) == [
        hashlib.sha256(m).digest() for m in messages
    ]
    # One lane at a time hits the same padding code with N=1.
    for message in messages:
        [digest] = lanes.sha256_many([message])
        assert digest == hashlib.sha256(message).digest()


def test_non_power_of_two_batch():
    messages = [i.to_bytes(2, "big") * 10 for i in range(999)]
    assert lanes.sha256_many(messages) == [
        hashlib.sha256(m).digest() for m in messages
    ]


def test_long_key_is_prehashed_like_hmac():
    key = b"k" * 200  # > one block: HMAC substitutes sha256(key)
    [digest] = lanes.hmac_many(key, [b"payload"])
    assert digest == hmac_mod.new(key, b"payload", hashlib.sha256).digest()


def test_with_state_matches_shared_key_form():
    key, messages = b"shared", [b"m1", b"m2" * 40, b""]
    states = lanes.key_state(key)
    assert lanes.hmac_many_with_state(states[0], states[1], messages) == (
        lanes.hmac_many(key, messages)
    )


def test_with_states_rejects_ragged_messages():
    inner, outer = lanes.key_states_many([b"k1", b"k2"])
    with pytest.raises(ValueError):
        lanes.hmac_many_with_states(inner, outer, [b"ab", b"abc"])


def test_out_bytes_bounds():
    with pytest.raises(ValueError):
        lanes.hmac_many(b"k", [b"m"], out_bytes=0)
    with pytest.raises(ValueError):
        lanes.hmac_many(b"k", [b"m"], out_bytes=33)


def test_empty_batches():
    assert lanes.sha256_many([]) == []
    assert lanes.hmac_many(b"k", []) == []
    inner, outer = lanes.key_states_many([b"k"])
    assert lanes.hmac_many_with_states(inner, outer, []) == []


# --------------------------------------------------------------------- #
# Routing: calibration, env override, hard-disable
# --------------------------------------------------------------------- #


def test_use_lanes_respects_disable():
    with lanes.lanes_disabled():
        assert not lanes.enabled()
        assert not lanes.use_lanes(1_000_000)


def test_lanes_disabled_restores_previous_state():
    before = lanes.enabled()
    with lanes.lanes_disabled():
        assert not lanes.enabled()
    assert lanes.enabled() == before


def test_env_threshold_overrides_calibration(monkeypatch):
    monkeypatch.setattr(lanes, "_threshold", None)
    monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "7")
    assert lanes.calibrate(force=True) == 7
    monkeypatch.setattr(lanes, "_disabled", False)
    assert lanes.use_lanes(7)
    assert not lanes.use_lanes(6)
    # Restore the host's own verdict for later tests.
    monkeypatch.delenv("REPRO_VECTOR_THRESHOLD")
    monkeypatch.setattr(lanes, "_threshold", None)


def test_zero_threshold_never_routes(monkeypatch):
    monkeypatch.setattr(lanes, "_threshold", 0)
    assert not lanes.use_lanes(1_000_000)


def test_use_lanes_rejects_empty_batch(forced_threshold):
    assert not lanes.use_lanes(0)
    assert lanes.use_lanes(1)


# --------------------------------------------------------------------- #
# The batch entry points built on the engine
# --------------------------------------------------------------------- #


def test_prf_evaluate_many_identical_forced_vs_disabled(forced_threshold):
    prf = Prf(b"\x11" * 32, out_bytes=16)
    suffixes = [(i, 0, 7) for i in range(300)]
    routed = prf.evaluate_many(("label",), suffixes)
    with lanes.lanes_disabled():
        assert prf.evaluate_many(("label",), suffixes) == routed
    assert routed[5] == prf.evaluate("label", 5, 0, 7)


def test_aead_encrypt_many_identical_forced_vs_disabled(forced_threshold):
    keys = [bytes([i]) * 16 for i in range(1, 200)]
    payloads = [bytes([i]) * 17 for i in range(1, 200)]
    nonces = [bytes([i]) * 12 for i in range(1, 200)]
    routed = aead.encrypt_many(keys, payloads, nonces=nonces)
    with lanes.lanes_disabled():
        assert aead.encrypt_many(keys, payloads, nonces=nonces) == routed
    for key, nonce, payload, cipher in zip(keys, nonces, payloads, routed):
        assert aead.decrypt(key, cipher) == payload
        assert cipher == aead.encrypt(key, payload, nonce=nonce)
