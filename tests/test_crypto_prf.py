"""Unit and property tests for the PRF wrapper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prf import Prf, _encode_component
from repro.errors import ConfigurationError

KEY = b"k" * 32


def test_deterministic():
    prf = Prf(KEY)
    assert prf.evaluate("a", 1, b"x") == prf.evaluate("a", 1, b"x")


def test_distinct_inputs_distinct_outputs():
    prf = Prf(KEY)
    outputs = {
        prf.evaluate("label", "key", i, b, ct)
        for i in range(4)
        for b in range(2)
        for ct in range(4)
    }
    assert len(outputs) == 4 * 2 * 4


def test_key_separation():
    assert Prf(b"a" * 32).evaluate("x") != Prf(b"b" * 32).evaluate("x")


def test_output_length_default_and_override():
    prf = Prf(KEY, out_bytes=16)
    assert len(prf.evaluate("x")) == 16
    assert len(prf.evaluate("x", out_bytes=100)) == 100


def test_long_output_extends_short_output():
    """Counter-mode expansion must make the short output a prefix of the long one."""
    prf = Prf(KEY)
    short = prf.evaluate("x", out_bytes=16)
    long = prf.evaluate("x", out_bytes=64)
    assert long[:16] == short


def test_component_encoding_is_injective():
    # The classic concatenation ambiguity must not collide.
    prf = Prf(KEY)
    assert prf.evaluate("ab", "c") != prf.evaluate("a", "bc")
    assert prf.evaluate(b"ab", b"c") != prf.evaluate(b"a", b"bc")
    assert prf.evaluate(1, 23) != prf.evaluate(12, 3)


def test_type_tags_distinguish_types():
    prf = Prf(KEY)
    assert prf.evaluate("1") != prf.evaluate(1)
    assert prf.evaluate(b"1") != prf.evaluate("1")


def test_short_key_rejected():
    with pytest.raises(ConfigurationError):
        Prf(b"short")


def test_negative_int_rejected():
    with pytest.raises(ConfigurationError):
        Prf(KEY).evaluate(-1)


def test_bad_output_length_rejected():
    prf = Prf(KEY)
    with pytest.raises(ConfigurationError):
        prf.evaluate("x", out_bytes=0)
    with pytest.raises(ConfigurationError):
        Prf(KEY, out_bytes=0)


def test_unsupported_component_type_rejected():
    with pytest.raises(ConfigurationError):
        Prf(KEY).evaluate(1.5)  # type: ignore[arg-type]


def test_encode_key_and_subkey_are_domain_separated():
    prf = Prf(KEY)
    assert prf.encode_key("x") != prf.evaluate("x")
    assert prf.derive_subkey("x") != prf.evaluate("x", out_bytes=32)
    assert prf.derive_subkey("a") != prf.derive_subkey("b")


@given(
    st.lists(
        st.one_of(
            st.binary(max_size=32),
            st.text(max_size=32),
            st.integers(min_value=0, max_value=2**64),
        ),
        max_size=5,
    )
)
@settings(max_examples=50)
def test_encoding_roundtrip_unique(components):
    """Encoded component streams must be parseable back unambiguously."""
    encoded = b"".join(_encode_component(c) for c in components)
    # Re-parse the stream and check we recover the same number of components.
    count = 0
    pos = 0
    while pos < len(encoded):
        assert encoded[pos:pos + 1] in (b"B", b"S", b"I")
        length = int.from_bytes(encoded[pos + 1:pos + 5], "big")
        pos += 5 + length
        count += 1
    assert pos == len(encoded)
    assert count == len(components)


@given(st.binary(min_size=16, max_size=64), st.text(max_size=20), st.text(max_size=20))
@settings(max_examples=50)
def test_prf_determinism_property(key, a, b):
    prf = Prf(key)
    assert prf.evaluate(a, b) == prf.evaluate(a, b)
    if a != b:
        assert prf.evaluate(a) != prf.evaluate(b)
