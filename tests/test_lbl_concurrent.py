"""Tests for concurrent access and batching over LBL-ORTOA."""

import random
import threading

import pytest

from repro.core.lbl import LblOrtoa
from repro.core.lbl.concurrent import ConcurrentLblProxy, access_batch
from repro.errors import ConfigurationError
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=8, group_bits=2, point_and_permute=True)


def make(pnp=True, num_keys=16):
    config = CONFIG if pnp else StoreConfig(value_len=8)
    protocol = LblOrtoa(config, rng=random.Random(1))
    protocol.initialize({f"k{i}": bytes([i]) * 8 for i in range(num_keys)})
    return protocol


# --------------------------------------------------------------------- #
# Batching
# --------------------------------------------------------------------- #

def test_batch_serves_multiple_keys_in_one_round():
    protocol = make()
    batch = access_batch(
        protocol,
        [Request.read("k0"), Request.read("k1"), Request.write("k2", bytes(8))],
    )
    assert batch.num_requests == 3
    assert batch.amortized_rounds == pytest.approx(1 / 3)
    assert batch.per_request[0].response.value == bytes([0]) * 8
    assert batch.per_request[1].response.value == bytes([1]) * 8


def test_batch_combined_bytes_are_sum_of_parts():
    protocol = make()
    batch = access_batch(protocol, [Request.read("k0"), Request.read("k1")])
    assert batch.combined.request_bytes == sum(
        t.request_bytes for t in batch.per_request
    )
    assert batch.combined.response_bytes == sum(
        t.response_bytes for t in batch.per_request
    )


def test_batch_with_repeated_key_applies_in_order():
    protocol = make()
    batch = access_batch(
        protocol,
        [
            Request.write("k0", b"11111111"),
            Request.read("k0"),
            Request.write("k0", b"22222222"),
        ],
    )
    assert batch.per_request[1].response.value == b"11111111"
    assert protocol.read("k0") == b"22222222"


def test_batch_counters_advance_once_per_request():
    protocol = make()
    access_batch(protocol, [Request.read("k0")] * 4)
    assert protocol.proxy.counter("k0") == 4


def test_empty_batch_rejected():
    with pytest.raises(ConfigurationError):
        access_batch(make(), [])


def test_state_consistent_after_batches():
    protocol = make()
    access_batch(protocol, [Request.write("k3", b"batched!"), Request.read("k4")])
    assert protocol.read("k3") == b"batched!"
    assert protocol.read("k4") == bytes([4]) * 8


# --------------------------------------------------------------------- #
# Concurrency
# --------------------------------------------------------------------- #

def run_threads(worker, count):
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_concurrent_reads_same_key_stay_consistent():
    """Label rotation under a read storm must never desynchronize counters."""
    front = ConcurrentLblProxy(make())
    errors = []

    def reader(_):
        try:
            for _ in range(20):
                assert front.read("k0") == bytes([0]) * 8
        except Exception as exc:  # noqa: BLE001 - collecting for the assert
            errors.append(exc)

    run_threads(reader, 8)
    assert not errors
    assert front.completed == 160


def test_concurrent_disjoint_writers():
    """Each thread owns one key; all writes must land."""
    front = ConcurrentLblProxy(make())

    def writer(i):
        for round_no in range(10):
            front.write(f"k{i}", bytes([round_no]) * 8)

    run_threads(writer, 8)
    for i in range(8):
        assert front.read(f"k{i}") == bytes([9]) * 8


def test_concurrent_mixed_readers_and_writers():
    front = ConcurrentLblProxy(make())
    observed = []

    def worker(i):
        rng = random.Random(i)
        for _ in range(15):
            key = f"k{rng.randrange(4)}"
            if i % 2 == 0:
                front.write(key, bytes([i]) * 8)
            else:
                observed.append(front.read(key))

    run_threads(worker, 6)
    # Every observed value is one of the legal states (initial or a write).
    legal = {bytes([i]) * 8 for i in range(16)} | {bytes([i]) * 8 for i in range(6)}
    assert all(value in legal for value in observed)


def test_concurrent_shuffled_variant_serializes_safely():
    front = ConcurrentLblProxy(make(pnp=False))

    def worker(i):
        for _ in range(10):
            front.read(f"k{i % 4}")

    run_threads(worker, 4)
    assert front.completed == 40


def test_stripe_validation():
    with pytest.raises(ConfigurationError):
        ConcurrentLblProxy(make(), num_stripes=0)
