"""``repro doctor`` attribution: contrived scenarios must name the right cause.

Acceptance criterion: doctor correctly attributes *dispatch-bound* vs
*crypto-bound* overload in two contrived scenarios.  :func:`diagnose` is a
pure function over signal vectors, so the scenarios are synthetic dicts
shaped exactly like :func:`collect_signals` output; a live end-to-end run
against a metrics-serving cluster closes the loop at the bottom.
"""

import random

import pytest

from repro import obs
from repro.obs.doctor import (
    SCORE_FLOOR,
    collect_signals,
    diagnose,
    render_doctor,
    run_doctor,
)
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(180)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _signal(**overrides) -> dict:
    """A quiet, healthy shard; overrides push it toward a bottleneck."""
    base = {
        "target": "shard-0",
        "up": True,
        "ops_per_s": 100.0,
        "shed_per_s": 0.0,
        "in_flight_occupancy": 0.1,
        "loop_lag_ms": 0.5,
        "procpool_queue_depth": 0,
        "coalesce_window_fill": 0.1,
        "prepare_p99_ms": 1.0,
        "service_p99_ms": 5.0,
        "p99_ms": 7.0,
    }
    base.update(overrides)
    return base


# --------------------------------------------------------------------- #
# Acceptance: the two contrived attribution scenarios
# --------------------------------------------------------------------- #


def test_dispatch_bound_scenario_names_dispatch():
    """A full in-flight window plus event-loop lag, with the crypto side
    idle, must be attributed to dispatch."""
    diagnosis = diagnose(
        [_signal(shed_per_s=5.0, in_flight_occupancy=0.95, loop_lag_ms=40.0)]
    )
    assert diagnosis["bottleneck"] == "dispatch"
    assert diagnosis["shedding"] is True
    assert diagnosis["scores"]["dispatch"] == 1.0
    assert diagnosis["scores"]["crypto"] < SCORE_FLOOR
    assert any("dispatch: shard-0" in r for r in diagnosis["reasons"])
    assert any("shedding" in r for r in diagnosis["reasons"])


def test_crypto_bound_scenario_names_crypto():
    """A backed-up crypto pool, full coalescing windows, and prepares that
    dwarf service time, with the dispatcher idle, must be attributed to
    crypto."""
    diagnosis = diagnose(
        [
            _signal(
                ops_per_s=40.0,
                procpool_queue_depth=12,
                coalesce_window_fill=1.0,
                prepare_p99_ms=40.0,
                service_p99_ms=2.0,
                p99_ms=45.0,
            )
        ]
    )
    assert diagnosis["bottleneck"] == "crypto"
    assert diagnosis["shedding"] is False
    assert diagnosis["scores"]["crypto"] == 1.0
    assert diagnosis["scores"]["dispatch"] < SCORE_FLOOR
    assert any("crypto: procpool queue depth 12" in r for r in diagnosis["reasons"])


# --------------------------------------------------------------------- #
# The remaining verdicts
# --------------------------------------------------------------------- #


def test_fast_but_dominant_prepares_do_not_read_as_crypto_bound():
    """An idle deployment's prepares dominate its tiny service times; that
    is a latency *share*, not saturation — prepares must also be
    absolutely slow before crypto is named."""
    diagnosis = diagnose([_signal(prepare_p99_ms=4.6, service_p99_ms=1.4)])
    assert diagnosis["bottleneck"] == "healthy"
    assert diagnosis["scores"]["crypto"] < SCORE_FLOOR


def test_slow_dominant_prepares_alone_read_as_crypto_bound():
    """Prepares both dominant and beyond the absolute threshold flag
    crypto even with nothing queued."""
    diagnosis = diagnose(
        [_signal(prepare_p99_ms=40.0, service_p99_ms=2.0, p99_ms=45.0)]
    )
    assert diagnosis["bottleneck"] == "crypto"


def test_wire_bound_scenario_names_wire():
    """Round trips dwarf busy time on both sides: the wire holds the
    latency."""
    diagnosis = diagnose(
        [_signal(prepare_p99_ms=1.0, service_p99_ms=2.0, p99_ms=50.0)]
    )
    assert diagnosis["bottleneck"] == "wire"
    assert any("time is off-CPU" in r for r in diagnosis["reasons"])


def test_quiet_deployment_is_healthy():
    diagnosis = diagnose([_signal(), _signal(target="shard-1")])
    assert diagnosis["bottleneck"] == "healthy"
    assert diagnosis["shedding"] is False
    assert diagnosis["reasons"] == ["no saturation signal crossed its threshold"]
    assert diagnosis["measured_ops_per_s"] == 200.0


def test_shedding_forces_attribution_even_below_score_floor():
    """Shedding proves overload; doctor must name the strongest cause even
    when no individual score clears the floor."""
    diagnosis = diagnose(
        [_signal(shed_per_s=2.0, in_flight_occupancy=0.3, loop_lag_ms=1.0)]
    )
    assert diagnosis["shedding"] is True
    assert diagnosis["bottleneck"] != "healthy"


def test_all_targets_down_is_unreachable():
    diagnosis = diagnose([{"target": "gone:1", "up": False}])
    assert diagnosis["bottleneck"] == "unreachable"
    assert diagnosis["reasons"] == ["no target answered its metrics scrape"]


def test_down_target_excluded_from_scores_but_listed():
    diagnosis = diagnose(
        [
            _signal(in_flight_occupancy=0.95, loop_lag_ms=40.0),
            {"target": "shard-1", "up": False},
        ]
    )
    assert diagnosis["bottleneck"] == "dispatch"
    assert len(diagnosis["targets"]) == 2
    assert "shard-1: DOWN" in render_doctor(diagnosis)


def test_predicted_capacity_comes_from_cost_model_baseline():
    """Default baseline = shard capacity x target utilization, per target."""
    from repro.analysis.costmodel import (
        DEFAULT_SHARD_OPS_PER_SEC,
        DEFAULT_TARGET_UTILIZATION,
    )

    diagnosis = diagnose([_signal(), _signal(target="shard-1")])
    expected = DEFAULT_SHARD_OPS_PER_SEC * DEFAULT_TARGET_UTILIZATION * 2
    assert diagnosis["predicted_ops_per_s"] == expected
    assert diagnosis["utilization"] == pytest.approx(200.0 / expected)


def test_render_doctor_reports_verdict_scores_and_capacity():
    diagnosis = diagnose(
        [_signal(shed_per_s=5.0, in_flight_occupancy=0.95, loop_lag_ms=40.0)],
        predicted_ops_per_shard=1000.0,
    )
    report = render_doctor(diagnosis)
    assert "verdict: DISPATCH  (shedding load)" in report
    assert "crypto=" in report and "dispatch=1.00" in report
    assert "100.0 ops/s measured vs 1000.0 ops/s predicted" in report
    assert "10% of predicted capacity" in report


# --------------------------------------------------------------------- #
# End to end: scrape a live metrics-serving cluster
# --------------------------------------------------------------------- #


def test_run_doctor_against_live_cluster_exits_healthy():
    """A lightly-loaded in-process cluster scrapes clean: verdict healthy,
    exit code 0, and the report carries real throughput numbers."""
    from repro.core.sharded import ShardedLblDeployment
    from repro.transport.cluster import ShardCluster

    with ShardCluster(
        2, point_and_permute=True, in_process=True, metrics=True
    ) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG, cluster.addresses, rng=random.Random(0)
        )
        try:
            deployment.initialize({f"d-{i}": b"v" for i in range(8)})
            obs.enable()
            for i in range(8):
                deployment.access(Request.read(f"d-{i}"))
            lines: list[str] = []
            targets = [
                f"{host}:{port}" for host, port in cluster.metrics_addresses
            ]
            code = run_doctor(targets, interval_s=0.2, write=lines.append)
            obs.disable()
        finally:
            deployment.close()
    assert code == 0
    report = "\n".join(lines)
    assert "verdict: HEALTHY" in report
    assert "2 target(s)" in report


def test_collect_signals_marks_unreachable_target_down():
    signals = collect_signals(["127.0.0.1:1"], interval_s=0.05)
    (signal,) = signals
    assert signal["up"] is False
    assert diagnose(signals)["bottleneck"] == "unreachable"


def test_run_doctor_json_mode_emits_machine_readable_diagnosis():
    import json

    lines: list[str] = []
    code = run_doctor(["127.0.0.1:1"], interval_s=0.05, write=lines.append,
                      json_mode=True)
    assert code == 1
    payload = json.loads("\n".join(lines))
    assert payload["bottleneck"] == "unreachable"
    assert set(payload["scores"]) == {"dispatch", "crypto", "server", "wire"}
