"""Tests for the WAN network model (Table 2 RTTs, bandwidth overhead)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.network import (
    DATACENTER_RTT_MS,
    DEFAULT_BANDWIDTH_MBPS,
    NetworkLink,
)


def test_table2_values_match_paper():
    assert DATACENTER_RTT_MS == {
        "oregon": 21.84,
        "n_virginia": 62.06,
        "london": 147.73,
        "mumbai": 230.3,
    }


def test_link_to_datacenter():
    link = NetworkLink.to_datacenter("london")
    assert link.rtt_ms == 147.73
    assert link.bandwidth_mbps == DEFAULT_BANDWIDTH_MBPS


def test_unknown_datacenter_rejected():
    with pytest.raises(ConfigurationError):
        NetworkLink.to_datacenter("antarctica")


def test_round_trip_includes_rtt_and_serialization():
    link = NetworkLink(rtt_ms=10.0, bandwidth_mbps=8.0)  # 8 Mbps = 1 byte/us
    # 1000 bytes at 8 Mbps = 1 ms each way.
    assert link.round_trip_ms(1000, 1000) == pytest.approx(10.0 + 2.0)


def test_one_way_is_half_rtt_plus_serialization():
    link = NetworkLink(rtt_ms=10.0, bandwidth_mbps=8.0)
    assert link.one_way_ms(1000) == pytest.approx(5.0 + 1.0)


def test_zero_bytes_costs_rtt_only():
    link = NetworkLink(rtt_ms=21.84)
    assert link.round_trip_ms(0, 0) == pytest.approx(21.84)


def test_overhead_is_size_dependent_part():
    link = NetworkLink(rtt_ms=10.0, bandwidth_mbps=8.0)
    assert link.overhead_ms(500, 500) == pytest.approx(1.0)
    assert link.round_trip_ms(500, 500) == pytest.approx(link.rtt_ms + link.overhead_ms(500, 500))


def test_overhead_monotonic_in_size():
    link = NetworkLink(rtt_ms=21.84)
    sizes = [0, 100, 10_000, 1_000_000]
    overheads = [link.overhead_ms(s, 0) for s in sizes]
    assert overheads == sorted(overheads)
    assert overheads[0] == 0.0


def test_validation():
    with pytest.raises(ConfigurationError):
        NetworkLink(rtt_ms=-1)
    with pytest.raises(ConfigurationError):
        NetworkLink(rtt_ms=1, bandwidth_mbps=0)
    with pytest.raises(ConfigurationError):
        NetworkLink(rtt_ms=1).serialization_ms(-5)
