"""Tests for workload traces and the deployment advisor."""

import pytest

from repro.analysis.advisor import recommend
from repro.errors import ConfigurationError
from repro.types import Operation, Request
from repro.workloads.synthetic import RequestStream, WorkloadSpec
from repro.workloads.trace import record_trace, replay_trace, trace_summary


# --------------------------------------------------------------------- #
# Traces
# --------------------------------------------------------------------- #

def test_trace_roundtrip(tmp_path):
    requests = [
        Request.read("a"),
        Request.write("b", b"\x00\xffdata"),
        Request.read("c"),
    ]
    path = tmp_path / "trace.jsonl"
    assert record_trace(requests, path) == 3
    replayed = list(replay_trace(path))
    assert replayed == requests


def test_trace_from_stream_roundtrip(tmp_path):
    spec = WorkloadSpec(keys=("k1", "k2"), value_len=8, write_fraction=0.5, seed=3)
    requests = RequestStream(spec).take(50)
    path = tmp_path / "stream.jsonl"
    record_trace(requests, path)
    assert list(replay_trace(path)) == requests


def test_trace_summary(tmp_path):
    requests = [Request.read("a")] * 6 + [Request.write("b", b"x")] * 4
    path = tmp_path / "trace.jsonl"
    record_trace(requests, path)
    summary = trace_summary(path)
    assert summary == {
        "requests": 10,
        "reads": 6,
        "writes": 4,
        "write_fraction": 0.4,
        "distinct_keys": 2,
    }


def test_trace_errors(tmp_path):
    with pytest.raises(ConfigurationError):
        list(replay_trace(tmp_path / "missing.jsonl"))
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"op": "read", "key": "a"}\n{"op": "nonsense"}\n')
    with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
        list(replay_trace(bad))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n\n")
    with pytest.raises(ConfigurationError):
        trace_summary(empty)


def test_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text('{"op": "read", "key": "a"}\n\n{"op": "read", "key": "b"}\n')
    assert [r.key for r in replay_trace(path)] == ["a", "b"]


# --------------------------------------------------------------------- #
# Advisor (§6.3.2)
# --------------------------------------------------------------------- #

def test_tee_wins_when_available_and_trusted():
    rec = recommend(value_len=160, server_rtt_ms="oregon",
                    tee_available=True, tee_trusted=True)
    assert rec.protocol == "tee"


def test_tee_unavailable_falls_through_to_rule():
    rec = recommend(value_len=160, server_rtt_ms="oregon",
                    tee_available=True, tee_trusted=False)
    assert rec.protocol in ("lbl", "baseline")


def test_small_values_near_server_pick_lbl():
    rec = recommend(value_len=50, server_rtt_ms="oregon")
    assert rec.protocol == "lbl"
    assert rec.rule_satisfied


def test_large_values_near_server_pick_baseline():
    rec = recommend(value_len=600, server_rtt_ms="oregon")
    assert rec.protocol == "baseline"
    assert not rec.rule_satisfied


def test_gdpr_distance_rescues_lbl_at_300b():
    """Figure 3d's scenario through the advisor."""
    near = recommend(value_len=300, server_rtt_ms="oregon")
    far = recommend(value_len=300, server_rtt_ms="london")
    assert far.protocol == "lbl"
    # Near the server, 300 B sits at the crossover; either answer is
    # defensible but the far case must flip decisively toward LBL.
    assert far.rtt_ms > near.rtt_ms


def test_recommendation_carries_the_numbers():
    rec = recommend(value_len=160, server_rtt_ms=100.0)
    assert rec.rtt_ms == 100.0
    assert rec.lbl_compute_ms > 0
    assert rec.lbl_overhead_ms > 0
    assert "§6.3.2" in rec.reason or "6.1" in rec.reason


def test_advisor_validation():
    with pytest.raises(ConfigurationError):
        recommend(value_len=160, server_rtt_ms="atlantis")
    with pytest.raises(ConfigurationError):
        recommend(value_len=160, server_rtt_ms=-5.0)
