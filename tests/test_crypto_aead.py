"""Unit and property tests for the authenticated encryption primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import aead
from repro.errors import ConfigurationError, DecryptionError

KEY = b"0" * 16
OTHER_KEY = b"1" * 16


def test_roundtrip():
    ct = aead.encrypt(KEY, b"hello world")
    assert aead.decrypt(KEY, ct) == b"hello world"


def test_empty_plaintext_roundtrip():
    ct = aead.encrypt(KEY, b"")
    assert aead.decrypt(KEY, ct) == b""


def test_ciphertext_length_formula():
    for n in (0, 1, 16, 160, 1000):
        assert len(aead.encrypt(KEY, b"x" * n)) == aead.ciphertext_len(n)


def test_nondeterministic_by_default():
    """Fresh random nonces: same plaintext, different ciphertexts (paper §1.1)."""
    assert aead.encrypt(KEY, b"v") != aead.encrypt(KEY, b"v")


def test_explicit_nonce_is_deterministic():
    nonce = b"n" * aead.NONCE_LEN
    assert aead.encrypt(KEY, b"v", nonce=nonce) == aead.encrypt(KEY, b"v", nonce=nonce)


def test_wrong_key_raises():
    ct = aead.encrypt(KEY, b"secret")
    with pytest.raises(DecryptionError):
        aead.decrypt(OTHER_KEY, ct)


def test_tampered_body_raises():
    ct = bytearray(aead.encrypt(KEY, b"secret"))
    ct[aead.NONCE_LEN] ^= 0x01
    with pytest.raises(DecryptionError):
        aead.decrypt(KEY, bytes(ct))


def test_tampered_tag_raises():
    ct = bytearray(aead.encrypt(KEY, b"secret"))
    ct[-1] ^= 0x01
    with pytest.raises(DecryptionError):
        aead.decrypt(KEY, bytes(ct))


def test_truncated_ciphertext_raises():
    with pytest.raises(DecryptionError):
        aead.decrypt(KEY, b"short")


def test_try_decrypt_returns_none_on_failure():
    ct = aead.encrypt(KEY, b"msg")
    assert aead.try_decrypt(OTHER_KEY, ct) is None
    assert aead.try_decrypt(KEY, ct) == b"msg"


def test_short_key_rejected():
    with pytest.raises(ConfigurationError):
        aead.encrypt(b"short", b"x")
    with pytest.raises(ConfigurationError):
        aead.decrypt(b"short", b"x" * 40)


def test_bad_nonce_length_rejected():
    with pytest.raises(ConfigurationError):
        aead.encrypt(KEY, b"x", nonce=b"too-short")


def test_lbl_server_pattern_exactly_one_opens():
    """The LBL server invariant: with two ciphertexts under different labels,
    a holder of one label opens exactly one."""
    label0, label1 = b"a" * 16, b"b" * 16
    cts = [aead.encrypt(label0, b"new0"), aead.encrypt(label1, b"new1")]
    opened = [aead.try_decrypt(label0, ct) for ct in cts]
    assert opened == [b"new0", None]


@given(st.binary(min_size=16, max_size=64), st.binary(max_size=512))
@settings(max_examples=50)
def test_roundtrip_property(key, plaintext):
    assert aead.decrypt(key, aead.encrypt(key, plaintext)) == plaintext


@given(st.binary(max_size=64), st.integers(min_value=0, max_value=200))
@settings(max_examples=50)
def test_bitflip_always_detected(plaintext, flip_at):
    ct = bytearray(aead.encrypt(KEY, plaintext))
    ct[flip_at % len(ct)] ^= 0xFF
    with pytest.raises(DecryptionError):
        aead.decrypt(KEY, bytes(ct))
