"""BENCH_history.json trajectory: recording, best-of queries, the gate."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.harness.bench import (
    BenchRecorder,
    best_value,
    check_history,
    load_history,
)


def test_record_appends_entries_sharing_one_run_id(tmp_path):
    path = tmp_path / "hist.json"
    recorder = BenchRecorder(path, run_id="run-1")
    recorder.record("kernels.speedup", 3.5, unit="x")
    recorder.record("kernels.ops", 120.0, unit="ops/s", gate=False)
    entries = load_history(path)["entries"]
    assert [e["run_id"] for e in entries] == ["run-1", "run-1"]
    assert entries[0] == {
        "run_id": "run-1",
        "metric": "kernels.speedup",
        "value": 3.5,
        "unit": "x",
        "higher_is_better": True,
        "gate": True,
    }
    # Appending from a second recorder keeps the first run's rows.
    BenchRecorder(path, run_id="run-2").record("kernels.speedup", 3.6)
    assert len(load_history(path)["entries"]) == 3


def test_load_history_missing_file_and_corruption(tmp_path):
    assert load_history(tmp_path / "absent.json") == {"entries": []}
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"rows": []}), encoding="utf-8")
    with pytest.raises(ConfigurationError):
        load_history(bad)


def test_best_value_respects_direction_and_exclusion():
    entries = [
        {"run_id": "a", "metric": "m", "value": 2.0, "higher_is_better": True},
        {"run_id": "b", "metric": "m", "value": 5.0, "higher_is_better": True},
        {"run_id": "c", "metric": "m", "value": 3.0, "higher_is_better": True},
    ]
    assert best_value(entries, "m") == 5.0
    assert best_value(entries, "m", exclude_run="b") == 3.0
    assert best_value(entries, "missing") is None
    lower = [dict(e, higher_is_better=False) for e in entries]
    assert best_value(lower, "m") == 2.0


def _history(tmp_path, runs):
    path = tmp_path / "hist.json"
    for run_id, rows in runs:
        recorder = BenchRecorder(path, run_id=run_id)
        for metric, value, kwargs in rows:
            recorder.record(metric, value, **kwargs)
    return path


def test_check_history_first_run_is_warn_only(tmp_path):
    path = _history(tmp_path, [("r1", [("speedup", 3.0, {})])])
    (result,) = check_history(path)
    assert result.regressed is False
    assert result.best is None
    assert "first recording" in result.message


def test_check_history_flags_regressions_both_directions(tmp_path):
    path = _history(
        tmp_path,
        [
            ("r1", [("speedup", 5.0, {}), ("overhead", 0.01, {"higher_is_better": False})]),
            ("r2", [("speedup", 3.0, {}), ("overhead", 0.014, {"higher_is_better": False})]),
        ],
    )
    by_metric = {r.metric: r for r in check_history(path, threshold=0.2)}
    assert by_metric["speedup"].regressed  # 3.0 < 5.0 * 0.8
    assert by_metric["overhead"].regressed  # 0.014 > 0.01 * 1.2
    # A looser threshold lets the same drop through.
    by_metric = {r.metric: r for r in check_history(path, threshold=0.5)}
    assert not by_metric["speedup"].regressed
    assert not by_metric["overhead"].regressed


def test_check_history_ignores_ungated_metrics(tmp_path):
    path = _history(
        tmp_path,
        [
            ("r1", [("ops", 1000.0, {"gate": False})]),
            ("r2", [("ops", 1.0, {"gate": False})]),  # huge drop, but ungated
        ],
    )
    assert check_history(path) == []


def test_check_history_only_gates_the_latest_run(tmp_path):
    path = _history(
        tmp_path,
        [
            ("r1", [("speedup", 5.0, {})]),
            ("r2", [("speedup", 1.0, {})]),  # an old regression...
            ("r3", [("speedup", 4.9, {})]),  # ...recovered in the latest run
        ],
    )
    (result,) = check_history(path)
    assert result.regressed is False
    assert result.best == 5.0


def test_cli_bench_check_exit_codes(tmp_path, capsys):
    path = _history(
        tmp_path,
        [("r1", [("speedup", 5.0, {})]), ("r2", [("speedup", 1.0, {})])],
    )
    assert cli_main(["bench", "check", "--history", str(path)]) == 1
    assert "REGRESSED" in capsys.readouterr().out
    assert (
        cli_main(["bench", "check", "--history", str(path), "--warn-only"]) == 0
    )
    ok_dir = tmp_path / "ok"
    ok_dir.mkdir()
    ok = _history(ok_dir, [("r1", [("speedup", 5.0, {})])])
    assert cli_main(["bench", "check", "--history", str(ok)]) == 0
    absent = tmp_path / "none.json"
    assert cli_main(["bench", "check", "--history", str(absent)]) == 0
    assert "no benchmark history" in capsys.readouterr().out
