"""Sampling profiler: local sampling, exports, and remote control frames.

The profiler is attach-only (never rides the global obs flag), so the
tests cover the explicit lifecycle: attach/detach singleton semantics,
sample correctness on a thread parked in a known function, collapsed and
Perfetto export validity, and the 0x62/0x63 control-frame round trip
against both transports.
"""

import json
import struct
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs import profiler
from repro.obs.profiler import SamplingProfiler
from repro.transport.async_client import SyncAsyncLblClient
from repro.transport.async_server import AsyncLblServer
from repro.transport.server import (
    LblTcpServer,
    OBS_PROFILE_DUMP_TAG,
    OBS_PROFILE_START_TAG,
    OBS_PROFILE_STOP_TAG,
)
from repro.transport.pipeline import PipelinedLblClient

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(autouse=True)
def _detach():
    yield
    profiler.detach()


def _park(stop: threading.Event, beacon: threading.Event) -> None:
    beacon.set()
    while not stop.is_set():
        time.sleep(0.001)


def _with_parked_thread():
    stop, beacon = threading.Event(), threading.Event()
    thread = threading.Thread(target=_park, args=(stop, beacon), daemon=True)
    thread.start()
    beacon.wait(5.0)
    return stop, thread


# --------------------------------------------------------------------- #
# Sampling mechanics
# --------------------------------------------------------------------- #


def test_sample_sees_a_parked_thread_root_first():
    stop, thread = _with_parked_thread()
    try:
        prof = SamplingProfiler(interval_s=0.001)
        prof.sample()
        collapsed = prof.collapsed()
    finally:
        stop.set()
        thread.join()
    parked = "tests.test_profiler._park"
    target = next(
        l for l in collapsed.splitlines() if parked in l.rsplit(" ", 1)[0].split(";")
    )
    stack, count = target.rsplit(" ", 1)
    assert int(count) >= 1
    frames = stack.split(";")
    # Root-first: the thread bootstrap precedes the parked function.
    assert frames.index("threading._bootstrap") < frames.index(parked)


def test_background_thread_accumulates_samples():
    stop, thread = _with_parked_thread()
    try:
        prof = SamplingProfiler(interval_s=0.002).start()
        time.sleep(0.1)
        prof.stop()
    finally:
        stop.set()
        thread.join()
    assert prof.samples >= 10
    assert prof.elapsed_seconds() >= 0.1
    assert "_park" in prof.collapsed()
    # Stop is final until restarted; counts survive.
    before = prof.samples
    time.sleep(0.02)
    assert prof.samples == before


def test_collapsed_lines_are_well_formed():
    prof = SamplingProfiler(interval_s=0.001)
    prof.sample()
    for line in prof.collapsed().splitlines():
        stack, count = line.rsplit(" ", 1)
        assert int(count) > 0
        assert all(frame for frame in stack.split(";"))


def test_perfetto_export_is_loadable_shape():
    prof = SamplingProfiler(interval_s=0.001).start()
    time.sleep(0.05)
    prof.stop()
    trace = prof.perfetto()
    assert trace["metadata"]["samples"] == prof.samples
    events = trace["traceEvents"]
    assert events, "an active process must produce at least one stack"
    for event in events:
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"]["stack"].endswith(event["name"])
    # Durations tile the attached wall time (shares of elapsed).
    total_us = sum(e["dur"] for e in events)
    assert total_us == pytest.approx(prof.elapsed_seconds() * 1e6, rel=0.05)
    json.dumps(trace)  # must be JSON-serializable as-is


def test_export_summary_fields():
    prof = SamplingProfiler(interval_s=0.005)
    prof.sample()
    export = prof.export()
    assert export["interval_s"] == 0.005
    assert export["samples"] == 1
    assert isinstance(export["collapsed"], str)


def test_interval_must_be_positive():
    with pytest.raises(ConfigurationError):
        SamplingProfiler(interval_s=0.0)


def test_reset_drops_counts():
    prof = SamplingProfiler(interval_s=0.001)
    prof.sample()
    prof.reset()
    assert prof.samples == 0
    assert prof.collapsed() == ""


# --------------------------------------------------------------------- #
# Singleton attach/detach
# --------------------------------------------------------------------- #


def test_attach_is_idempotent_and_detach_returns_export():
    first = profiler.attach(interval_s=0.002)
    second = profiler.attach()
    assert first is second
    assert profiler.attached() is first
    time.sleep(0.05)
    export = profiler.detach()
    assert export is not None and export["samples"] > 0
    assert profiler.attached() is None
    assert profiler.detach() is None  # second detach: nothing attached


# --------------------------------------------------------------------- #
# Remote attach over the 0x62/0x63 control frames
# --------------------------------------------------------------------- #


def _start_frame(interval_us: int) -> bytes:
    return bytes([OBS_PROFILE_START_TAG]) + struct.pack(">I", interval_us)


def _profile_round_trip(client) -> dict:
    reply = client.submit(_start_frame(2000)).result(30)
    assert reply[:1] == bytes([OBS_PROFILE_DUMP_TAG])
    started = json.loads(reply[1:].decode("utf-8"))
    assert started == {"running": True, "interval_s": 0.002}
    time.sleep(0.2)
    reply = client.submit(bytes([OBS_PROFILE_STOP_TAG])).result(30)
    assert reply[:1] == bytes([OBS_PROFILE_DUMP_TAG])
    stopped = json.loads(reply[1:].decode("utf-8"))
    assert stopped["running"] is False
    return stopped["profile"]


def test_profile_control_frames_over_async_transport():
    with AsyncLblServer(point_and_permute=True) as server:
        with SyncAsyncLblClient(server.address) as client:
            profile = _profile_round_trip(client)
    assert profile["samples"] > 0
    assert profile["interval_s"] == 0.002
    assert "asyncio" in profile["collapsed"] or "selectors" in profile["collapsed"]


def test_profile_control_frames_over_thread_transport():
    server = LblTcpServer(point_and_permute=True)
    server.serve_in_background()
    try:
        with PipelinedLblClient(server.address) as client:
            profile = _profile_round_trip(client)
    finally:
        server.close()
    assert profile["samples"] > 0


def test_profile_stop_without_start_reports_no_profile():
    with AsyncLblServer(point_and_permute=True) as server:
        with SyncAsyncLblClient(server.address) as client:
            reply = client.submit(bytes([OBS_PROFILE_STOP_TAG])).result(30)
    body = json.loads(reply[1:].decode("utf-8"))
    assert body == {"running": False, "profile": None}


def test_profile_start_defaults_interval_without_operand():
    with AsyncLblServer(point_and_permute=True) as server:
        with SyncAsyncLblClient(server.address) as client:
            reply = client.submit(bytes([OBS_PROFILE_START_TAG])).result(30)
            body = json.loads(reply[1:].decode("utf-8"))
            client.submit(bytes([OBS_PROFILE_STOP_TAG])).result(30)
    assert body["running"] is True
    assert body["interval_s"] == profiler.DEFAULT_INTERVAL_S
