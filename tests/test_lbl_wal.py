"""Crash-recovery tests for the durable LBL-ORTOA proxy (WAL + resync)."""

import random

import pytest

from repro.core.lbl.wal import CounterWal, DurableLblOrtoa
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, KeyNotFoundError, ProtocolError
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=8, group_bits=2, point_and_permute=True)
RECORDS = {"a": b"val-a", "b": b"val-b", "c": b"val-c"}


def make(tmp_path, keychain=None):
    protocol = DurableLblOrtoa(
        CONFIG, tmp_path / "proxy.wal", keychain=keychain, rng=random.Random(1)
    )
    protocol.initialize(RECORDS)
    return protocol


# --------------------------------------------------------------------- #
# The WAL itself
# --------------------------------------------------------------------- #

def test_wal_append_replay(tmp_path):
    wal = CounterWal(tmp_path / "log.wal")
    wal.append("k1", 1)
    wal.append("k2", 1)
    wal.append("k1", 2)
    assert wal.replay() == {"k1": 2, "k2": 1}


def test_wal_checkpoint_compacts(tmp_path):
    wal = CounterWal(tmp_path / "log.wal")
    for i in range(10):
        wal.append("k", i)
    wal.checkpoint({"k": 9})
    assert (tmp_path / "log.wal").stat().st_size == 0
    assert wal.replay() == {"k": 9}
    wal.append("k", 10)
    assert wal.replay() == {"k": 10}


def test_wal_survives_torn_tail_record(tmp_path):
    """A crash mid-append leaves a torn record; replay must discard it."""
    wal = CounterWal(tmp_path / "log.wal")
    wal.append("good-key", 5)
    wal.close()
    with open(tmp_path / "log.wal", "ab") as f:
        f.write(b"\x00\x00\x00\x10\x00\x00")  # header promising more bytes
    assert CounterWal(tmp_path / "log.wal").replay() == {"good-key": 5}


def test_wal_unicode_keys(tmp_path):
    wal = CounterWal(tmp_path / "log.wal")
    wal.append("clé-λ", 3)
    assert wal.replay() == {"clé-λ": 3}


# --------------------------------------------------------------------- #
# Durable protocol: normal operation
# --------------------------------------------------------------------- #

def test_durable_protocol_works_normally(tmp_path):
    protocol = make(tmp_path)
    protocol.write("a", b"new")
    assert protocol.read("a") == CONFIG.pad(b"new")
    assert protocol.recovered_resyncs == 0


def test_wal_tracks_every_access(tmp_path):
    protocol = make(tmp_path)
    protocol.read("a")
    protocol.read("a")
    protocol.write("b", b"x")
    # The init checkpoint contributes every key at epoch 0.
    assert protocol.wal.replay() == {"a": 2, "b": 1, "c": 0}


# --------------------------------------------------------------------- #
# Crash recovery
# --------------------------------------------------------------------- #

def crash_and_recover(protocol, tmp_path, keychain):
    """Simulate a proxy crash: drop the proxy, keep the server, replay."""
    return DurableLblOrtoa.recover(
        CONFIG,
        tmp_path / "proxy.wal",
        keychain=keychain,
        server=protocol.server,
        rng=random.Random(2),
    )


def test_clean_crash_recovery(tmp_path):
    keychain = KeyChain(b"m" * 32)
    protocol = make(tmp_path, keychain)
    protocol.write("a", b"survives")
    protocol.read("b")

    recovered = crash_and_recover(protocol, tmp_path, keychain)
    assert recovered.read("a") == CONFIG.pad(b"survives")
    assert recovered.read("b") == CONFIG.pad(b"val-b")
    assert recovered.recovered_resyncs == 0


def test_crash_in_uncertainty_window_resyncs(tmp_path):
    """Crash after the WAL append but before the server applied the message:
    the logged epoch is one ahead; recovery must roll back and retry."""
    keychain = KeyChain(b"m" * 32)
    protocol = make(tmp_path, keychain)
    protocol.write("a", b"done")
    # Simulate the half-finished access: log the next epoch, never send.
    protocol.wal.append("a", protocol.proxy.counter("a") + 1)

    recovered = crash_and_recover(protocol, tmp_path, keychain)
    assert recovered.read("a") == CONFIG.pad(b"done")
    assert recovered.recovered_resyncs == 1
    # Subsequent accesses are clean again.
    assert recovered.read("a") == CONFIG.pad(b"done")
    assert recovered.recovered_resyncs == 1


def test_recovery_after_checkpoint(tmp_path):
    keychain = KeyChain(b"m" * 32)
    protocol = make(tmp_path, keychain)
    for _ in range(5):
        protocol.read("c")
    protocol.checkpoint()
    protocol.write("c", b"ckpt+1")

    recovered = crash_and_recover(protocol, tmp_path, keychain)
    assert recovered.read("c") == CONFIG.pad(b"ckpt+1")


def test_recovery_requires_keychain(tmp_path):
    protocol = make(tmp_path, KeyChain(b"m" * 32))
    with pytest.raises(ConfigurationError):
        DurableLblOrtoa.recover(
            CONFIG, tmp_path / "proxy.wal", keychain=None, server=protocol.server
        )


def test_recovery_with_wrong_keychain_fails_loudly(tmp_path):
    """Recovering with the wrong master key must not silently corrupt."""
    protocol = make(tmp_path, KeyChain(b"m" * 32))
    protocol.read("a")
    recovered = DurableLblOrtoa.recover(
        CONFIG,
        tmp_path / "proxy.wal",
        keychain=KeyChain(b"x" * 32),  # wrong key
        server=protocol.server,
        rng=random.Random(3),
    )
    with pytest.raises((ProtocolError, KeyNotFoundError)):
        recovered.read("a")


def test_force_counter_validation(tmp_path):
    protocol = make(tmp_path)
    with pytest.raises(ProtocolError):
        protocol.proxy.force_counter("a", -1)
    with pytest.raises(KeyNotFoundError):
        protocol.proxy.force_counter("never", 0)
    with pytest.raises(ProtocolError):
        protocol.proxy.restore_counters({"a": -2})
