"""Trace-context propagation: wire format, span-dump merging, end to end.

The headline property (ISSUE 4's acceptance criterion): a sharded run with
tracing enabled produces ONE merged trace in which every server-side
request span is a descendant of the client access span that caused it —
in-process (shared tracer) and across processes (dumps pulled over the
obs control frame and merged).
"""

import random

import pytest

from repro import obs
from repro.core.sharded import ShardedLblDeployment
from repro.errors import ProtocolError
from repro.obs.propagate import (
    REMOTE_PARENT_ATTR,
    TRACE_CONTEXT_BYTES,
    TraceContext,
    ancestor_chain,
    merge_span_dumps,
    orphan_spans,
    remote_parent,
    spans_by_id,
    trace_roots,
)
from repro.obs.trace import TRACER
from repro.transport import framing
from repro.transport.cluster import ShardCluster
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# --------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------- #

def test_trace_context_encode_decode_roundtrip():
    ctx = TraceContext(trace_id=123456789, span_id=2**63 - 1)
    wire = ctx.encode()
    assert len(wire) == TRACE_CONTEXT_BYTES
    assert TraceContext.decode(wire) == ctx


def test_trace_context_rejects_bad_sizes_and_ranges():
    with pytest.raises(ProtocolError):
        TraceContext.decode(b"short")
    with pytest.raises(ProtocolError):
        TraceContext(trace_id=-1, span_id=0).encode()
    with pytest.raises(ProtocolError):
        TraceContext(trace_id=0, span_id=2**64).encode()


def test_traced_mux_frame_roundtrip():
    ctx = TraceContext(trace_id=5, span_id=6).encode()
    frame = framing.wrap_mux(42, b"payload", ctx)
    assert frame[0] == framing.MUX_TRACED_TAG
    request_id, inner, decoded = framing.unwrap_mux_traced(frame)
    assert (request_id, inner, decoded) == (42, b"payload", ctx)
    # The context-discarding unwrap accepts the same frame.
    assert framing.unwrap_mux(frame) == (42, b"payload")


def test_plain_mux_frame_has_no_context():
    frame = framing.wrap_mux(7, b"payload")
    assert frame[0] == framing.MUX_TAG
    assert framing.unwrap_mux_traced(frame) == (7, b"payload", None)


def test_wrap_mux_enforces_context_width():
    with pytest.raises(ProtocolError):
        framing.wrap_mux(1, b"x", b"too-short")


def test_truncated_traced_frame_rejected():
    frame = framing.wrap_mux(1, b"", TraceContext(1, 2).encode())
    with pytest.raises(ProtocolError):
        framing.unwrap_mux_traced(frame[:-1])


def test_remote_parent_stub_carries_the_context():
    stub = remote_parent(TraceContext(trace_id=10, span_id=11))
    assert (stub.trace_id, stub.span_id, stub.parent_id) == (10, 11, None)


# --------------------------------------------------------------------- #
# Merging span dumps
# --------------------------------------------------------------------- #

def _span(span_id, trace_id, parent_id=None, name="s", **attributes):
    return {
        "name": name,
        "span_id": span_id,
        "trace_id": trace_id,
        "parent_id": parent_id,
        "start": 0.0,
        "end": 1.0,
        "duration": 1.0,
        "attributes": attributes,
    }


def test_merge_remaps_colliding_remote_ids():
    local = [_span(1, 1, name="client")]
    # The remote process also numbered its spans from 1.
    remote = [
        _span(1, 1, parent_id=1, name="server", **{REMOTE_PARENT_ATTR: True}),
        _span(2, 1, parent_id=1, name="server.child"),
    ]
    merged = merge_span_dumps(local, [remote])
    by_name = {s["name"]: s for s in merged}
    assert by_name["client"]["span_id"] == 1  # local ids untouched
    server = by_name["server"]
    assert server["span_id"] == 2  # remapped above the local max
    assert server["parent_id"] == 1  # remote-flagged link kept verbatim
    assert server["trace_id"] == 1  # propagated trace id preserved
    assert server["attributes"]["process"] == "shard-0"
    child = by_name["server.child"]
    assert child["parent_id"] == server["span_id"]  # intra-dump link moved
    assert orphan_spans(merged) == []


def test_merge_keeps_unpropagated_remote_roots_separate():
    local = [_span(1, 1, name="client")]
    # A server-local root trace (e.g. a LOAD served before any client span
    # existed) whose raw trace id collides with the client's.
    remote = [_span(1, 1, name="server.load")]
    merged = merge_span_dumps(local, [remote])
    by_name = {s["name"]: s for s in merged}
    assert by_name["server.load"]["trace_id"] != by_name["client"]["trace_id"]
    assert len(trace_roots(merged)) == 2


def test_merge_tags_each_dump_with_its_process():
    merged = merge_span_dumps([], [[_span(1, 1)], [_span(1, 1)]])
    assert [s["attributes"]["process"] for s in merged] == ["shard-0", "shard-1"]


def test_ancestor_chain_stops_on_cycles():
    a = _span(1, 1, parent_id=2)
    b = _span(2, 1, parent_id=1)
    # a -> b -> a would loop forever; the walk stops when it revisits b.
    chain = ancestor_chain(a, spans_by_id([a, b]))
    assert [s["span_id"] for s in chain] == [2, 1]


# --------------------------------------------------------------------- #
# End to end: one merged trace for a sharded deployment
# --------------------------------------------------------------------- #

def _run_traced_workload(deployment, num_keys=8):
    records = {f"p-{i}": f"v{i}".encode() for i in range(num_keys)}
    deployment.initialize(records)
    obs.enable()
    requests = [
        Request.read(key) if i % 2 else Request.write(key, bytes(16))
        for i, key in enumerate(records)
    ]
    deployment.access_pipelined(requests)
    return requests


def _assert_servers_descend_from_accesses(spans, expected):
    """Every server span that served a *traced* frame (the access workload;
    LOAD frames during initialize carry no context and stay roots) must be
    a descendant of a client access span after the merge."""
    index = spans_by_id(spans)
    traced = [
        s
        for s in spans
        if s["name"] == "transport.server.request"
        and s["attributes"].get(REMOTE_PARENT_ATTR)
    ]
    assert len(traced) == expected, "one traced server span per access"
    for span in traced:
        chain = ancestor_chain(span, index)
        assert any(s["name"] == "sharded.access" for s in chain), (
            f"server span {span['span_id']} ({span['attributes']}) is not a "
            f"descendant of any client access span"
        )
    assert orphan_spans(spans) == []


def test_inprocess_sharded_trace_links_server_to_client():
    with ShardCluster(2, point_and_permute=True, in_process=True) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG, cluster.addresses, rng=random.Random(0), pipeline_depth=4
        )
        try:
            requests = _run_traced_workload(deployment)
            spans = deployment.merged_spans()
        finally:
            deployment.close()
    _assert_servers_descend_from_accesses(spans, expected=len(requests))
    access_spans = [s for s in spans if s["name"] == "sharded.access"]
    assert len(access_spans) == len(requests)


def test_process_backed_sharded_trace_merges_into_one_forest():
    """The acceptance criterion: dumps pulled over the wire, ids remapped,
    every server span still a descendant of its client access span."""
    with ShardCluster(
        2, point_and_permute=True, in_process=False, enable_obs=True
    ) as cluster:
        deployment = ShardedLblDeployment(
            CONFIG, cluster.addresses, rng=random.Random(0), pipeline_depth=4
        )
        try:
            requests = _run_traced_workload(deployment)
            remote = deployment.collect_remote_obs()
            spans = deployment.merged_spans(remote)
        finally:
            deployment.close()
    assert len(remote) == 2
    _assert_servers_descend_from_accesses(spans, expected=len(requests))
    processes = {
        s["attributes"].get("process")
        for s in spans
        if s["name"] == "transport.server.request"
    }
    assert processes == {"shard-0", "shard-1"}  # spans from both processes
