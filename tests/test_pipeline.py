"""Tests for the multiplexed wire format and the pipelined LBL client."""

import random
import socket
import threading

import pytest

from repro.core.messages import LblAccessResponse
from repro.core.lbl.proxy import LblProxy
from repro.crypto.keys import KeyChain
from repro.errors import ProtocolError
from repro.transport.framing import (
    MAX_REQUEST_ID,
    is_mux,
    recv_frame,
    send_frame,
    unwrap_mux,
    wrap_mux,
)
from repro.transport.pipeline import PipelinedLblClient
from repro.transport.server import LOAD_ACK, LblTcpServer, pack_load
from repro.types import Request, StoreConfig

pytestmark = pytest.mark.timeout(30)

CONFIG = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)


@pytest.fixture()
def server():
    tcp = LblTcpServer(point_and_permute=True)
    tcp.serve_in_background()
    yield tcp
    tcp.close()


def make_proxy(seed: int = 1) -> LblProxy:
    keychain = KeyChain(label_bits=CONFIG.label_bits)
    return LblProxy(CONFIG, keychain, rng=random.Random(seed))


def load_keys(client: PipelinedLblClient, proxy: LblProxy, records: dict) -> None:
    futures = [
        client.submit(pack_load(encoded_key, labels))
        for encoded_key, labels in proxy.initial_records(records)
    ]
    for future in futures:
        assert future.result(10) == LOAD_ACK


# --------------------------------------------------------------------- #
# Mux framing
# --------------------------------------------------------------------- #

def test_mux_wrap_unwrap_roundtrip():
    wrapped = wrap_mux(42, b"payload")
    assert is_mux(wrapped)
    assert unwrap_mux(wrapped) == (42, b"payload")
    assert unwrap_mux(wrap_mux(MAX_REQUEST_ID, b"")) == (MAX_REQUEST_ID, b"")


def test_mux_rejects_out_of_range_ids():
    with pytest.raises(ProtocolError):
        wrap_mux(-1, b"x")
    with pytest.raises(ProtocolError):
        wrap_mux(MAX_REQUEST_ID + 1, b"x")


def test_unwrap_mux_rejects_short_or_untagged():
    with pytest.raises(ProtocolError):
        unwrap_mux(b"")
    with pytest.raises(ProtocolError):
        unwrap_mux(b"\x50\x00\x00")  # tag but truncated id
    with pytest.raises(ProtocolError):
        unwrap_mux(b"\x20" + bytes(12))  # not the mux tag
    assert not is_mux(b"")
    assert not is_mux(b"\x20abc")


# --------------------------------------------------------------------- #
# Pipelined client end to end
# --------------------------------------------------------------------- #

def test_pipelined_replies_pair_with_their_requests(server):
    """Every future resolves to *its* request's reply, not just any reply.

    A pairing bug would hand key A's labels to key B's finalize, which
    fails to decode — so checking the decoded values proves id matching.
    """
    proxy = make_proxy()
    with PipelinedLblClient(server.address) as client:
        records = {f"k{i}": bytes([i]) * 16 for i in range(12)}
        load_keys(client, proxy, records)
        submitted = []
        for key in records:
            request, _ops = proxy.prepare(Request.read(key))
            submitted.append((key, client.submit(request.to_bytes())))
        for key, future in submitted:
            response = LblAccessResponse.from_bytes(future.result(10))
            value, _ops = proxy.finalize(key, response)
            assert value == records[key]


def test_pipelined_many_in_flight(server):
    proxy = make_proxy()
    with PipelinedLblClient(server.address) as client:
        records = {f"k{i}": bytes(16) for i in range(32)}
        load_keys(client, proxy, records)
        futures = []
        for key in records:
            request, _ops = proxy.prepare(Request.read(key))
            futures.append(client.submit(request.to_bytes()))
        assert client.in_flight <= 32
        for future in futures:
            future.result(10)
        assert client.in_flight == 0


def test_pipelined_pool_distributes_connections(server):
    proxy = make_proxy()
    with PipelinedLblClient(server.address, pool_size=3) as client:
        assert client.num_connections == 3
        records = {f"k{i}": bytes(16) for i in range(6)}
        load_keys(client, proxy, records)
        for key in records:
            request, _ops = proxy.prepare(Request.read(key))
            client.submit(request.to_bytes()).result(10)


def test_server_error_fails_only_that_future(server):
    proxy = make_proxy()
    with PipelinedLblClient(server.address) as client:
        load_keys(client, proxy, {"good": bytes(16)})
        bad_request, _ = proxy.prepare(Request.read("good"))
        proxy.force_counter("good", 0)  # desync: same tables twice
        good_future = client.submit(bad_request.to_bytes())
        good_future.result(10)  # first use of the tables succeeds
        replayed, _ = proxy.prepare(Request.read("good"))
        failing = client.submit(replayed.to_bytes())
        with pytest.raises(ProtocolError, match="server error"):
            failing.result(10)
        # The connection survives an error frame, and the failed attempt
        # left proxy (counter 1) and server (epoch 1) in agreement.
        request, _ = proxy.prepare(Request.read("good"))
        assert client.submit(request.to_bytes()).result(10)


def test_submit_after_close_raises(server):
    client = PipelinedLblClient(server.address)
    client.close()
    with pytest.raises(ProtocolError):
        client.submit(b"\x00")


def test_request_convenience_is_lockstep(server):
    proxy = make_proxy()
    with PipelinedLblClient(server.address) as client:
        load_keys(client, proxy, {"k": b"\x07" * 16})
        request, _ = proxy.prepare(Request.read("k"))
        reply = client.request(request.to_bytes(), timeout=10)
        value, _ = proxy.finalize("k", LblAccessResponse.from_bytes(reply))
        assert value == b"\x07" * 16


def test_mux_and_plain_frames_share_a_connection(server):
    """A mux client and a plain lockstep socket coexist on one server."""
    proxy = make_proxy()
    with PipelinedLblClient(server.address) as client:
        load_keys(client, proxy, {"k": bytes(16)})
    sock = socket.create_connection(server.address, timeout=5)
    try:
        request, _ = proxy.prepare(Request.read("k"))
        send_frame(sock, request.to_bytes())  # plain, not mux-wrapped
        reply = recv_frame(sock)
        assert not is_mux(reply)
        LblAccessResponse.from_bytes(reply)
    finally:
        sock.close()


def test_pipelined_same_server_from_many_threads(server):
    proxy = make_proxy()
    lock = threading.Lock()
    errors: list[Exception] = []
    with PipelinedLblClient(server.address, pool_size=2) as client:
        records = {f"t{i}": bytes([i]) * 16 for i in range(8)}
        load_keys(client, proxy, records)

        def worker(key: str) -> None:
            try:
                with lock:  # proxy is single-threaded; the client is not
                    request, _ = proxy.prepare(Request.read(key))
                reply = client.submit(request.to_bytes()).result(10)
                with lock:
                    value, _ = proxy.finalize(key, LblAccessResponse.from_bytes(reply))
                assert value == records[key]
            except Exception as exc:  # noqa: BLE001 - collected for assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(key,)) for key in records
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert not errors
