"""Tests for the obliviousness auditor: true negatives and the leaky control."""

import random

import pytest

from repro import obs
from repro.core.lbl import LblOrtoa
from repro.errors import ConfigurationError
from repro.obs.audit import (
    LeakyLblOrtoa,
    ServerObservation,
    audit_observations,
    observations_from_spans,
    run_audit,
)
from repro.types import Operation, StoreConfig


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _pp_config(value_len: int = 16) -> StoreConfig:
    return StoreConfig(value_len=value_len, group_bits=2, point_and_permute=True)


def test_audit_passes_on_point_and_permute_lbl():
    protocol = LblOrtoa(_pp_config(), rng=random.Random(0))
    report = run_audit(protocol, num_keys=16, seed=0)
    assert report.passed, report.summary()
    assert report.num_reads == 8
    assert report.num_writes == 8
    # Every exact feature that was observed passed with identical support.
    assert report.failures == []


def test_audit_passes_on_base_shuffled_protocol():
    """The §5.2 base protocol has stochastic decrypt counts; means must agree."""
    protocol = LblOrtoa(StoreConfig(value_len=16), rng=random.Random(1))
    report = run_audit(protocol, num_keys=32, seed=1)
    assert report.passed, report.summary()
    by_feature = {c.feature: c for c in report.checks}
    # decrypt_attempts is audited by mean, and the detail shows both means.
    assert "read mean" in by_feature["decrypt_attempts"].detail


def test_audit_flags_leaky_server():
    protocol = LeakyLblOrtoa(_pp_config(), rng=random.Random(0))
    report = run_audit(protocol, num_keys=16, seed=0)
    assert not report.passed
    leaked = {c.feature for c in report.failures}
    # Skipping the rewrite on reads leaks through the storage-side features.
    assert "storage_writes" in leaked
    assert "labels_rewritten" in leaked
    summary = report.summary()
    assert "FAIL" in summary
    assert "[LEAK]" in summary


def test_audit_restores_prior_obs_state():
    obs.enable()
    run_audit(LblOrtoa(_pp_config(), rng=random.Random(2)), num_keys=4, seed=2)
    assert obs.is_enabled()
    obs.disable()
    run_audit(LblOrtoa(_pp_config(), rng=random.Random(3)), num_keys=4, seed=3)
    assert not obs.is_enabled()


def test_run_audit_rejects_tiny_workloads():
    with pytest.raises(ConfigurationError):
        run_audit(LblOrtoa(_pp_config()), num_keys=1)


def test_observations_from_spans_checks_lengths():
    with pytest.raises(ConfigurationError):
        observations_from_spans([], [Operation.READ])


def test_audit_observations_needs_both_op_types():
    only_reads = [
        ServerObservation(Operation.READ, {"storage_writes": 1}) for _ in range(3)
    ]
    with pytest.raises(ConfigurationError):
        audit_observations(only_reads)


def test_audit_observations_detects_support_mismatch():
    observations = [
        ServerObservation(Operation.READ, {"storage_writes": 0}),
        ServerObservation(Operation.WRITE, {"storage_writes": 1}),
    ]
    report = audit_observations(observations)
    assert not report.passed
    (failure,) = report.failures
    assert failure.feature == "storage_writes"
    assert "reads saw [0]" in failure.detail


def test_audit_observations_mean_tolerance():
    def obs_with_attempts(op, n):
        return ServerObservation(op, {"decrypt_attempts": n})

    observations = [
        obs_with_attempts(Operation.READ, 10),
        obs_with_attempts(Operation.WRITE, 11),
    ]
    assert audit_observations(observations, mean_tolerance=0.15).passed
    assert not audit_observations(observations, mean_tolerance=0.01).passed


def test_report_to_dict_round_trips():
    protocol = LeakyLblOrtoa(_pp_config(), rng=random.Random(0))
    report = run_audit(protocol, num_keys=8, seed=0)
    data = report.to_dict()
    assert data["passed"] is False
    assert data["num_reads"] + data["num_writes"] == 8
    assert any(not c["passed"] for c in data["checks"])
    assert all({"feature", "passed", "detail"} <= set(c) for c in data["checks"])


def test_leaky_protocol_still_functionally_correct_for_single_access():
    """The negative control only breaks *storage*, not the returned value."""
    protocol = LeakyLblOrtoa(_pp_config(value_len=8), rng=random.Random(4))
    protocol.initialize({"k": b"secret"})
    assert protocol.read("k").rstrip(b"\x00") == b"secret"
