"""Variant-specific tests for FHE-ORTOA, TEE-ORTOA, and the 2RTT baseline."""

import pytest

from repro.core import FheOrtoa, TeeOrtoa, TwoRoundBaseline
from repro.crypto.fhe import FheParams
from repro.errors import ConfigurationError, NoiseBudgetExhausted
from repro.types import Request, StoreConfig

CONFIG = StoreConfig(value_len=16)


# --------------------------------------------------------------------- #
# FHE-ORTOA
# --------------------------------------------------------------------- #

def make_fhe(q_bits=160):
    p = FheOrtoa(CONFIG, fhe_params=FheParams(n=32, q_bits=q_bits))
    p.initialize({"k": b"value"})
    return p


def test_fhe_noise_exhaustion_is_surfaced():
    """§3.3: after a handful of accesses the protocol must refuse, loudly."""
    p = make_fhe(q_bits=100)
    served = 0
    with pytest.raises(NoiseBudgetExhausted):
        for _ in range(50):
            p.read("k")
            served += 1
    assert 1 <= served < 50


def test_fhe_remaining_accesses_counts_down():
    p = make_fhe()
    first = p.remaining_accesses("k")
    assert first > 0
    p.read("k")
    assert p.remaining_accesses("k") < first


def test_fhe_ciphertext_grows_per_access():
    p = make_fhe()
    encoded = p.keychain.encode_key("k")
    sizes = [p.store.get(encoded).size]
    for _ in range(3):
        p.read("k")
        sizes.append(p.store.get(encoded).size)
    assert sizes == sorted(sizes) and sizes[-1] > sizes[0]


def test_fhe_expansion_factor_reported_in_transcript():
    """§3.2.2: communication is 3 FHE ciphertexts — orders of magnitude
    bigger than the plaintext."""
    p = make_fhe()
    t = p.access(Request.read("k"))
    assert t.request_bytes > 100 * CONFIG.value_len


def test_fhe_value_capacity_checked():
    with pytest.raises(ConfigurationError):
        FheOrtoa(StoreConfig(value_len=64), fhe_params=FheParams(n=32, q_bits=160))


def test_fhe_write_updates_value():
    p = make_fhe()
    p.write("k", b"updated")
    assert p.read("k") == CONFIG.pad(b"updated")


# --------------------------------------------------------------------- #
# TEE-ORTOA
# --------------------------------------------------------------------- #

def test_tee_attestation_happens_at_construction():
    p = TeeOrtoa(CONFIG)
    assert p.enclave.is_provisioned


def test_tee_ecall_per_access():
    p = TeeOrtoa(CONFIG)
    p.initialize({"k": b"v"})
    before = p.enclave.ecall_count
    p.read("k")
    p.write("k", b"w")
    assert p.enclave.ecall_count == before + 2


def test_tee_stored_ciphertext_rotates_on_read():
    """Every access re-encrypts server state, even reads."""
    p = TeeOrtoa(CONFIG)
    p.initialize({"k": b"v"})
    encoded = p.keychain.encode_key("k")
    before = p.store.get(encoded)
    p.read("k")
    assert p.store.get(encoded) != before


def test_tee_request_small_and_constant():
    """§4.2.2: 2 ciphertexts — no length expansion blow-up."""
    p = TeeOrtoa(CONFIG)
    p.initialize({"k": b"v"})
    t = p.access(Request.read("k"))
    assert t.request_bytes < 10 * CONFIG.value_len


# --------------------------------------------------------------------- #
# 2RTT baseline
# --------------------------------------------------------------------- #

def test_baseline_writes_back_on_reads():
    """The baseline hides op type by always writing; server put_count grows
    on reads too."""
    p = TwoRoundBaseline(CONFIG)
    p.initialize({"k": b"v"})
    before = p.store.put_count
    p.read("k")
    assert p.store.put_count == before + 1


def test_baseline_reencrypts_on_read():
    p = TwoRoundBaseline(CONFIG)
    p.initialize({"k": b"v"})
    encoded = p.keychain.encode_key("k")
    before = p.store.get(encoded)
    p.read("k")
    assert p.store.get(encoded) != before
    # value unchanged though
    assert p.read("k") == CONFIG.pad(b"v")


def test_baseline_round_sizes_are_small():
    p = TwoRoundBaseline(CONFIG)
    p.initialize({"k": b"v"})
    t = p.access(Request.read("k"))
    assert t.num_rounds == 2
    # Two small rounds: AEAD framing (~28 B) + encoded keys dominate; no
    # expansion proportional to anything but the value itself.
    assert t.total_bytes < 4 * (CONFIG.value_len + 64)
