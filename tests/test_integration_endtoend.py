"""End-to-end integration: datasets → workload → protocol → metrics →
security checks, across the whole public API."""

import random

import pytest

from repro import (
    DeploymentSpec,
    FreshnessGuard,
    LblOrtoa,
    Operation,
    StoreConfig,
    TeeOrtoa,
    TwoRoundBaseline,
    access_batch,
    run_experiment,
)
from repro.analysis.metrics import summarize
from repro.security.distinguisher import shape_fingerprint
from repro.types import LatencySample, Request
from repro.workloads import RequestStream, WorkloadSpec, build_dataset


def test_dataset_through_protocol_through_stream():
    """Load a real-schema dataset, drive it with a workload stream, verify
    against a reference dict — the full functional pipeline."""
    records = build_dataset("ecommerce", num_objects=24, seed=4)
    config = StoreConfig(value_len=40, group_bits=2, point_and_permute=True)
    protocol = LblOrtoa(config, rng=random.Random(1))
    protocol.initialize(records)
    reference = {k: config.pad(v) for k, v in records.items()}

    stream = RequestStream(
        WorkloadSpec(keys=tuple(records), value_len=40, write_fraction=0.4, seed=5)
    )
    for request in stream.take(120):
        if request.op is Operation.WRITE:
            reference[request.key] = config.pad(request.value)
            protocol.write(request.key, request.value)
        else:
            assert protocol.read(request.key) == reference[request.key]


def test_all_protocols_agree_on_dataset_workload():
    records = build_dataset("ehr", num_objects=12, seed=2)
    config = StoreConfig(value_len=10)
    protocols = [
        TwoRoundBaseline(config),
        TeeOrtoa(config),
        LblOrtoa(
            StoreConfig(value_len=10, group_bits=2, point_and_permute=True),
            rng=random.Random(3),
        ),
        FreshnessGuard(config, lambda cfg: TeeOrtoa(cfg)),
    ]
    for protocol in protocols:
        protocol.initialize(records)
    stream = RequestStream(
        WorkloadSpec(keys=tuple(records), value_len=10, write_fraction=0.5, seed=9)
    )
    for request in stream.take(40):
        if request.op is Operation.WRITE:
            for protocol in protocols:
                protocol.write(request.key, request.value)
        else:
            values = {p.name: p.read(request.key) for p in protocols}
            assert len(set(values.values())) == 1, values


def test_workload_transcripts_are_shape_uniform():
    """Across an entire mixed workload, every LBL transcript has the same
    wire fingerprint — not just pairwise read/write equality."""
    config = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)
    protocol = LblOrtoa(config, rng=random.Random(1))
    records = {f"k{i}": bytes(16) for i in range(6)}
    protocol.initialize(records)
    stream = RequestStream(
        WorkloadSpec(keys=tuple(records), value_len=16, write_fraction=0.5, seed=7)
    )
    sizes = set()
    for request in stream.take(50):
        t = protocol.access(request)
        sizes.add((t.num_rounds, t.request_bytes, t.response_bytes))
    assert len(sizes) == 1


def test_batching_and_single_access_agree():
    config = StoreConfig(value_len=8, group_bits=2, point_and_permute=True)
    batched = LblOrtoa(config, rng=random.Random(1))
    single = LblOrtoa(config, rng=random.Random(1))
    records = {f"k{i}": bytes([i]) * 8 for i in range(4)}
    batched.initialize(dict(records))
    single.initialize(dict(records))

    requests = [
        Request.write("k0", b"00000000"),
        Request.read("k1"),
        Request.write("k1", b"11111111"),
        Request.read("k0"),
    ]
    batch_result = access_batch(batched, requests)
    single_results = [single.access(r) for r in requests]
    for batch_t, single_t in zip(batch_result.per_request, single_results):
        assert batch_t.response.value == single_t.response.value


def test_simulated_and_functional_sides_are_consistent():
    """The DES run's reported message sizes must equal the functional
    protocol's actual transcript sizes."""
    spec = DeploymentSpec(protocol="lbl", value_len=32, duration_ms=300)
    result = run_experiment(spec)
    protocol = spec.build_protocol()
    protocol.initialize({"k": bytes(32)})
    transcript = protocol.access(Request.read("k"))
    assert result.request_bytes == pytest.approx(transcript.request_bytes, rel=0.01)
    assert result.response_bytes == pytest.approx(transcript.response_bytes, rel=0.01)


def test_metrics_pipeline_from_manual_samples():
    samples = [
        LatencySample(Operation.READ, float(i), float(i) + 20.0, 2.0, 3.0)
        for i in range(50)
    ]
    metrics = summarize(samples, duration_ms=1000.0)
    assert metrics.throughput_ops_per_s == 50.0
    assert metrics.avg_latency_ms == 20.0
    assert metrics.avg_base_comm_ms == 15.0


def test_security_fingerprint_stable_across_restart():
    """Transcript shapes depend only on configuration, never on key
    material — two independent deployments must fingerprint identically."""
    config = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)
    outputs = []
    for seed in (1, 2):
        protocol = LblOrtoa(config, rng=random.Random(seed))
        protocol.initialize({"k": bytes(16)})
        request, _ = protocol.proxy.prepare(Request.read("k"))
        outputs.append([request.to_bytes()])
    assert shape_fingerprint(outputs[0]) == shape_fingerprint(outputs[1])
