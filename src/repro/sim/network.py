"""Cross-datacenter network model.

Reproduces the communication environment of the paper's §6: the proxy and
clients sit in US-West1 (California) and the storage server is placed at
increasing distances.  ``DATACENTER_RTT_MS`` is the paper's Table 2 verbatim.

A link is modeled as ``latency + serialization``: a one-way message of ``b``
bytes takes ``rtt/2 + b / bandwidth`` and a request/response exchange takes
``rtt + (b_req + b_resp) / bandwidth``.  The bandwidth term is what produces
the paper's Figure 3c "communication overhead" component, which grows with
LBL-ORTOA's message size and drives the 300 B crossover of Figure 3b.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Table 2 of the paper: RTT from California to each server location, in ms.
DATACENTER_RTT_MS: dict[str, float] = {
    "oregon": 21.84,
    "n_virginia": 62.06,
    "london": 147.73,
    "mumbai": 230.3,
}

#: RTT between clients and the proxy, which the paper co-locates in the same
#: datacenter (California); sub-millisecond.
CLIENT_PROXY_RTT_MS = 0.5

#: Default proxy<->server WAN bandwidth.  Chosen so that LBL-ORTOA's larger
#: messages produce the paper's observed communication overhead (§6.3.1:
#: p + o ≈ 21.7 ms for 300 B objects, crossing the baseline near 300 B).
DEFAULT_BANDWIDTH_MBPS = 180.0


@dataclass(frozen=True, slots=True)
class NetworkLink:
    """A bidirectional link with fixed RTT and finite bandwidth.

    Attributes:
        rtt_ms: Round-trip propagation latency in milliseconds.
        bandwidth_mbps: Serialization bandwidth in megabits per second.
    """

    rtt_ms: float
    bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS

    def __post_init__(self) -> None:
        if self.rtt_ms < 0:
            raise ConfigurationError("rtt_ms must be non-negative")
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth_mbps must be positive")

    @staticmethod
    def to_datacenter(location: str, bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS) -> "NetworkLink":
        """Link from the California proxy to a named server datacenter."""
        try:
            rtt = DATACENTER_RTT_MS[location]
        except KeyError:
            known = ", ".join(sorted(DATACENTER_RTT_MS))
            raise ConfigurationError(
                f"unknown datacenter {location!r}; known: {known}"
            ) from None
        return NetworkLink(rtt, bandwidth_mbps)

    def serialization_ms(self, num_bytes: int) -> float:
        """Time to push ``num_bytes`` onto the wire at link bandwidth."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        bits = num_bytes * 8
        return bits / (self.bandwidth_mbps * 1000.0)

    def one_way_ms(self, num_bytes: int) -> float:
        """Latency for a one-way message of ``num_bytes``."""
        return self.rtt_ms / 2.0 + self.serialization_ms(num_bytes)

    def round_trip_ms(self, request_bytes: int, response_bytes: int) -> float:
        """Latency for a request/response exchange."""
        return self.rtt_ms + self.serialization_ms(request_bytes + response_bytes)

    def overhead_ms(self, request_bytes: int, response_bytes: int) -> float:
        """The size-dependent part only (Figure 3c's 'communication overhead')."""
        return self.serialization_ms(request_bytes + response_bytes)


__all__ = [
    "NetworkLink",
    "DATACENTER_RTT_MS",
    "CLIENT_PROXY_RTT_MS",
    "DEFAULT_BANDWIDTH_MBPS",
]
