"""Generator-based discrete-event simulation kernel.

Processes are Python generators that ``yield`` events; the environment steps
simulated time from event to event.  The API is a deliberately small subset
of the well-known simpy model:

    env = Environment()

    def client(env):
        yield env.timeout(5.0)
        print("woke at", env.now)

    env.process(client(env))
    env.run()

Times are plain floats; the experiment harness uses milliseconds throughout.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot event that processes can wait on.

    An event is *triggered* with a value (delivered to every waiter) or
    *failed* with an exception (raised inside every waiting process).
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self.triggered = False
        self.value: Any = None
        self.exception: BaseException | None = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, scheduling all waiters at the current time."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception instead of a value."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.exception = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.triggered = True
        self.value = value
        env._schedule(self, delay)


class Process(Event):
    """Wraps a generator; the process event fires when the generator returns.

    The generator's ``return`` value becomes the event value, so processes can
    wait for each other: ``result = yield env.process(sub(env))``.
    """

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        super().__init__(env)
        self._generator = generator
        # Bootstrap: resume once at the current time.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.triggered = True
        env._schedule(bootstrap)

    def _resume(self, event: Event) -> None:
        try:
            if event.exception is not None:
                target = self._generator.throw(event.exception)
            else:
                target = self._generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}, expected an Event"
            )
        if target in self.env._processed:
            # The event already fired and its callbacks ran; waiting on its
            # callback list would hang forever, so resume via a fresh
            # zero-delay event carrying the same outcome.
            immediate = Event(self.env)
            immediate.triggered = True
            immediate.value = target.value
            immediate.exception = target.exception
            immediate.callbacks.append(self._resume)
            self.env._schedule(immediate)
        else:
            target.callbacks.append(self._resume)


class Environment:
    """Owns the simulation clock and the pending-event heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._processed: set[Event] = set()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every event in ``events`` has fired."""
        events = list(events)
        done = self.event()
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        values: list[Any] = [None] * remaining
        state = {"left": remaining}

        def make_callback(index: int) -> Callable[[Event], None]:
            def callback(event: Event) -> None:
                if event.exception is not None:
                    if not done.triggered:
                        done.fail(event.exception)
                    return
                values[index] = event.value
                state["left"] -= 1
                if state["left"] == 0 and not done.triggered:
                    done.succeed(list(values))

            return callback

        for i, ev in enumerate(events):
            if ev.triggered and ev in self._processed:
                make_callback(i)(ev)
            else:
                ev.callbacks.append(make_callback(i))
        return done

    # ------------------------------------------------------------------ #
    # Scheduling and execution
    # ------------------------------------------------------------------ #

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))
        self._sequence += 1

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no more events to process")
        time, _, event = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = time
        self._processed.add(event)
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def run(self, until: float | None = None) -> None:
        """Run until the event queue drains or the clock passes ``until``."""
        while self._heap:
            next_time = self._heap[0][0]
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = max(self.now, until)


__all__ = ["Environment", "Event", "Process", "Timeout", "ProcessGenerator"]
