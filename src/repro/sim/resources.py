"""Capacity-limited resources for the simulation kernel.

The experiment harness models proxy worker pools and server cores as
:class:`Resource` instances: a request either starts immediately (capacity
available) or queues FIFO.  This is what produces the paper's Figure 2b
behaviour — latency spiking once client concurrency exceeds server cores.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from repro.errors import ConfigurationError, SimulationError
from repro.sim.core import Environment, Event


class Resource:
    """A FIFO resource with integer capacity.

    Usage inside a process generator::

        grant = resource.request()
        yield grant
        try:
            yield env.timeout(work)
        finally:
            resource.release(grant)

    Or, equivalently, ``yield from resource.use(env, work)``.
    """

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[Event] = deque()
        #: grant event -> simulation time the grant was issued.
        self._granted: dict[Event, float] = {}
        #: Accumulated capacity-seconds of granted time (for utilization).
        self.busy_time = 0.0

    @property
    def in_use(self) -> int:
        """Capacity units currently granted."""
        return self._in_use

    @property
    def queue_len(self) -> int:
        """Requests waiting for capacity."""
        return len(self._waiting)

    def utilization(self, duration: float) -> float:
        """Fraction of capacity-time spent granted over ``duration``."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        return self.busy_time / (duration * self.capacity)

    def request(self) -> Event:
        """Return an event that fires when a unit of capacity is granted."""
        grant = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            self._granted[grant] = self.env.now
            grant.succeed(grant)
        else:
            self._waiting.append(grant)
        return grant

    def release(self, grant: Event) -> None:
        """Return a previously granted unit of capacity."""
        if grant not in self._granted:
            raise SimulationError("releasing a grant that was never issued")
        self.busy_time += self.env.now - self._granted.pop(grant)
        if self._waiting:
            waiter = self._waiting.popleft()
            self._granted[waiter] = self.env.now
            waiter.succeed(waiter)
        else:
            self._in_use -= 1

    def use(self, env: Environment, hold_time: float) -> Generator[Event, None, None]:
        """Acquire, hold for ``hold_time``, release — the common pattern."""
        grant = self.request()
        yield grant
        try:
            yield env.timeout(hold_time)
        finally:
            self.release(grant)


__all__ = ["Resource"]
