"""A small discrete-event simulation kernel and WAN network model.

The paper evaluates ORTOA on AWS/Azure across real datacenters; this package
is the substitute testbed.  :mod:`repro.sim.core` provides a generator-based
process simulator (an intentionally minimal simpy work-alike built for this
project), :mod:`repro.sim.resources` adds capacity-limited resources, and
:mod:`repro.sim.network` models cross-datacenter links with the RTTs of the
paper's Table 2 plus a bandwidth term for large-message overhead.
"""

from repro.sim.core import Environment, Event, Process, Timeout
from repro.sim.network import DATACENTER_RTT_MS, NetworkLink
from repro.sim.resources import Resource

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Resource",
    "NetworkLink",
    "DATACENTER_RTT_MS",
]
