"""The trusted-side client: an LBL-ORTOA deployment over a remote server.

:class:`RemoteLblOrtoa` is API-compatible with the in-process
:class:`~repro.core.lbl.LblOrtoa` — same proxy, same messages, same
transcripts — but its round trip is a real TCP exchange.  Transcript byte
counts therefore equal what a packet capture would show (minus the 4-byte
frame header, which the transcript also reports).
"""

from __future__ import annotations

import random
import socket
import threading

from repro.core.base import (
    AccessTranscript,
    OpCounts,
    OrtoaProtocol,
    PhaseRecord,
    RoundTrip,
)
from repro.core.lbl.concurrent import finalize_batch_entries
from repro.core.lbl.proxy import LblProxy
from repro.core.messages import LblAccessResponse, LblBatchRequest, LblBatchResponse
from repro.crypto.keys import KeyChain
from repro.errors import BatchPartialFailure, ProtocolError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.transport import framing
from repro.transport.server import ERROR_TAG, LOAD_ACK, pack_load
from repro.types import Request, Response, StoreConfig


class RemoteLblOrtoa(OrtoaProtocol):
    """LBL-ORTOA whose untrusted server lives across a TCP connection.

    Args:
        config: Store configuration (``point_and_permute`` must match the
            server's).
        address: ``(host, port)`` of a running
            :class:`~repro.transport.server.LblTcpServer`.
        keychain: Key material — never leaves this process.
        rng: Table-shuffle randomness.
    """

    name = "lbl-ortoa-remote"
    rounds = 1

    def __init__(
        self,
        config: StoreConfig,
        address: tuple[str, int],
        keychain: KeyChain | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(config)
        self.keychain = keychain or KeyChain(label_bits=config.label_bits)
        self.proxy = LblProxy(config, self.keychain, rng=rng)
        self._sock = socket.create_connection(address, timeout=30.0)
        self._io_lock = threading.Lock()

    def close(self) -> None:
        """Close the connection to the server."""
        self._sock.close()

    def __enter__(self) -> "RemoteLblOrtoa":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Wire helpers
    # ------------------------------------------------------------------ #

    def _exchange(self, payload: bytes) -> bytes:
        span = TRACER.start_span("transport.exchange") if _obs.enabled else None
        with self._io_lock:
            framing.send_frame(self._sock, payload)
            reply = framing.recv_frame(self._sock)
        if span is not None:
            span.set_attributes(request_bytes=len(payload), response_bytes=len(reply))
            TRACER.end(span)
        if reply[:1] == bytes([ERROR_TAG]):
            if _obs.enabled:
                REGISTRY.counter("transport.error_frames_received").inc()
            raise ProtocolError(
                f"server error: {reply[1:].decode('utf-8', 'replace')}"
            )
        return reply

    # ------------------------------------------------------------------ #
    # Protocol interface
    # ------------------------------------------------------------------ #

    def initialize(self, records: dict[str, bytes]) -> None:
        for encoded_key, labels in self.proxy.initial_records(records):
            reply = self._exchange(pack_load(encoded_key, labels))
            if reply != LOAD_ACK:
                raise ProtocolError("server rejected a load record")

    def access(self, request: Request) -> AccessTranscript:
        lbl_request, proxy_ops = self.proxy.prepare(request)
        request_bytes = lbl_request.to_bytes()
        reply = self._exchange(request_bytes)
        response = LblAccessResponse.from_bytes(reply)
        value, finalize_ops = self.proxy.finalize(request.key, response)
        return AccessTranscript(
            op=request.op,
            phases=(
                PhaseRecord("proxy-build-tables", "proxy", proxy_ops),
                # Server-side op counts are not observable across the wire
                # (nor should they be); kv_ops=2 is the known fetch+store.
                PhaseRecord("server-remote", "server", OpCounts(kv_ops=2)),
                PhaseRecord("proxy-decode", "proxy", finalize_ops),
            ),
            round_trips=(RoundTrip(len(request_bytes), len(reply)),),
            response=Response(request.key, value),
        )

    def access_batch(self, requests: list[Request]) -> list[AccessTranscript]:
        """Serve many requests in one *physical* round trip over the socket.

        All tables are prepared locally (epochs recorded per request, so
        repeated keys decode correctly), shipped as one
        :class:`~repro.core.messages.LblBatchRequest`, and finalized from
        the single batched reply.

        Raises:
            BatchPartialFailure: Some requests failed server-side.  The
                successful ones were applied (their transcripts ride on the
                exception) and the failed keys' counters were rolled back,
                so retrying just the failures is safe.
        """
        if not requests:
            raise ProtocolError("batch must contain at least one request")
        prepared = []
        for request in requests:
            epoch = self.proxy.counter(request.key) + 1
            lbl_request, proxy_ops = self.proxy.prepare(request)
            prepared.append((request, lbl_request, proxy_ops, epoch))

        wire = LblBatchRequest(tuple(p[1] for p in prepared)).to_bytes()
        reply = self._exchange(wire)
        batch_response = LblBatchResponse.from_bytes(reply)
        if len(batch_response.responses) != len(prepared):
            raise ProtocolError("batch response count mismatch")

        share = (len(wire) // len(prepared), len(reply) // len(prepared))
        transcripts, failures = finalize_batch_entries(
            self.proxy,
            [(request, proxy_ops, epoch) for request, _, proxy_ops, epoch in prepared],
            batch_response.responses,
            shares=[share] * len(prepared),
        )
        if failures:
            raise BatchPartialFailure(failures, transcripts)
        return [transcripts[i] for i in range(len(prepared))]


__all__ = ["RemoteLblOrtoa"]
