"""Asyncio pipelined LBL client plus a drop-in sync wrapper.

:class:`AsyncPipelinedLblClient` is the event-loop twin of
:class:`~repro.transport.pipeline.PipelinedLblClient`: it multiplexes
requests over a small pool of connections, matches replies to awaiting
futures by request id, and interprets nothing but the error and OVERLOAD
tags.  Where the threaded client burns one reader *thread* per socket,
this one runs one reader *task* per socket — a client holding hundreds of
connections costs hundreds of coroutines, not hundreds of stacks.

:class:`SyncAsyncLblClient` wraps it for synchronous callers: a private
event loop on one background thread, ``submit`` hopping onto it via
``run_coroutine_threadsafe`` and returning a
:class:`concurrent.futures.Future` — the same contract as
``PipelinedLblClient.submit``, so :class:`~repro.core.sharded.ShardedLblDeployment`,
the ledger, and the obliviousness auditor run over either transport
unmodified.  :func:`make_pipelined_client` picks between them by name.

Ledger note: the sync wrapper captures the caller's trace context *on the
calling thread, before hopping loops* — the current span is a contextvar
the loop thread cannot see.  Wire metering stays on the loop: the ledger
registry is process-wide and thread-safe, so the totals come out exact
either way, and metering once is what keeps them exact.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import Future

from repro.errors import ConfigurationError, OverloadError, ProtocolError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.metrics import REGISTRY
from repro.obs.propagate import TraceContext
from repro.obs.trace import TRACER
from repro.transport import framing
from repro.transport.framing import MAX_FRAME_BYTES, _LEN
from repro.transport.server import ERROR_TAG, OVERLOAD_FRAME


class _AsyncConnection:
    """One (reader, writer) stream pair plus its reader task and pending map."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        #: Request id → future-like (asyncio or concurrent — the read loop
        #: only calls set_result/set_exception/done on it).
        self.pending: dict[int, "asyncio.Future | Future"] = {}
        self.dead = False
        self.reader_task: asyncio.Task | None = None

    def fail_pending(self, error: ProtocolError) -> None:
        self.dead = True
        orphans = list(self.pending.values())
        self.pending.clear()
        for future in orphans:
            if not future.done():
                future.set_exception(error)


class AsyncPipelinedLblClient:
    """Pure-async multiplexing client; create then ``await open()``.

    Args:
        address: ``(host, port)`` of a running LBL server (threaded or
            async — the wire format is identical).
        pool_size: Connections to open; submissions round-robin.
        timeout: Connect timeout per connection (seconds).
    """

    def __init__(
        self,
        address: tuple[str, int],
        pool_size: int = 1,
        timeout: float = 30.0,
    ) -> None:
        if pool_size < 1:
            raise ProtocolError("pool_size must be >= 1")
        self.address = address
        self._pool_size = pool_size
        self._timeout = timeout
        self._connections: list[_AsyncConnection] = []
        self._ids = itertools.count(1)
        self._rr = itertools.cycle(range(pool_size))
        self._closed = False
        self._opened = False

    async def open(self) -> "AsyncPipelinedLblClient":
        """Connect the pool and start one reader task per connection."""
        if self._opened:
            return self
        loop = asyncio.get_running_loop()
        for _ in range(self._pool_size):
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*self.address), timeout=self._timeout
            )
            sock = writer.get_extra_info("socket")
            if sock is not None:
                import socket as _socket

                sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
            conn = _AsyncConnection(reader, writer)
            conn.reader_task = loop.create_task(self._read_loop(conn))
            self._connections.append(conn)
        self._opened = True
        return self

    @property
    def num_connections(self) -> int:
        """Connections in the pool (dead ones included)."""
        return len(self._connections)

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet completed."""
        return sum(len(c.pending) for c in self._connections)

    async def _read_loop(self, conn: _AsyncConnection) -> None:
        try:
            while True:
                header = await conn.reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise ProtocolError(
                        f"peer announced a {length}-byte frame; refusing"
                    )
                payload = await conn.reader.readexactly(length)
                request_id, inner = framing.unwrap_mux(payload)
                if _obs.enabled:
                    _ledger.count_wire(
                        _ledger.frame_type(payload), "received", 4 + len(payload)
                    )
                future = conn.pending.pop(request_id, None)
                if future is None or future.done():
                    continue  # reply nobody is waiting on (e.g. cancelled)
                if inner == OVERLOAD_FRAME:
                    if _obs.enabled:
                        REGISTRY.counter(
                            "transport.overload_frames_received"
                        ).inc()
                    future.set_exception(
                        OverloadError("server shed this request (overloaded)")
                    )
                elif inner[:1] == bytes([ERROR_TAG]):
                    if _obs.enabled:
                        REGISTRY.counter("transport.error_frames_received").inc()
                    future.set_exception(
                        ProtocolError(
                            f"server error: {inner[1:].decode('utf-8', 'replace')}"
                        )
                    )
                else:
                    future.set_result(inner)
        except (asyncio.IncompleteReadError, ConnectionError, OSError, ProtocolError):
            pass  # fall through to fail whatever is still pending
        except asyncio.CancelledError:
            conn.fail_pending(ProtocolError("client closed with requests in flight"))
            raise
        conn.fail_pending(ProtocolError("connection lost with requests in flight"))

    def _pick(self) -> _AsyncConnection:
        for _ in range(len(self._connections)):
            conn = self._connections[next(self._rr)]
            if not conn.dead:
                return conn
        raise ProtocolError(f"all connections to {self.address} are closed")

    def submit(
        self,
        payload: bytes,
        trace_context: bytes | None = None,
        future: "asyncio.Future | Future | None" = None,
    ) -> "asyncio.Future | Future":
        """Send one payload; the returned future completes with the reply.

        Must be called on the loop that ran :meth:`open`.  Identical
        contract to ``PipelinedLblClient.submit`` — including automatic
        trace-context propagation from the calling context's current span
        and the ``transport.pipeline.roundtrip.seconds`` histogram — except
        the future is an :class:`asyncio.Future`, not a concurrent one.

        ``future`` lets the sync wrapper hand in a
        :class:`concurrent.futures.Future` to complete instead: the read
        loop only ever calls ``set_result``/``set_exception``/``done`` on
        it, which both future types share, and skipping the
        asyncio-to-concurrent chaining keeps the hot path to one
        ``call_soon_threadsafe`` per request.
        """
        if self._closed:
            raise ProtocolError("client is closed")
        if not self._opened:
            raise ProtocolError("client not opened; await open() first")
        if _obs.enabled and trace_context is None:
            span = TRACER.current_span()
            if span is not None:
                trace_context = TraceContext.from_span(span).encode()
        conn = self._pick()
        request_id = next(self._ids)
        if future is None:
            future = asyncio.get_running_loop().create_future()
        conn.pending[request_id] = future
        if _obs.enabled:
            submitted_at = time.perf_counter()
            roundtrip = REGISTRY.log_histogram("transport.pipeline.roundtrip.seconds")

            def _observe(f: asyncio.Future) -> None:
                if not f.cancelled() and f.exception() is None:
                    roundtrip.observe(time.perf_counter() - submitted_at)

            future.add_done_callback(_observe)
        wrapped = framing.wrap_mux(request_id, payload, trace_context)
        if _obs.enabled:
            _ledger.count_wire(_ledger.frame_type(payload), "sent", 4 + len(wrapped))
        try:
            conn.writer.write(_LEN.pack(len(wrapped)) + wrapped)
        except (ConnectionError, OSError) as exc:
            conn.pending.pop(request_id, None)
            conn.fail_pending(ProtocolError(f"send failed: {exc}"))
            raise ProtocolError(f"send to {self.address} failed: {exc}") from exc
        if _obs.enabled:
            REGISTRY.counter("transport.pipeline.submitted").inc()
            REGISTRY.gauge("transport.pipeline.in_flight").set(self.in_flight)
        return future

    async def request(self, payload: bytes, timeout: float | None = 30.0) -> bytes:
        """Submit and await the reply (lockstep convenience)."""
        future = self.submit(payload)
        if timeout is None:
            return await future
        return await asyncio.wait_for(future, timeout=timeout)

    async def drain(self) -> None:
        """Flush pending writes (backpressure point for bulk submitters)."""
        for conn in self._connections:
            if not conn.dead:
                async with conn.write_lock:
                    await conn.writer.drain()

    async def close(self) -> None:
        """Close every connection and fail any still-pending futures."""
        if self._closed:
            return
        self._closed = True
        for conn in self._connections:
            conn.dead = True
            if conn.reader_task is not None:
                conn.reader_task.cancel()
            conn.writer.close()
        for conn in self._connections:
            if conn.reader_task is not None:
                try:
                    await conn.reader_task
                except (asyncio.CancelledError, Exception):
                    pass
            conn.fail_pending(ProtocolError("client closed with requests in flight"))

    async def __aenter__(self) -> "AsyncPipelinedLblClient":
        return await self.open()

    async def __aexit__(self, *_exc) -> None:
        await self.close()


class SyncAsyncLblClient:
    """``PipelinedLblClient``-compatible facade over the async client.

    Runs a private event loop on one daemon thread; every pooled
    connection lives there.  ``submit`` returns a
    :class:`concurrent.futures.Future` exactly like the threaded client,
    so the sharded deployment and everything above it cannot tell the
    transports apart.

    Trace capture happens here on the calling thread — the caller's
    current span lives in contextvars the loop thread cannot see — while
    wire metering stays inside the async client, whose registry counters
    are process-wide and thread-safe.
    """

    def __init__(
        self,
        address: tuple[str, int],
        pool_size: int = 1,
        timeout: float = 30.0,
    ) -> None:
        if pool_size < 1:
            raise ProtocolError("pool_size must be >= 1")
        self.address = address
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="lbl-async-client", daemon=True
        )
        self._thread.start()
        self._inner = AsyncPipelinedLblClient(
            address, pool_size=pool_size, timeout=timeout
        )
        self._closed = False
        try:
            self._call(self._inner.open(), timeout=timeout + 5.0)
        except Exception:
            self._stop_loop()
            raise

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()
        # Drain callbacks scheduled right before stop() so cancellations run.
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()

    def _call(self, coro, timeout: float | None):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)

    @property
    def num_connections(self) -> int:
        """Connections in the pool (dead ones included)."""
        return self._inner.num_connections

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet completed."""
        return self._inner.in_flight

    def submit(self, payload: bytes, trace_context: bytes | None = None) -> Future:
        """Send one payload; the future completes with the reply bytes.

        Same contract as :meth:`PipelinedLblClient.submit`: trace context
        defaults to the calling context's current span, the round trip
        lands in ``transport.pipeline.roundtrip.seconds``, and the future
        fails with :class:`~repro.errors.OverloadError` when the server
        shed the request or :class:`~repro.errors.ProtocolError` on error
        frames and dead connections.
        """
        if self._closed:
            raise ProtocolError("client is closed")
        # Capture the trace context on the CALLER's thread: the current
        # span lives in the caller's contextvars, which the loop thread
        # cannot see.  Wire metering stays inside the async client — the
        # ledger registry is process-wide and thread-safe, so counting on
        # the loop thread is exact, and counting here too would double it.
        if _obs.enabled and trace_context is None:
            span = TRACER.current_span()
            if span is not None:
                trace_context = TraceContext.from_span(span).encode()
        # One call_soon_threadsafe per request — no coroutine, no Task,
        # no future chaining.  The inner submit is synchronous on the
        # loop (StreamWriter.write buffers without awaiting) and
        # completes our concurrent future directly from its read loop.
        future: Future = Future()

        def _submit_on_loop() -> None:
            try:
                self._inner.submit(
                    payload, trace_context=trace_context, future=future
                )
            except BaseException as exc:
                if not future.done():
                    future.set_exception(exc)

        self._loop.call_soon_threadsafe(_submit_on_loop)
        return future

    def request(self, payload: bytes, timeout: float | None = 30.0) -> bytes:
        """Submit and block for the reply (lockstep convenience)."""
        return self.submit(payload).result(timeout)

    def close(self) -> None:
        """Close the pool, stop the loop thread, fail pending futures."""
        if self._closed:
            return
        self._closed = True
        try:
            self._call(self._inner.close(), timeout=10.0)
        except Exception:
            pass  # loop may already be wedged; still stop it below
        self._stop_loop()

    def __enter__(self) -> "SyncAsyncLblClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def make_pipelined_client(
    address: tuple[str, int],
    pool_size: int = 1,
    timeout: float = 30.0,
    transport: str = "thread",
):
    """Build a pipelined client for ``transport`` ("thread" or "async").

    Both return objects with the same surface (``submit`` →
    :class:`concurrent.futures.Future`, ``request``, ``close``,
    ``in_flight``, ``num_connections``, context manager), so callers pick
    a transport by name and change nothing else.
    """
    if transport == "thread":
        from repro.transport.pipeline import PipelinedLblClient

        return PipelinedLblClient(address, pool_size=pool_size, timeout=timeout)
    if transport == "async":
        return SyncAsyncLblClient(address, pool_size=pool_size, timeout=timeout)
    raise ConfigurationError(
        f"unknown transport {transport!r}; expected 'thread' or 'async'"
    )


__all__ = [
    "AsyncPipelinedLblClient",
    "SyncAsyncLblClient",
    "make_pipelined_client",
]
