"""Pipelined LBL transport: many in-flight requests over pooled sockets.

:class:`RemoteLblOrtoa` runs in strict lockstep — one frame out, block, one
frame back — so every access pays a full round trip of dead air.  This
module removes that wait: :class:`PipelinedLblClient` wraps each request in
a multiplexed frame (:func:`repro.transport.framing.wrap_mux`), returns a
:class:`concurrent.futures.Future` immediately, and lets a background
reader thread per connection complete futures as replies arrive — in
whatever order the server finishes them.

The client is transport-only: it moves opaque payloads (serialized
:mod:`repro.core.messages` frames or LOAD records) and interprets nothing
but the error tag.  Epoch ordering for same-key requests is the caller's
job (see :class:`repro.core.sharded.ShardedLblDeployment`), because only
the trusted side knows which payloads touch the same key.

Thread safety: :meth:`submit` may be called from many threads; each
connection has independent send/pending locks and request ids are drawn
from one atomic counter.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from concurrent.futures import Future

from repro.errors import OverloadError, ProtocolError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.metrics import REGISTRY
from repro.obs.propagate import TraceContext
from repro.obs.trace import TRACER
from repro.transport import framing
from repro.transport.server import ERROR_TAG, OVERLOAD_FRAME


class _Connection:
    """One socket plus its reader thread and pending-future table."""

    def __init__(self, address: tuple[str, int], timeout: float) -> None:
        self.sock = socket.create_connection(address, timeout=timeout)
        # The reader blocks on recv indefinitely between replies; request
        # timeouts are enforced by callers waiting on futures instead.
        self.sock.settimeout(None)
        # Bursts of small frames must not wait for ACKs of earlier ones:
        # Nagle + delayed ACK turns a full pipeline window into ~40ms
        # stalls, erasing exactly the overlap pipelining exists for.
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.send_lock = threading.Lock()
        self.pending: dict[int, Future] = {}
        self.pending_lock = threading.Lock()
        self.dead = False
        self.reader = threading.Thread(
            target=self._read_loop, name="lbl-pipeline-reader", daemon=True
        )
        self.reader.start()

    def _read_loop(self) -> None:
        while True:
            try:
                payload = framing.recv_frame(self.sock)
                request_id, inner = framing.unwrap_mux(payload)
            except (ProtocolError, OSError):
                break  # closed, truncated mid-frame, or protocol violation
            if _obs.enabled:
                _ledger.count_wire(
                    _ledger.frame_type(payload), "received", 4 + len(payload)
                )
            with self.pending_lock:
                future = self.pending.pop(request_id, None)
            if future is None:
                continue  # reply for a request nobody is waiting on
            if inner == OVERLOAD_FRAME:
                if _obs.enabled:
                    REGISTRY.counter("transport.overload_frames_received").inc()
                future.set_exception(
                    OverloadError("server shed this request (overloaded)")
                )
            elif inner[:1] == bytes([ERROR_TAG]):
                if _obs.enabled:
                    REGISTRY.counter("transport.error_frames_received").inc()
                future.set_exception(
                    ProtocolError(
                        f"server error: {inner[1:].decode('utf-8', 'replace')}"
                    )
                )
            else:
                future.set_result(inner)
        self.fail_pending(ProtocolError("connection lost with requests in flight"))

    def fail_pending(self, error: ProtocolError) -> None:
        """Mark the connection dead and fail every outstanding future."""
        self.dead = True
        with self.pending_lock:
            orphans = list(self.pending.values())
            self.pending.clear()
        for future in orphans:
            # A future may have completed in a race with the reader; only
            # fail ones still waiting.
            if not future.done():
                future.set_exception(error)

    def close(self) -> None:
        """Close the socket; the reader exits and fails any stragglers."""
        self.dead = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


class PipelinedLblClient:
    """A connection pool speaking the multiplexed LBL wire format.

    Args:
        address: ``(host, port)`` of a running
            :class:`~repro.transport.server.LblTcpServer`.
        pool_size: Sockets to open; submissions round-robin across them.
        timeout: Connect timeout per socket (seconds).
    """

    def __init__(
        self,
        address: tuple[str, int],
        pool_size: int = 1,
        timeout: float = 30.0,
    ) -> None:
        if pool_size < 1:
            raise ProtocolError("pool_size must be >= 1")
        self.address = address
        self._connections = [_Connection(address, timeout) for _ in range(pool_size)]
        self._ids = itertools.count(1)
        self._rr = itertools.cycle(range(pool_size))
        self._closed = False

    @property
    def num_connections(self) -> int:
        """Sockets in the pool (dead ones included)."""
        return len(self._connections)

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet completed."""
        return sum(len(c.pending) for c in self._connections)

    def _pick(self) -> _Connection:
        for _ in range(len(self._connections)):
            conn = self._connections[next(self._rr)]
            if not conn.dead:
                return conn
        raise ProtocolError(f"all connections to {self.address} are closed")

    def submit(self, payload: bytes, trace_context: bytes | None = None) -> Future:
        """Send one payload; the future completes with the reply bytes.

        ``trace_context`` is the optional 16-byte extension produced by
        :meth:`~repro.obs.propagate.TraceContext.encode`; when omitted and
        observability is enabled, the calling context's current span (if
        any) is propagated automatically, so server-side spans parent
        under the client span that caused them.  The client-observed round
        trip (submit to reply) lands in the
        ``transport.pipeline.roundtrip.seconds`` log histogram.

        The future fails with :class:`~repro.errors.ProtocolError` if the
        server answered with an error frame or the connection died with the
        request in flight.
        """
        if self._closed:
            raise ProtocolError("client is closed")
        if _obs.enabled and trace_context is None:
            span = TRACER.current_span()
            if span is not None:
                trace_context = TraceContext.from_span(span).encode()
        conn = self._pick()
        request_id = next(self._ids)
        future: Future = Future()
        with conn.pending_lock:
            conn.pending[request_id] = future
        if _obs.enabled:
            # Timestamp (and register the done callback) BEFORE the send:
            # the reader thread may complete the future the instant the
            # frame hits the wire, and a timestamp taken after sendall()
            # would then record a near-zero "round trip".
            submitted_at = time.perf_counter()
            roundtrip = REGISTRY.log_histogram("transport.pipeline.roundtrip.seconds")

            def _observe(f: Future) -> None:
                if not f.cancelled() and f.exception() is None:
                    roundtrip.observe(time.perf_counter() - submitted_at)

            future.add_done_callback(_observe)
        try:
            wrapped = framing.wrap_mux(request_id, payload, trace_context)
            if _obs.enabled:
                _ledger.count_wire(
                    _ledger.frame_type(payload), "sent", 4 + len(wrapped)
                )
            with conn.send_lock:
                framing.send_frame(conn.sock, wrapped)
        except OSError as exc:
            with conn.pending_lock:
                conn.pending.pop(request_id, None)
            conn.fail_pending(ProtocolError(f"send failed: {exc}"))
            raise ProtocolError(f"send to {self.address} failed: {exc}") from exc
        if _obs.enabled:
            REGISTRY.counter("transport.pipeline.submitted").inc()
            REGISTRY.gauge("transport.pipeline.in_flight").set(self.in_flight)
        return future

    def request(self, payload: bytes, timeout: float | None = 30.0) -> bytes:
        """Submit and block for the reply (lockstep convenience)."""
        return self.submit(payload).result(timeout)

    def close(self) -> None:
        """Close every socket and fail any still-pending futures."""
        self._closed = True
        for conn in self._connections:
            conn.close()
        for conn in self._connections:
            conn.reader.join(timeout=5.0)
            conn.fail_pending(ProtocolError("client closed with requests in flight"))

    def __enter__(self) -> "PipelinedLblClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = ["PipelinedLblClient"]
