"""Boot and measure a set of LBL storage shards on loopback.

Two backings:

* ``in_process=True`` — each shard is an
  :class:`~repro.transport.server.LblTcpServer` on a daemon thread of this
  process.  Cheap to start and lets tests observe server internals, but
  Python's GIL serializes the shards' compute.
* ``in_process=False`` — each shard runs in its own ``multiprocessing``
  process (spawn start method), so shard *compute* parallelizes across
  physical cores where the machine has them.

The measurement helpers time the *service* window — from the first byte
submitted to the last reply received — with requests prepared (and
responses finalized) outside the clock.  That isolates the storage tier,
which is the thing sharding scales: in the paper's deployment every shard
pairs its own proxy with its own server, whereas this process hosts a
single proxy whose serial table-building would otherwise mask the
server-side speedup.

Because CI machines may expose a single core, the scaling measurement
models each shard's per-request cost as *service time* (an emulated
storage/WAN delay via ``response_delay_s``) rather than local compute —
overlapped waiting scales with shard count on any machine, while Python
compute only scales with physical cores.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from typing import TYPE_CHECKING

from repro.core.lbl.server_coalesce import (
    DEFAULT_WINDOW_SECONDS as DEFAULT_SERVER_WINDOW_SECONDS,
)
from repro.core.messages import LblAccessResponse
from repro.errors import ConfigurationError, ProtocolError
from repro.types import Request, StoreConfig

if TYPE_CHECKING:  # imported lazily at runtime: core.sharded imports this package
    from repro.core.sharded import ShardedLblDeployment


def _serve_shard(conn, point_and_permute: bool, response_delay_s: float,
                 max_workers: int, metrics: bool, enable_obs: bool,
                 transport: str = "thread", server_batch: int = 1,
                 server_window: float = DEFAULT_SERVER_WINDOW_SECONDS,
                 ) -> None:  # pragma: no cover - child process
    """Child-process entry point: bind, report the addresses, serve forever."""
    import threading

    from repro import obs

    if enable_obs:
        # The child records into its own tracer/registry; the trusted side
        # pulls the dump over an OBS_PULL control frame and merges it.
        obs.enable()
    server = _make_shard_server(
        transport,
        point_and_permute=point_and_permute,
        response_delay_s=response_delay_s,
        max_workers=max_workers,
        metrics_port=0 if metrics else None,
        server_batch=server_batch,
        server_window=server_window,
    )
    if transport == "async":
        server.start()
        conn.send({"address": server.address, "metrics": server.metrics_address})
        conn.close()
        threading.Event().wait()  # serve until the parent terminates us
    else:
        conn.send({"address": server.address, "metrics": server.metrics_address})
        conn.close()
        server.serve_forever()


def _make_shard_server(transport: str, point_and_permute: bool,
                       response_delay_s: float, max_workers: int,
                       metrics_port: int | None, server_batch: int = 1,
                       server_window: float = DEFAULT_SERVER_WINDOW_SECONDS):
    """Build one (unstarted for async, bound for thread) shard server."""
    if transport == "thread":
        from repro.transport.server import LblTcpServer

        return LblTcpServer(
            point_and_permute=point_and_permute,
            response_delay_s=response_delay_s,
            max_workers=max_workers,
            metrics_port=metrics_port,
            server_batch=server_batch,
            server_window=server_window,
        )
    if transport == "async":
        from repro.transport.async_server import AsyncLblServer

        return AsyncLblServer(
            point_and_permute=point_and_permute,
            response_delay_s=response_delay_s,
            metrics_port=metrics_port,
            server_batch=server_batch,
            server_window=server_window,
        )
    raise ConfigurationError(
        f"unknown transport {transport!r}; expected 'thread' or 'async'"
    )


class ShardCluster:
    """``N`` loopback LBL shard servers, thread- or process-backed.

    Args:
        num_shards: Servers to boot.
        point_and_permute: Must match the clients' configuration.
        in_process: Daemon threads (True) or spawned processes (False).
        response_delay_s: Artificial per-reply delay (WAN emulation).
        max_workers: Mux worker threads per shard.
        metrics: Give every shard a Prometheus scrape endpoint on an
            ephemeral port (read ``metrics_addresses``; ``repro top``
            polls them).
        enable_obs: Enable span/metric capture inside *process-backed*
            shards, so their telemetry can be pulled back over the obs
            control frame at shutdown.  Ignored for in-process shards,
            which share this process's global tracer — the caller already
            controls that with :func:`repro.obs.enable`.
        transport: ``"thread"`` boots
            :class:`~repro.transport.server.LblTcpServer` shards,
            ``"async"`` boots
            :class:`~repro.transport.async_server.AsyncLblServer` shards
            (one event loop each).  The wire format is identical, so
            clients need not know which they got.
        server_batch: Per-shard access-window fusion size (see
            :class:`~repro.transport.server.LblFrameDispatcher`); ``1``
            disables fusion.
        server_window: Per-shard flush timer (seconds) for a partially
            filled access window.
    """

    def __init__(
        self,
        num_shards: int,
        point_and_permute: bool = True,
        in_process: bool = True,
        response_delay_s: float = 0.0,
        max_workers: int = 8,
        metrics: bool = False,
        enable_obs: bool = False,
        transport: str = "thread",
        server_batch: int = 1,
        server_window: float = DEFAULT_SERVER_WINDOW_SECONDS,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if transport not in ("thread", "async"):
            raise ConfigurationError(
                f"unknown transport {transport!r}; expected 'thread' or 'async'"
            )
        self.transport = transport
        self.num_shards = num_shards
        self.point_and_permute = point_and_permute
        self.in_process = in_process
        self.response_delay_s = response_delay_s
        self.max_workers = max_workers
        self.metrics = metrics
        self.enable_obs = enable_obs
        self.server_batch = server_batch
        self.server_window = server_window
        self.addresses: list[tuple[str, int]] = []
        self.metrics_addresses: list[tuple[str, int] | None] = []
        self.servers: list = []  # LblTcpServer when in_process
        self._processes: list[multiprocessing.Process] = []

    def start(self) -> list[tuple[str, int]]:
        """Boot every shard; returns their addresses."""
        if self.addresses:
            raise ConfigurationError("cluster already started")
        if self.in_process:
            for _ in range(self.num_shards):
                server = _make_shard_server(
                    self.transport,
                    point_and_permute=self.point_and_permute,
                    response_delay_s=self.response_delay_s,
                    max_workers=self.max_workers,
                    metrics_port=0 if self.metrics else None,
                    server_batch=self.server_batch,
                    server_window=self.server_window,
                )
                server.serve_in_background()
                self.servers.append(server)
                self.addresses.append(server.address)
                self.metrics_addresses.append(server.metrics_address)
        else:
            ctx = multiprocessing.get_context("spawn")
            for _ in range(self.num_shards):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_serve_shard,
                    args=(
                        child_conn,
                        self.point_and_permute,
                        self.response_delay_s,
                        self.max_workers,
                        self.metrics,
                        self.enable_obs,
                        self.transport,
                        self.server_batch,
                        self.server_window,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                if not parent_conn.poll(30.0):
                    self.stop()
                    raise ProtocolError("shard process failed to report its address")
                try:
                    endpoints = parent_conn.recv()
                except EOFError:
                    self.stop()
                    raise ProtocolError(
                        "shard process died before binding (spawn re-imports "
                        "__main__, which must be importable)"
                    ) from None
                self.addresses.append(endpoints["address"])
                self.metrics_addresses.append(endpoints["metrics"])
                parent_conn.close()
                self._processes.append(process)
        return self.addresses

    def stop(self) -> None:
        """Shut every shard down (idempotent)."""
        for server in self.servers:
            server.close()
        self.servers = []
        for process in self._processes:
            process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)
        self._processes = []
        self.addresses = []
        self.metrics_addresses = []

    def __enter__(self) -> "ShardCluster":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


# --------------------------------------------------------------------- #
# Loopback throughput measurement
# --------------------------------------------------------------------- #


def _prepare_workload(
    deployment: "ShardedLblDeployment", num_requests: int, seed: int
) -> list[tuple[Request, int, int, bytes]]:
    """Initialize one distinct key per request and pre-build every table.

    Returns per request: (request, shard, epoch, serialized payload).
    Distinct keys mean the frames commute, so any submission order and any
    server-side interleaving decodes correctly.
    """
    rng = random.Random(seed)
    value_len = deployment.config.value_len
    keys = [f"bench-{seed}-{i}" for i in range(num_requests)]
    deployment.initialize({key: bytes(value_len) for key in keys})
    prepared = []
    for key in keys:
        if rng.random() < 0.5:
            request = Request.read(key)
        else:
            request = Request.write(key, bytes([rng.randrange(256)]) * value_len)
        shard = deployment.shard_of(key)
        epoch = deployment.proxy.counter(key) + 1
        lbl_request, _ops = deployment.proxy.prepare(request)
        prepared.append((request, shard, epoch, lbl_request.to_bytes()))
    return prepared


def measure_throughput(
    deployment: "ShardedLblDeployment",
    num_requests: int = 64,
    mode: str = "pipelined",
    depth: int = 8,
    seed: int = 0,
) -> dict:
    """Drive ``num_requests`` pre-prepared accesses; return timing stats.

    Modes:
        ``lockstep`` — one frame in flight at a time (request/reply).
        ``pipelined`` — up to ``depth`` frames in flight per shard.

    The returned dict reports the service window (submit → last reply),
    the end-to-end window (including prepare/finalize), and the derived
    requests/sec figures.
    """
    if mode not in ("lockstep", "pipelined"):
        raise ConfigurationError(f"unknown measurement mode {mode!r}")
    total_start = time.perf_counter()
    prepared = _prepare_workload(deployment, num_requests, seed)

    service_start = time.perf_counter()
    replies: list[bytes] = [b""] * len(prepared)
    if mode == "lockstep":
        for index, (_request, shard, _epoch, payload) in enumerate(prepared):
            replies[index] = deployment.clients[shard].submit(payload).result(
                deployment.timeout
            )
    else:
        window: list[tuple[int, object]] = []
        for index, (_request, shard, _epoch, payload) in enumerate(prepared):
            if len(window) >= depth:
                done_index, future = window.pop(0)
                replies[done_index] = future.result(deployment.timeout)
            window.append((index, deployment.clients[shard].submit(payload)))
        for done_index, future in window:
            replies[done_index] = future.result(deployment.timeout)
    service_s = time.perf_counter() - service_start

    for (request, _shard, epoch, _payload), reply in zip(prepared, replies):
        response = LblAccessResponse.from_bytes(reply)
        deployment.proxy.finalize(request.key, response, counter=epoch)
    total_s = time.perf_counter() - total_start

    return {
        "requests": num_requests,
        "mode": mode,
        "depth": depth if mode == "pipelined" else 1,
        "service_s": service_s,
        "total_s": total_s,
        "service_rps": num_requests / service_s if service_s > 0 else float("inf"),
        "total_rps": num_requests / total_s if total_s > 0 else float("inf"),
    }


def measure_shard_scaling(
    shard_counts: tuple[int, ...] = (1, 2, 4),
    num_requests: int = 64,
    value_len: int = 16,
    group_bits: int = 2,
    service_time_s: float = 0.02,
    workers_per_shard: int = 4,
    in_process: bool = True,
    seed: int = 0,
    transport: str = "thread",
    server_batch: int = 1,
    server_window: float = DEFAULT_SERVER_WINDOW_SECONDS,
) -> list[dict]:
    """Batch (pipelined, deep window) throughput as shards are added.

    Each shard server applies ``service_time_s`` of per-request service
    time (``response_delay_s``), standing in for the storage I/O and WAN
    hop a real shard pays per access.  A shard overlaps at most
    ``workers_per_shard`` requests, so its capacity is
    ``workers_per_shard / service_time_s`` and capacity grows linearly
    with shards — *if* the transport actually keeps every shard's pipeline
    full, which is the property this measures.  Modelling the per-request
    cost as service time rather than local compute is what makes the
    measurement meaningful on small CI machines: Python shard processes
    scale with physical cores, and on a single-core box "4 shards" of pure
    compute is the same serial work as one.

    The whole window's frames are submitted before any reply is awaited
    (depth = ``num_requests``), approximating one big batch fanned out
    across shards.
    """
    from repro.core.sharded import ShardedLblDeployment

    config = StoreConfig(
        value_len=value_len, group_bits=group_bits, point_and_permute=True
    )
    rows = []
    baseline_rps = None
    for shards in shard_counts:
        with ShardCluster(
            shards,
            point_and_permute=True,
            in_process=in_process,
            response_delay_s=service_time_s,
            max_workers=workers_per_shard,
            transport=transport,
            server_batch=server_batch,
            server_window=server_window,
        ) as cluster:
            deployment = ShardedLblDeployment(
                config,
                cluster.addresses,
                rng=random.Random(seed),
                transport=transport,
            )
            try:
                stats = measure_throughput(
                    deployment,
                    num_requests=num_requests,
                    mode="pipelined",
                    depth=num_requests,
                    seed=seed,
                )
            finally:
                deployment.close()
        if baseline_rps is None:
            baseline_rps = stats["service_rps"]
        rows.append(
            {
                "shards": shards,
                "requests": num_requests,
                "service_ms_per_request": service_time_s * 1000,
                "service_rps": stats["service_rps"],
                "speedup_vs_1shard": stats["service_rps"] / baseline_rps,
                "end_to_end_rps": stats["total_rps"],
            }
        )
    return rows


def measure_pipeline_gain(
    depths: tuple[int, ...] = (1, 2, 8),
    num_requests: int = 48,
    value_len: int = 32,
    group_bits: int = 2,
    emulated_rtt_s: float = 0.01,
    in_process: bool = True,
    seed: int = 0,
    transport: str = "thread",
) -> list[dict]:
    """Lockstep vs pipelined throughput on one shard with an emulated WAN.

    ``emulated_rtt_s`` adds a per-reply delay server-side, standing in for
    the cross-datacenter round trips of the paper's Table 2 — on bare
    loopback the RTT pipelining hides is too small to matter.  Depth 1 is
    true lockstep (request/reply).
    """
    from repro.core.sharded import ShardedLblDeployment

    config = StoreConfig(
        value_len=value_len, group_bits=group_bits, point_and_permute=True
    )
    rows = []
    lockstep_rps = None
    for depth in depths:
        with ShardCluster(
            1,
            point_and_permute=True,
            in_process=in_process,
            response_delay_s=emulated_rtt_s,
            max_workers=max(8, depth),
            transport=transport,
        ) as cluster:
            deployment = ShardedLblDeployment(
                config,
                cluster.addresses,
                rng=random.Random(seed),
                transport=transport,
            )
            try:
                mode = "lockstep" if depth <= 1 else "pipelined"
                stats = measure_throughput(
                    deployment,
                    num_requests=num_requests,
                    mode=mode,
                    depth=depth,
                    seed=seed,
                )
            finally:
                deployment.close()
        if lockstep_rps is None:
            lockstep_rps = stats["service_rps"]
        rows.append(
            {
                "depth": depth,
                "requests": num_requests,
                "emulated_rtt_ms": emulated_rtt_s * 1000,
                "service_rps": stats["service_rps"],
                "speedup_vs_lockstep": stats["service_rps"] / lockstep_rps,
            }
        )
    return rows


__all__ = [
    "ShardCluster",
    "measure_throughput",
    "measure_shard_scaling",
    "measure_pipeline_gain",
]
