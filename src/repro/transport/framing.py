"""Length-prefixed framing over stream sockets, plus request multiplexing.

One frame = 4-byte big-endian payload length + payload.  The payload is a
serialized :mod:`repro.core.messages` message (the first byte is its tag),
so the framing layer stays completely protocol-agnostic.

Pipelined clients additionally *multiplex* frames: a mux frame's payload is
``[MUX_TAG][8-byte big-endian request id][inner payload]``.  The id lets a
client keep many requests in flight over one socket and match responses as
they come back — possibly out of order — instead of the strict
request/reply lockstep of plain frames.  Because :data:`MUX_TAG` is just
another tag byte, mux and plain frames share one connection and servers
stay backward compatible: a peer that never sends mux frames never sees
one back.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import ProtocolError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY

_LEN = struct.Struct(">I")

#: Upper bound on a single frame; a 600 B-value LBL request is ~500 kB, so
#: 64 MiB leaves orders of magnitude of headroom while bounding a hostile
#: peer's allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one frame; raises ProtocolError on oversize payloads."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the maximum")
    sock.sendall(_LEN.pack(len(payload)) + payload)
    if _obs.enabled:
        REGISTRY.counter("transport.frames_sent").inc()
        REGISTRY.counter("transport.bytes_sent").inc(_LEN.size + len(payload))


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on a closed connection."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one frame; raises ProtocolError on malformed lengths."""
    (length,) = _LEN.unpack(recv_exact(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame; refusing")
    payload = recv_exact(sock, length)
    if _obs.enabled:
        REGISTRY.counter("transport.frames_received").inc()
        REGISTRY.counter("transport.bytes_received").inc(_LEN.size + length)
    return payload


# --------------------------------------------------------------------- #
# Request multiplexing (pipelined connections)
# --------------------------------------------------------------------- #

#: Tag byte marking a multiplexed frame payload.
MUX_TAG = 0x50
#: Tag byte marking a multiplexed frame that also carries a trace context.
MUX_TRACED_TAG = 0x51
#: Width of the request id carried by every mux frame.
REQUEST_ID_BYTES = 8
#: Width of the optional trace-context extension (8-byte trace id + 8-byte
#: span id, see :mod:`repro.obs.propagate`).  Fixed-size by design: the
#: extension must not vary with anything about the request, or telemetry
#: itself would become a side channel.
TRACE_CONTEXT_BYTES = 16
#: Request ids are unsigned and must fit :data:`REQUEST_ID_BYTES`.
MAX_REQUEST_ID = 2 ** (8 * REQUEST_ID_BYTES) - 1
_MUX_HEADER = 1 + REQUEST_ID_BYTES
_TRACED_HEADER = _MUX_HEADER + TRACE_CONTEXT_BYTES


def wrap_mux(request_id: int, payload: bytes, trace_context: bytes | None = None) -> bytes:
    """Prefix ``payload`` with the mux tag, ``request_id``, and optionally
    a :data:`TRACE_CONTEXT_BYTES`-byte trace context.

    The framing layer treats the context as opaque bytes — producing and
    consuming it is :mod:`repro.obs.propagate`'s job — but enforces the
    fixed width so a traced GET and a traced PUT frame stay identically
    shaped.
    """
    if not 0 <= request_id <= MAX_REQUEST_ID:
        raise ProtocolError(f"request id {request_id} out of range")
    encoded_id = request_id.to_bytes(REQUEST_ID_BYTES, "big")
    if trace_context is None:
        return bytes([MUX_TAG]) + encoded_id + payload
    if len(trace_context) != TRACE_CONTEXT_BYTES:
        raise ProtocolError(
            f"trace context must be {TRACE_CONTEXT_BYTES} bytes, "
            f"got {len(trace_context)}"
        )
    return bytes([MUX_TRACED_TAG]) + encoded_id + trace_context + payload


def unwrap_mux_traced(payload: bytes) -> tuple[int, bytes, bytes | None]:
    """Split a mux frame into (request id, inner payload, trace context).

    The context is ``None`` for plain :data:`MUX_TAG` frames, so servers
    handle traced and untraced peers through one code path.
    """
    if len(payload) < _MUX_HEADER:
        raise ProtocolError("malformed multiplexed frame")
    request_id = int.from_bytes(payload[1:_MUX_HEADER], "big")
    if payload[0] == MUX_TAG:
        return request_id, payload[_MUX_HEADER:], None
    if payload[0] == MUX_TRACED_TAG:
        if len(payload) < _TRACED_HEADER:
            raise ProtocolError("truncated trace context on multiplexed frame")
        return (
            request_id,
            payload[_TRACED_HEADER:],
            payload[_MUX_HEADER:_TRACED_HEADER],
        )
    raise ProtocolError("malformed multiplexed frame")


def unwrap_mux(payload: bytes) -> tuple[int, bytes]:
    """Split a mux frame payload into (request id, inner payload).

    Accepts both plain and traced frames, discarding the trace context —
    reply paths that never look at telemetry keep their old signature.
    """
    request_id, inner, _context = unwrap_mux_traced(payload)
    return request_id, inner


def is_mux(payload: bytes) -> bool:
    """Whether a frame payload carries a mux tag (traced or not)."""
    return bool(payload) and payload[0] in (MUX_TAG, MUX_TRACED_TAG)


__all__ = [
    "send_frame",
    "recv_frame",
    "recv_exact",
    "MAX_FRAME_BYTES",
    "MUX_TAG",
    "MUX_TRACED_TAG",
    "REQUEST_ID_BYTES",
    "TRACE_CONTEXT_BYTES",
    "MAX_REQUEST_ID",
    "wrap_mux",
    "unwrap_mux",
    "unwrap_mux_traced",
    "is_mux",
]
