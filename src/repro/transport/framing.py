"""Length-prefixed framing over stream sockets, plus request multiplexing.

One frame = 4-byte big-endian payload length + payload.  The payload is a
serialized :mod:`repro.core.messages` message (the first byte is its tag),
so the framing layer stays completely protocol-agnostic.

Pipelined clients additionally *multiplex* frames: a mux frame's payload is
``[MUX_TAG][8-byte big-endian request id][inner payload]``.  The id lets a
client keep many requests in flight over one socket and match responses as
they come back — possibly out of order — instead of the strict
request/reply lockstep of plain frames.  Because :data:`MUX_TAG` is just
another tag byte, mux and plain frames share one connection and servers
stay backward compatible: a peer that never sends mux frames never sees
one back.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import ProtocolError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY

_LEN = struct.Struct(">I")

#: Upper bound on a single frame; a 600 B-value LBL request is ~500 kB, so
#: 64 MiB leaves orders of magnitude of headroom while bounding a hostile
#: peer's allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one frame; raises ProtocolError on oversize payloads."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the maximum")
    sock.sendall(_LEN.pack(len(payload)) + payload)
    if _obs.enabled:
        REGISTRY.counter("transport.frames_sent").inc()
        REGISTRY.counter("transport.bytes_sent").inc(_LEN.size + len(payload))


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on a closed connection."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one frame; raises ProtocolError on malformed lengths."""
    (length,) = _LEN.unpack(recv_exact(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame; refusing")
    payload = recv_exact(sock, length)
    if _obs.enabled:
        REGISTRY.counter("transport.frames_received").inc()
        REGISTRY.counter("transport.bytes_received").inc(_LEN.size + length)
    return payload


# --------------------------------------------------------------------- #
# Request multiplexing (pipelined connections)
# --------------------------------------------------------------------- #

#: Tag byte marking a multiplexed frame payload.
MUX_TAG = 0x50
#: Width of the request id carried by every mux frame.
REQUEST_ID_BYTES = 8
#: Request ids are unsigned and must fit :data:`REQUEST_ID_BYTES`.
MAX_REQUEST_ID = 2 ** (8 * REQUEST_ID_BYTES) - 1
_MUX_HEADER = 1 + REQUEST_ID_BYTES


def wrap_mux(request_id: int, payload: bytes) -> bytes:
    """Prefix ``payload`` with the mux tag and ``request_id``."""
    if not 0 <= request_id <= MAX_REQUEST_ID:
        raise ProtocolError(f"request id {request_id} out of range")
    return bytes([MUX_TAG]) + request_id.to_bytes(REQUEST_ID_BYTES, "big") + payload


def unwrap_mux(payload: bytes) -> tuple[int, bytes]:
    """Split a mux frame payload into (request id, inner payload)."""
    if len(payload) < _MUX_HEADER or payload[0] != MUX_TAG:
        raise ProtocolError("malformed multiplexed frame")
    request_id = int.from_bytes(payload[1:_MUX_HEADER], "big")
    return request_id, payload[_MUX_HEADER:]


def is_mux(payload: bytes) -> bool:
    """Whether a frame payload carries the mux tag."""
    return bool(payload) and payload[0] == MUX_TAG


__all__ = [
    "send_frame",
    "recv_frame",
    "recv_exact",
    "MAX_FRAME_BYTES",
    "MUX_TAG",
    "REQUEST_ID_BYTES",
    "MAX_REQUEST_ID",
    "wrap_mux",
    "unwrap_mux",
    "is_mux",
]
