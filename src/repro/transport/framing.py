"""Length-prefixed framing over stream sockets.

One frame = 4-byte big-endian payload length + payload.  The payload is a
serialized :mod:`repro.core.messages` message (the first byte is its tag),
so the framing layer stays completely protocol-agnostic.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import ProtocolError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY

_LEN = struct.Struct(">I")

#: Upper bound on a single frame; a 600 B-value LBL request is ~500 kB, so
#: 64 MiB leaves orders of magnitude of headroom while bounding a hostile
#: peer's allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one frame; raises ProtocolError on oversize payloads."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the maximum")
    sock.sendall(_LEN.pack(len(payload)) + payload)
    if _obs.enabled:
        REGISTRY.counter("transport.frames_sent").inc()
        REGISTRY.counter("transport.bytes_sent").inc(_LEN.size + len(payload))


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on a closed connection."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one frame; raises ProtocolError on malformed lengths."""
    (length,) = _LEN.unpack(recv_exact(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame; refusing")
    payload = recv_exact(sock, length)
    if _obs.enabled:
        REGISTRY.counter("transport.frames_received").inc()
        REGISTRY.counter("transport.bytes_received").inc(_LEN.size + length)
    return payload


__all__ = ["send_frame", "recv_frame", "recv_exact", "MAX_FRAME_BYTES"]
