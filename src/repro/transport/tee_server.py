"""TEE-ORTOA over TCP, including the remote-attestation handshake.

Unlike the LBL transport (where the server needs no secrets ever), a TEE
deployment must get the data key *into the enclave* on the storage host —
and only after proving the enclave runs the expected code.  The wire flow:

1. client → ``ATTEST`` (tag 0x50, carrying a fresh nonce)
2. server → the enclave's quote: measurement + nonce echo + hardware MAC
3. client verifies the quote against the expected measurement via the
   (simulated) manufacturer attestation service, then
4. client → ``PROVISION`` (tag 0x52, the data key)  — stands in for the
   attested secure channel real SGX establishes; see the caveat below
5. server → ack; from then on ``TeeAccessRequest`` frames are served.

Caveat (simulation boundary): step 4 sends the key under the TLS-like
channel assumption of §2.1; real SGX would wrap it for the enclave using a
key-exchange bound into the quote.  The *authorization* logic — no valid
quote, no key; wrong measurement, no key — is fully implemented and tested.
"""

from __future__ import annotations

import socketserver
import threading

from repro.core.messages import TeeAccessRequest, TeeAccessResponse
from repro.errors import OrtoaError, ProtocolError
from repro.storage.kv import KeyValueStore
from repro.tee.attestation import HardwareRoot, Quote
from repro.tee.enclave import Enclave
from repro.transport import framing
from repro.transport.server import ERROR_TAG

ATTEST_TAG = 0x50
QUOTE_TAG = 0x51
PROVISION_TAG = 0x52
PROVISION_ACK = bytes([0x53])
TEE_LOAD_TAG = 0x54
TEE_LOAD_ACK = bytes([0x55])


def pack_quote(quote: Quote) -> bytes:
    """Serialize an attestation quote into a reply frame."""
    out = [bytes([QUOTE_TAG])]
    for field in (quote.measurement, quote.report_data, quote.mac):
        out.append(len(field).to_bytes(2, "big"))
        out.append(field)
    return b"".join(out)


def unpack_quote(payload: bytes) -> Quote:
    """Parse a quote frame; raises ProtocolError when malformed."""
    if not payload or payload[0] != QUOTE_TAG:
        raise ProtocolError("malformed quote frame")
    fields = []
    pos = 1
    for _ in range(3):
        if pos + 2 > len(payload):
            raise ProtocolError("truncated quote frame")
        length = int.from_bytes(payload[pos:pos + 2], "big")
        pos += 2
        fields.append(payload[pos:pos + length])
        pos += length
    if pos != len(payload) or any(len(f) == 0 for f in fields[:1]):
        raise ProtocolError("quote frame length mismatch")
    return Quote(*fields)


class _TeeHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # noqa: D401 - socketserver interface
        server: "TeeTcpServer" = self.server  # type: ignore[assignment]
        while True:
            try:
                payload = framing.recv_frame(self.request)
            except (ProtocolError, OSError):
                return
            try:
                reply = server.dispatch(payload)
            except OrtoaError as exc:
                reply = bytes([ERROR_TAG]) + str(exc).encode("utf-8")
            try:
                framing.send_frame(self.request, reply)
            except OSError:
                return


class TeeTcpServer(socketserver.ThreadingTCPServer):
    """The storage host: KV store + enclave, attestation-gated.

    Args:
        hardware: The machine's root of trust.  Exposed so a test (or the
            data owner's attestation-service handle) can verify quotes; the
            server itself never reads the fused key.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 hardware: HardwareRoot | None = None) -> None:
        super().__init__((host, port), _TeeHandler)
        self.hardware = hardware or HardwareRoot()
        self.enclave = Enclave(self.hardware)
        self.store: KeyValueStore[bytes] = KeyValueStore("tee-tcp-server")
        self._lock = threading.Lock()
        self._serve_thread: threading.Thread | None = None
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is bound to."""
        return self.socket.getsockname()

    def serve_in_background(self) -> threading.Thread:
        """Start serving on a daemon thread (idempotent); returns the thread."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="tee-tcp-serve", daemon=True
            )
            self._serve_thread.start()
        return self._serve_thread

    def close(self) -> None:
        """Stop serving, join the background thread, release the socket.

        Idempotent; the common lifecycle shared by every transport server
        (see :meth:`repro.transport.server.LblTcpServer.close`).
        """
        if self._closed:
            return
        self._closed = True
        if self._serve_thread is not None:
            self.shutdown()
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        self.server_close()

    def __enter__(self) -> "TeeTcpServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def dispatch(self, payload: bytes) -> bytes:
        """Route one frame; returns the serialized reply."""
        if not payload:
            raise ProtocolError("empty frame")
        tag = payload[0]
        if tag == ATTEST_TAG:
            nonce = payload[1:]
            return pack_quote(self.enclave.generate_quote(report_data=nonce))
        if tag == PROVISION_TAG:
            with self._lock:
                self.enclave.provision_key(payload[1:])
            return PROVISION_ACK
        if tag == TEE_LOAD_TAG:
            key_len = int.from_bytes(payload[1:5], "big")
            encoded_key = payload[5:5 + key_len]
            ciphertext = payload[5 + key_len:]
            if len(encoded_key) != key_len or not ciphertext:
                raise ProtocolError("malformed TEE load record")
            with self._lock:
                self.store.put(encoded_key, ciphertext)
            return TEE_LOAD_ACK
        if tag == TeeAccessRequest.TAG:
            if not self.enclave.is_provisioned:
                raise ProtocolError(
                    "enclave not provisioned; complete attestation first"
                )
            request = TeeAccessRequest.from_bytes(payload)
            with self._lock:
                v_old_ct = self.store.get(request.encoded_key)
                result_ct = self.enclave.ecall_select_and_reencrypt(
                    request.selector_ct, v_old_ct, request.new_value_ct
                )
                self.store.put(request.encoded_key, result_ct)
            return TeeAccessResponse(result_ct).to_bytes()
        raise ProtocolError(f"unknown frame tag {tag:#x}")


__all__ = [
    "TeeTcpServer",
    "pack_quote",
    "unpack_quote",
    "ATTEST_TAG",
    "QUOTE_TAG",
    "PROVISION_TAG",
    "PROVISION_ACK",
    "TEE_LOAD_TAG",
    "TEE_LOAD_ACK",
]
