"""Real network transport: LBL-ORTOA over TCP sockets.

Everything else in the repository exchanges messages by function call (with
byte-exact serialization) or on the simulated WAN.  This package closes the
last gap to a deployable system: a threaded TCP server hosting the
untrusted :class:`~repro.core.lbl.server.LblServer`, and a client-side
deployment whose proxy talks to it over a real socket with length-prefixed
frames.  The wire carries exactly the serialized messages of
:mod:`repro.core.messages` — nothing protocol-visible changes, so all
security properties carry over verbatim.

Use :class:`~repro.transport.server.LblTcpServer` on the storage host and
:class:`~repro.transport.client.RemoteLblOrtoa` wherever the trusted proxy
runs.  For high-throughput deployments,
:class:`~repro.transport.pipeline.PipelinedLblClient` multiplexes many
in-flight requests over pooled sockets (see :mod:`repro.core.sharded`),
and :class:`~repro.transport.cluster.ShardCluster` boots a set of shard
servers (threads or separate processes) for loopback experiments.

For tens of thousands of connections per shard,
:class:`~repro.transport.async_server.AsyncLblServer` serves the identical
wire format from one event loop with bounded in-flight windows, OVERLOAD
load shedding, and graceful drain;
:class:`~repro.transport.async_client.AsyncPipelinedLblClient` (or its
sync facade, via :func:`~repro.transport.async_client.make_pipelined_client`)
is its client twin.  See ``docs/async-transport.md``.
"""

from repro.transport.async_client import (
    AsyncPipelinedLblClient,
    SyncAsyncLblClient,
    make_pipelined_client,
)
from repro.transport.async_server import AsyncLblServer
from repro.transport.client import RemoteLblOrtoa
from repro.transport.cluster import ShardCluster
from repro.transport.pipeline import PipelinedLblClient
from repro.transport.server import LblTcpServer
from repro.transport.tee_client import RemoteTeeOrtoa
from repro.transport.tee_server import TeeTcpServer

__all__ = [
    "LblTcpServer",
    "AsyncLblServer",
    "RemoteLblOrtoa",
    "PipelinedLblClient",
    "AsyncPipelinedLblClient",
    "SyncAsyncLblClient",
    "make_pipelined_client",
    "ShardCluster",
    "TeeTcpServer",
    "RemoteTeeOrtoa",
]
