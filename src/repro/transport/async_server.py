"""Asyncio LBL transport server: one event loop, tens of thousands of conns.

:class:`~repro.transport.server.LblTcpServer` is thread-per-connection with
a worker pool for mux frames — solid at hundreds of connections, dead at
thousands (every connection pins a stack, every reply crosses a lock).
:class:`AsyncLblServer` serves the *same wire protocol* (every tag, every
reply byte-identical — the frame routing is literally the shared
:class:`~repro.transport.server.LblFrameDispatcher`) from a single event
loop, so one shard process holds 10k+ connections in a few MB of state.

What the event loop adds beyond scale:

* **Bounded in-flight windows.**  ``max_in_flight`` (global) and
  ``max_in_flight_per_conn`` cap how many multiplexed requests may be
  queued or executing at once.  The threaded server's pool queue is
  unbounded — a flood parks requests forever and p99 explodes; here the
  window is the contract.
* **Admission control.**  A mux frame arriving over a full window is shed
  *immediately* with the one-byte OVERLOAD frame
  (:data:`~repro.transport.server.OVERLOAD_FRAME`) wrapped under its
  request id.  The shed happens before the inner payload is parsed and the
  frame carries no request-derived content, so a shed GET and a shed PUT
  are byte-identical — load shedding cannot leak the operation type.
* **Graceful drain.**  :meth:`close` stops accepting, answers new requests
  with OVERLOAD, lets in-flight requests finish (bounded by
  ``drain_timeout``), then closes every connection and the loop.
* **Slow-consumer protection.**  Replies are written under a bounded write
  buffer; a peer that stops reading stalls its own connection's writes
  until ``write_timeout_s`` expires, then the connection is aborted —
  one stuck client can never wedge the loop or hold window slots forever.

Ledger attribution survives the event loop because it was built on
:mod:`contextvars`, not threads: every mux request runs in its own
:class:`asyncio.Task`, every task owns a copy of the context, and the
dispatcher's ``ledger.track`` row therefore never bleeds between
interleaved requests on the one loop thread.

The server runs its loop on a dedicated background thread so the
synchronous lifecycle (``start`` / ``close`` / context manager) matches
:class:`~repro.transport.server.LblTcpServer` — a :class:`ShardCluster`
boots either transport through the same calls.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

from repro.core.lbl.server_coalesce import (
    DEFAULT_WINDOW_SECONDS as DEFAULT_SERVER_WINDOW_SECONDS,
)
from repro.core.messages import LblAccessRequest
from repro.errors import ConfigurationError, OrtoaError, ProtocolError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.propagate import REMOTE_PARENT_ATTR, TraceContext, remote_parent
from repro.obs.recorder import RECORDER
from repro.obs.trace import TRACER
from repro.transport import framing
from repro.transport.framing import MAX_FRAME_BYTES, _LEN
from repro.transport.server import (
    ERROR_TAG,
    LblFrameDispatcher,
    OVERLOAD_FRAME,
)

_log = get_logger("transport.async_server")

#: How often the event-loop lag probe reschedules itself.  The probe asks
#: the loop to wake it after exactly this long; any excess is time the loop
#: spent busy (or blocked) instead of polling — the classic saturation
#: signal for a single-threaded event loop.
LOOP_LAG_PROBE_INTERVAL_S = 0.25


class _ConnState:
    """Book-keeping for one live connection on the loop."""

    __slots__ = ("writer", "write_lock", "in_flight", "dead")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.in_flight = 0
        self.dead = False


class AsyncLblServer:
    """An asyncio front over one LBL server instance (one event loop).

    Args:
        host: Bind address (use ``127.0.0.1`` for tests).
        port: Bind port (0 picks an ephemeral one; read ``address``).
        point_and_permute: Must match the clients' configuration.
        max_in_flight: Global bound on multiplexed requests queued or
            executing; frames beyond it are shed with OVERLOAD.
        max_in_flight_per_conn: The same bound per connection, so one
            greedy client cannot monopolize the global window.
        response_delay_s: Artificial delay before every mux reply,
            emulating a WAN round trip on loopback (benchmarks only).
        write_timeout_s: How long one reply write may stall on a
            non-reading peer before the connection is aborted.
        write_buffer_bytes: When set, caps the kernel send buffer and the
            transport's write high-water mark, so slow-consumer tests hit
            the write-timeout path with small payloads.
        backlog: Listen backlog (raise for C10K-style connect storms).
        metrics_port: When not ``None``, serve this process's metrics
            registry as Prometheus text on ``http://host:metrics_port``
            (0 picks an ephemeral port; read ``metrics_address``).
        server_batch: Access-window fusion size (see
            :class:`~repro.transport.server.LblFrameDispatcher`); ``1``
            disables fusion.  Above 1, access frames always dispatch as
            their own Task — an inline await would park the connection's
            read loop on the window future and stop later frames from the
            same connection from ever filling the window.
        server_window: Flush timer (seconds) for a partially filled access
            window, armed via ``loop.call_later`` (an event loop cannot
            block in the coalescer's leader poll).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        point_and_permute: bool = True,
        max_in_flight: int = 1024,
        max_in_flight_per_conn: int = 128,
        response_delay_s: float = 0.0,
        write_timeout_s: float = 30.0,
        write_buffer_bytes: int | None = None,
        backlog: int = 2048,
        metrics_port: int | None = None,
        server_batch: int = 1,
        server_window: float = DEFAULT_SERVER_WINDOW_SECONDS,
    ) -> None:
        if max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be >= 1")
        if max_in_flight_per_conn < 1:
            raise ConfigurationError("max_in_flight_per_conn must be >= 1")
        if response_delay_s < 0:
            raise ConfigurationError("response_delay_s cannot be negative")
        if write_timeout_s <= 0:
            raise ConfigurationError("write_timeout_s must be positive")
        self._host = host
        self._port = port
        self._backlog = backlog
        self._metrics_port = metrics_port
        self.max_in_flight = max_in_flight
        self.max_in_flight_per_conn = max_in_flight_per_conn
        self.response_delay_s = response_delay_s
        self.write_timeout_s = write_timeout_s
        self.write_buffer_bytes = write_buffer_bytes
        # drain() only blocks once the transport's buffer passes its high
        # water mark (the explicit cap, or asyncio's 64 KiB default); below
        # that the whole wait_for+drain round is a guaranteed no-op, and
        # skipping it saves a Task per reply on the hot path.
        self._write_high_water = (
            write_buffer_bytes if write_buffer_bytes is not None else 64 * 1024
        )
        # One loop means dispatches never overlap mid-mutation: tasks only
        # yield at awaits, and the dispatcher never awaits — so no locks.
        # Window fusion keeps that invariant: a coalesced access awaits a
        # future, but the flush itself (process_many) never awaits, so the
        # store still mutates atomically between yield points.
        self.dispatcher = LblFrameDispatcher(
            point_and_permute=point_and_permute,
            locking=False,
            server_batch=server_batch,
            server_window=server_window,
        )
        self.lbl = self.dispatcher.lbl
        self.metrics_server = None

        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._thread: threading.Thread | None = None
        self._address: tuple[str, int] | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._closed = False
        self._draining = False
        self._in_flight = 0
        self._peak_in_flight = 0
        self._overloads_sent = 0
        self._idle: asyncio.Event | None = None  # created on the loop
        self._conns: set[_ConnState] = set()
        self._tasks: set[asyncio.Task] = set()
        self._window_full = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is bound to."""
        if self._address is None:
            raise ConfigurationError("server not started; call start() first")
        return self._address

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """The (host, port) of the Prometheus scrape endpoint, if enabled."""
        if self.metrics_server is None:
            return None
        return self.metrics_server.server_address

    @property
    def in_flight(self) -> int:
        """Multiplexed requests currently queued or executing."""
        return self._in_flight

    @property
    def peak_in_flight(self) -> int:
        """High-water mark of :attr:`in_flight` since start."""
        return self._peak_in_flight

    @property
    def overloads_sent(self) -> int:
        """Requests shed with an OVERLOAD frame since start."""
        return self._overloads_sent

    @property
    def num_connections(self) -> int:
        """Connections currently open on the loop."""
        return len(self._conns)

    @property
    def draining(self) -> bool:
        """Whether the server is refusing new work for shutdown."""
        return self._draining

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "AsyncLblServer":
        """Bind and serve on a dedicated event-loop thread (idempotent)."""
        if self._thread is not None:
            return self
        if self._closed:
            raise ConfigurationError("server already closed")
        self._thread = threading.Thread(
            target=self._run_loop, name="lbl-async-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise ProtocolError("async server failed to start within 30s")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise self._startup_error
        if self._metrics_port is not None:
            from repro.obs.export import start_metrics_server

            self.metrics_server = start_metrics_server(
                self._host, self._metrics_port
            )
        return self

    def serve_in_background(self) -> threading.Thread:
        """Alias for :meth:`start` returning the loop thread, mirroring
        :meth:`~repro.transport.server.LblTcpServer.serve_in_background`."""
        self.start()
        assert self._thread is not None
        return self._thread

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_conn,
                    self._host,
                    self._port,
                    backlog=self._backlog,
                )
            )
        except BaseException as exc:  # bind failure: surface it in start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._server = server
        self._idle = asyncio.Event()
        self._idle.set()
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        loop.create_task(self._lag_probe())
        try:
            loop.run_forever()
        finally:
            # Cancel anything the drain left behind, then let cancellations
            # unwind before closing the loop.
            for task in asyncio.all_tasks(loop):
                task.cancel()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def close(self, drain_timeout: float = 10.0) -> None:
        """Graceful drain then shutdown (idempotent).

        Stops accepting, sheds new requests with OVERLOAD, waits up to
        ``drain_timeout`` seconds for in-flight requests to finish, closes
        every connection, and stops the loop thread.
        """
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._thread is not None:
            try:
                done = asyncio.run_coroutine_threadsafe(
                    self._shutdown(drain_timeout), self._loop
                )
                done.result(timeout=drain_timeout + 30.0)
            except Exception:  # loop died mid-shutdown: still join below
                _log.warning("async server drain did not complete cleanly")
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._thread = None
        if self.metrics_server is not None:
            self.metrics_server.shutdown()
            self.metrics_server.server_close()
            self.metrics_server = None

    async def _shutdown(self, drain_timeout: float) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._idle is not None
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=drain_timeout)
        except asyncio.TimeoutError:
            _log.warning(
                "drain timed out with %d requests in flight", self._in_flight
            )
        for conn in list(self._conns):
            conn.dead = True
            conn.writer.close()

    def __enter__(self) -> "AsyncLblServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Connection handling (loop side)
    # ------------------------------------------------------------------ #

    async def _lag_probe(self) -> None:
        """Measure event-loop scheduling lag at a fixed cadence.

        Sleeps a fixed interval and gauges how late the loop woke it —
        the direct measure of dispatch saturation on a one-loop server.
        The probe also refreshes the window-limit gauges so scrapers
        (``repro top`` / ``repro doctor``) can compute occupancy ratios
        from one snapshot.
        """
        loop = asyncio.get_running_loop()
        while True:
            scheduled = loop.time()
            await asyncio.sleep(LOOP_LAG_PROBE_INTERVAL_S)
            lag_s = max(0.0, loop.time() - scheduled - LOOP_LAG_PROBE_INTERVAL_S)
            if _obs.enabled:
                REGISTRY.gauge("transport.async.loop_lag_ms").set(lag_s * 1e3)
                REGISTRY.gauge("transport.server.max_in_flight").set(
                    self.max_in_flight
                )
                REGISTRY.gauge("transport.server.max_in_flight_per_conn").set(
                    self.max_in_flight_per_conn
                )

    def _track_in_flight(self, delta: int) -> None:
        self._in_flight += delta
        assert self._idle is not None
        if self._in_flight == 0:
            self._idle.set()
        else:
            self._idle.clear()
            if self._in_flight > self._peak_in_flight:
                self._peak_in_flight = self._in_flight
        if _obs.enabled:
            REGISTRY.gauge("transport.server.in_flight").set(self._in_flight)
            # Window-occupancy *transitions* go to the flight recorder:
            # the gauge says how full the window is now, the events say
            # exactly when it saturated and when it recovered.
            full = self._in_flight >= self.max_in_flight
            if full != self._window_full:
                self._window_full = full
                RECORDER.record(
                    "transport.window.full" if full else "transport.window.available",
                    in_flight=self._in_flight,
                    max_in_flight=self.max_in_flight,
                )
        elif self._window_full and self._in_flight < self.max_in_flight:
            self._window_full = False

    async def _write_frame(self, conn: _ConnState, payload: bytes) -> None:
        """Write one frame, bounded by the write timeout.

        The lock orders frames from concurrent tasks; ``drain()`` under the
        bounded write buffer is the backpressure point — a non-reading peer
        stalls here until the timeout aborts its connection.
        """
        if conn.dead:
            raise ConnectionResetError("connection already aborted")
        if len(payload) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(payload)} bytes exceeds the maximum"
            )
        async with conn.write_lock:
            if conn.dead:
                raise ConnectionResetError("connection already aborted")
            conn.writer.write(_LEN.pack(len(payload)) + payload)
            if (
                conn.writer.transport.get_write_buffer_size()
                > self._write_high_water
            ):
                try:
                    await asyncio.wait_for(
                        conn.writer.drain(), timeout=self.write_timeout_s
                    )
                except asyncio.TimeoutError:
                    _log.warning(
                        "reply write stalled > %.1fs; aborting slow consumer",
                        self.write_timeout_s,
                    )
                    if _obs.enabled:
                        REGISTRY.counter(
                            "transport.async.slow_consumer_aborts"
                        ).inc()
                        RECORDER.record(
                            "transport.slow_consumer_abort",
                            write_timeout_s=self.write_timeout_s,
                            in_flight=self._in_flight,
                            conn_in_flight=conn.in_flight,
                        )
                        RECORDER.trigger("slow-consumer-abort")
                    conn.dead = True
                    conn.writer.transport.abort()
                    raise ConnectionResetError("slow consumer aborted") from None
        if _obs.enabled:
            REGISTRY.counter("transport.frames_sent").inc()
            REGISTRY.counter("transport.bytes_sent").inc(_LEN.size + len(payload))

    async def _send_overload(self, conn: _ConnState, request_id: int | None) -> None:
        """Shed one request: constant one-byte OVERLOAD frame, mux-wrapped
        under the request id when the request was multiplexed.

        Runs *before* the inner payload is parsed, so nothing about the
        reply — bytes, timing, ordering — depends on the operation type.
        """
        self._overloads_sent += 1
        if _obs.enabled:
            REGISTRY.counter("transport.overload_frames_sent").inc()
        reply = (
            OVERLOAD_FRAME
            if request_id is None
            else framing.wrap_mux(request_id, OVERLOAD_FRAME)
        )
        if _obs.enabled:
            _ledger.count_wire("overload", "sent", 4 + len(reply), role="server")
        try:
            await self._write_frame(conn, reply)
        except (ConnectionError, OSError):
            pass  # peer gone; the shed already freed the slot

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Replies from independent tasks are small frames; without
            # NODELAY, Nagle holds each until the client ACKs the previous
            # one and pipelined replies serialize on delayed ACKs.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self.write_buffer_bytes is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, self.write_buffer_bytes
                )
        if self.write_buffer_bytes is not None:
            writer.transport.set_write_buffer_limits(high=self.write_buffer_bytes)
        conn = _ConnState(writer)
        self._conns.add(conn)
        if _obs.enabled:
            REGISTRY.gauge("transport.async.connections").set(len(self._conns))
        try:
            await self._read_loop(reader, conn)
        finally:
            self._conns.discard(conn)
            if _obs.enabled:
                REGISTRY.gauge("transport.async.connections").set(len(self._conns))
            conn.dead = True
            try:
                writer.close()
            except Exception:  # transport already aborted
                pass

    async def _read_loop(self, reader: asyncio.StreamReader, conn: _ConnState) -> None:
        while True:
            try:
                header = await reader.readexactly(_LEN.size)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return  # closed (possibly mid-header; that's fine)
            (length,) = _LEN.unpack(header)
            if length > MAX_FRAME_BYTES:
                # A hostile length would force an unbounded allocation (or
                # an unbounded skip); describe the refusal, then hang up.
                try:
                    await self._write_frame(
                        conn,
                        bytes([ERROR_TAG])
                        + f"peer announced a {length}-byte frame; refusing".encode(),
                    )
                except (ConnectionError, OSError):
                    pass
                return
            try:
                payload = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return  # truncated mid-frame
            if _obs.enabled:
                REGISTRY.counter("transport.frames_received").inc()
                REGISTRY.counter("transport.bytes_received").inc(
                    _LEN.size + length
                )
            if framing.is_mux(payload):
                await self._admit_mux(conn, payload)
                continue
            # Plain (lockstep) frames: strict request/reply on this
            # connection, dispatched inline on the loop.
            if _obs.enabled:
                _ledger.count_wire(
                    _ledger.frame_type(payload),
                    "received",
                    4 + len(payload),
                    role="server",
                )
            if self._draining:
                await self._send_overload(conn, request_id=None)
                continue
            if self._coalesce_access(payload):
                # Lockstep connections are strict request/reply anyway, so
                # awaiting the window future here only parks this
                # connection — frames from other connections keep filling
                # the window while we wait.
                reply = await self._safe_dispatch_coalesced(payload)
            else:
                reply = self.dispatcher.safe_dispatch(payload)
            if _obs.enabled:
                _ledger.count_wire(
                    _ledger.frame_type(reply), "sent", 4 + len(reply), role="server"
                )
            try:
                await self._write_frame(conn, reply)
            except (ConnectionError, OSError):
                return

    async def _admit_mux(self, conn: _ConnState, payload: bytes) -> None:
        """Admission control: window check *before* touching the payload."""
        try:
            request_id, inner, trace_context = framing.unwrap_mux_traced(payload)
        except ProtocolError as exc:
            # No id to mirror: reply with a plain error frame so the client
            # at least sees a described failure.
            try:
                await self._write_frame(
                    conn, bytes([ERROR_TAG]) + str(exc).encode("utf-8")
                )
            except (ConnectionError, OSError):
                pass
            return
        if _obs.enabled:
            REGISTRY.counter("transport.mux_frames_received").inc()
            _ledger.count_wire(
                _ledger.frame_type(payload), "received", 4 + len(payload),
                role="server",
            )
        if (
            self._draining
            or self._in_flight >= self.max_in_flight
            or conn.in_flight >= self.max_in_flight_per_conn
        ):
            if _obs.enabled:
                # The three causes are only distinguishable here, before
                # the shed; the event carries window state, never request
                # content (the inner payload is still unparsed), so shed
                # GET and shed PUT events are shape-identical.
                cause = (
                    "draining"
                    if self._draining
                    else "global-window"
                    if self._in_flight >= self.max_in_flight
                    else "per-conn-window"
                )
                RECORDER.record_shed(
                    cause,
                    in_flight=self._in_flight,
                    conn_in_flight=conn.in_flight,
                    max_in_flight=self.max_in_flight,
                    max_per_conn=self.max_in_flight_per_conn,
                )
            await self._send_overload(conn, request_id)
            return
        conn.in_flight += 1
        self._track_in_flight(+1)
        if not self.response_delay_s and not self._coalesce_access(inner):
            # The dispatcher is synchronous and the reply write buffers
            # without blocking below the high-water mark, so at zero delay
            # a Task per request buys no concurrency — handling inline
            # keeps admission accounting identical and skips the Task.
            # Coalesced access frames are the exception: they await the
            # window future, and an inline await would park this
            # connection's read loop, stopping its later frames from ever
            # filling the window — so they always get their own Task.
            await self._handle_mux(conn, request_id, inner, trace_context)
            return
        task = asyncio.get_running_loop().create_task(
            self._handle_mux(conn, request_id, inner, trace_context)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------ #
    # Access-window fusion (loop side)
    # ------------------------------------------------------------------ #

    def _coalesce_access(self, inner: bytes) -> bool:
        """Whether this frame routes through the access coalescer."""
        return (
            self.dispatcher.coalescer is not None
            and bool(inner)
            and inner[0] == LblAccessRequest.TAG
        )

    async def _dispatch_coalesced(self, inner: bytes) -> bytes:
        """Submit one access frame into the window; await its result.

        The async half of the coalescer protocol: enqueue, then either
        flush immediately (window filled) or arm a ``loop.call_later``
        timer for this window's generation — a stale timer no-ops once the
        window has flushed.  The flush runs synchronously on the loop (it
        never awaits), resolving every entry's future in turn.
        """
        if _obs.enabled:
            REGISTRY.counter("transport.requests_dispatched").inc()
        request = LblAccessRequest.from_bytes(inner)
        coalescer = self.dispatcher.coalescer
        assert coalescer is not None
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()

        def _resolve(entry) -> None:
            if not future.done():
                future.set_result(entry)

        entry, is_leader, is_full, generation, _full = coalescer.submit(
            request, _ledger.current_row(), on_done=_resolve
        )
        if is_full:
            coalescer.flush_pending("size", generation)
        elif is_leader:
            loop.call_later(
                coalescer.window, coalescer.flush_pending, "timer", generation
            )
        entry = await future
        if entry.error is not None:
            raise entry.error
        assert entry.result is not None
        return entry.result[0].to_bytes()

    async def _safe_dispatch_coalesced(self, inner: bytes) -> bytes:
        """Coalesced dispatch with ``safe_dispatch`` error semantics."""
        try:
            return await self._dispatch_coalesced(inner)
        except OrtoaError as exc:
            _log.warning("request failed, returning error frame: %s", exc)
            if _obs.enabled:
                REGISTRY.counter("transport.error_frames_sent").inc()
            return bytes([ERROR_TAG]) + str(exc).encode("utf-8")

    async def _traced_dispatch_coalesced(
        self, inner: bytes, trace_context: bytes | None
    ) -> bytes:
        """Async twin of :meth:`LblFrameDispatcher.traced_dispatch`.

        Same span, same server-labeled ledger row, same service histogram —
        but the request span (and the row) stays open across the window
        await, so the fused flush can credit this request's closed-form
        share to exactly this row.
        """
        if not _obs.enabled:
            return await self._safe_dispatch_coalesced(inner)
        start = time.perf_counter()
        parent = None
        attributes = {}
        trace_id = None
        if trace_context is not None:
            try:
                decoded = TraceContext.decode(trace_context)
                parent = remote_parent(decoded)
                trace_id = decoded.trace_id
                attributes[REMOTE_PARENT_ATTR] = True
            except ProtocolError:
                parent = None  # unparseable context: serve the request anyway
        try:
            with TRACER.span("transport.server.request", parent=parent, **attributes):
                with _ledger.track(label="server", trace_id=trace_id):
                    return await self._safe_dispatch_coalesced(inner)
        finally:
            REGISTRY.log_histogram("transport.server.service.seconds").observe(
                time.perf_counter() - start
            )

    async def _handle_mux(
        self,
        conn: _ConnState,
        request_id: int,
        inner: bytes,
        trace_context: bytes | None,
    ) -> None:
        try:
            if self.response_delay_s:
                await asyncio.sleep(self.response_delay_s)
            # Attribution on one loop thread: when this runs as its own
            # task it owns a copy of the context; when it runs inline the
            # dispatcher never awaits, so its ledger row (contextvars) is
            # activated and retired with no interleaving point in between.
            # Either way the row belongs to exactly this request.
            if self._coalesce_access(inner):
                reply = await self._traced_dispatch_coalesced(inner, trace_context)
            elif _obs.enabled:
                reply = self.dispatcher.traced_dispatch(inner, trace_context)
            else:
                reply = self.dispatcher.safe_dispatch(inner)
            try:
                wrapped = framing.wrap_mux(request_id, reply)
                if _obs.enabled:
                    _ledger.count_wire(
                        _ledger.frame_type(reply),
                        "sent",
                        4 + len(wrapped),
                        role="server",
                    )
                await self._write_frame(conn, wrapped)
            except (ConnectionError, OSError):
                pass  # client vanished mid-flight; nothing left to tell it
        finally:
            conn.in_flight -= 1
            self._track_in_flight(-1)


__all__ = ["AsyncLblServer", "LOOP_LAG_PROBE_INTERVAL_S"]
