"""The storage-host side: an LBL-ORTOA server behind a TCP listener.

The server is the *untrusted* party, so this process needs no key material
whatsoever — it stores labels, opens the one ciphertext it can per group,
and rotates state, exactly as :class:`~repro.core.lbl.server.LblServer`
does in-process.

Wire protocol (within the framing of :mod:`repro.transport.framing`):

* a serialized :class:`~repro.core.messages.LblAccessRequest` (tag 0x20)
  → a serialized :class:`~repro.core.messages.LblAccessResponse`;
* a :class:`~repro.core.messages.LblBatchRequest` (tag 0x22) → a
  :class:`~repro.core.messages.LblBatchResponse` whose entries are
  per-request — a failing request yields an
  :class:`~repro.core.messages.LblErrorEntry` at its position while the
  rest of the batch is still applied;
* a LOAD frame (tag 0x40: encoded key + label blob) during bulk
  initialization → a 1-byte ack (0x41);
* a multiplexed frame (tag 0x50: request id + any of the above) → the
  reply wrapped under the same request id.  Mux frames from one connection
  dispatch on a worker pool, so distinct keys process in parallel and
  replies may return out of order — that is the point: pipelined clients
  match replies by id;
* a traced multiplexed frame (tag 0x51: request id + 16-byte trace
  context + inner payload) → handled exactly like 0x50, but the server's
  request span parents under the propagated client span
  (:mod:`repro.obs.propagate`), so a merged trace shows the whole round
  trip.  The extension is fixed-size and content-independent — GET and PUT
  frames stay identically shaped;
* an obs-pull control frame (tag 0x60) → a dump frame (tag 0x61 + JSON of
  this process's finished spans and metrics snapshot).  Process-backed
  shards answer it at shutdown so the client can merge every process's
  telemetry into one trace;
* on any handling error → an error frame (tag 0x7F + UTF-8 message, mux
  wrapped iff the request was), so clients fail with a described exception
  instead of a dead socket;
* on load shedding (asyncio transport only) → an overload frame (tag 0x7E,
  exactly one byte, mux wrapped iff the request was).  The frame carries
  no request-derived content, so a shed GET and a shed PUT are
  byte-identical on the wire.

With ``metrics_port=`` the server additionally exposes its metrics
registry as Prometheus text on an HTTP scrape endpoint
(:func:`repro.obs.export.start_metrics_server`) — ``repro top`` and any
Prometheus scraper read it live.

Concurrency: requests touching the *same* encoded key are serialized by a
striped lock (mirroring :class:`~repro.core.lbl.concurrent.ConcurrentLblProxy`
on the trusted side); requests for distinct keys run in parallel on the
worker pool instead of queueing behind one global lock.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.lbl.concurrent import hold_stripes
from repro.core.lbl.server import LblServer
from repro.core.lbl.server_coalesce import (
    DEFAULT_WINDOW_SECONDS as DEFAULT_SERVER_WINDOW_SECONDS,
    ServerAccessCoalescer,
)
from repro.core.messages import (
    LblAccessRequest,
    LblAccessResponse,
    LblBatchRequest,
    LblBatchResponse,
    LblErrorEntry,
)
from repro.errors import ConfigurationError, OrtoaError, ProtocolError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.propagate import REMOTE_PARENT_ATTR, TraceContext, remote_parent
from repro.obs.trace import TRACER
from repro.storage.persistence import LabelListCodec
from repro.transport import framing

LOAD_TAG = 0x40
LOAD_ACK = bytes([0x41])
#: Control frame asking this process for its telemetry (spans + metrics +
#: flight-recorder ring + tail exemplars).
OBS_PULL_TAG = 0x60
#: Reply to :data:`OBS_PULL_TAG`: the tag followed by a UTF-8 JSON dump.
OBS_DUMP_TAG = 0x61
#: Control frame attaching the sampling profiler in this process.  Optional
#: 4-byte big-endian body: sampling interval in microseconds.
OBS_PROFILE_START_TAG = 0x62
#: Control frame detaching the profiler; the reply carries its export.
OBS_PROFILE_STOP_TAG = 0x63
#: Reply to the profiler control frames: tag + UTF-8 JSON body.
OBS_PROFILE_DUMP_TAG = 0x64
ERROR_TAG = 0x7F
#: Load-shed reply: the server refused to queue the request.  The frame is
#: exactly this one tag byte — no message, no request-derived content — so
#: a shed GET and a shed PUT answer with byte-identical frames and load
#: shedding cannot become an operation-type side channel.
OVERLOAD_TAG = 0x7E
OVERLOAD_FRAME = bytes([OVERLOAD_TAG])

_log = get_logger("transport.server")


def pack_load(encoded_key: bytes, labels) -> bytes:
    """Serialize one bulk-load record."""
    blob = LabelListCodec().encode(labels)
    return (
        bytes([LOAD_TAG])
        + len(encoded_key).to_bytes(4, "big")
        + encoded_key
        + blob
    )


def unpack_load(payload: bytes):
    """Parse a bulk-load record back into (encoded_key, labels)."""
    if len(payload) < 5 or payload[0] != LOAD_TAG:
        raise ProtocolError("malformed load record")
    key_len = int.from_bytes(payload[1:5], "big")
    encoded_key = payload[5:5 + key_len]
    if len(encoded_key) != key_len:
        raise ProtocolError("truncated load record key")
    try:
        labels = LabelListCodec().decode(payload[5 + key_len:])
    except OrtoaError:
        raise
    except Exception as exc:  # struct.error, IndexError on hostile blobs
        raise ProtocolError(f"malformed load record labels: {exc}") from None
    return encoded_key, labels


class LblFrameDispatcher:
    """Transport-agnostic frame router over one :class:`LblServer`.

    The threaded :class:`LblTcpServer` and the asyncio
    :class:`~repro.transport.async_server.AsyncLblServer` speak exactly the
    same frames; this class owns the routing (LOAD / access / batch /
    obs-pull → reply bytes) so the two transports cannot drift apart.

    Args:
        point_and_permute: Must match the clients' configuration.
        num_stripes: Per-key lock stripes for ``locking=True``.
        locking: Serialize same-key requests with striped locks.  A
            multi-threaded transport needs this; an event-loop transport
            whose dispatches never overlap passes ``False`` and pays no
            locking at all.
        server_batch: Access-window fusion size.  ``1`` (the default)
            dispatches each access frame straight into ``LblServer.process``;
            above 1, concurrent access frames coalesce into windows of up
            to this many requests, flushed as one fused
            :meth:`~repro.core.lbl.server.LblServer.process_many`.
        server_window: Flush timer (seconds) for a partially filled access
            window — the longest a lone request waits for company.
        clock: Time source for the window timer (tests inject a
            :class:`~repro.obs.clock.FakeClock`); ``None`` uses wall time.
    """

    def __init__(
        self,
        point_and_permute: bool = True,
        num_stripes: int = 64,
        locking: bool = True,
        server_batch: int = 1,
        server_window: float = DEFAULT_SERVER_WINDOW_SECONDS,
        clock=None,
    ) -> None:
        if num_stripes < 1:
            raise ConfigurationError("num_stripes must be >= 1")
        if server_batch < 1:
            raise ConfigurationError("server_batch must be >= 1")
        self.lbl = LblServer(point_and_permute=point_and_permute)
        self._stripes = (
            [threading.Lock() for _ in range(num_stripes)] if locking else None
        )
        # The coalescer's flush holds every stripe its window touches (in
        # sorted order — see hold_stripes), so fused flushes coexist with
        # the per-key-locked LOAD and batch frame paths.
        self.coalescer: ServerAccessCoalescer | None = (
            ServerAccessCoalescer(
                self.lbl,
                window=server_window,
                max_batch=server_batch,
                clock=clock,
                lock_keys=self._lock_encoded_keys,
            )
            if server_batch > 1
            else None
        )

    def _lock_encoded_keys(self, encoded_keys: "list[bytes]"):
        """Context manager holding the stripes of many keys at once."""
        if self._stripes is None:
            return self._NO_LOCK
        stripes = self._stripes
        return hold_stripes(
            stripes, (hash(key) % len(stripes) for key in encoded_keys)
        )

    class _NoLock:
        def __enter__(self):  # noqa: D401 - trivial context manager
            return self

        def __exit__(self, *_exc) -> None:
            return None

    _NO_LOCK = _NoLock()

    def _stripe_for(self, encoded_key: bytes):
        if self._stripes is None:
            return self._NO_LOCK
        return self._stripes[hash(encoded_key) % len(self._stripes)]

    def safe_dispatch(self, payload: bytes) -> bytes:
        """Dispatch one frame, converting failures into error frames."""
        try:
            return self.dispatch(payload)
        except OrtoaError as exc:
            _log.warning("request failed, returning error frame: %s", exc)
            if _obs.enabled:
                REGISTRY.counter("transport.error_frames_sent").inc()
            return bytes([ERROR_TAG]) + str(exc).encode("utf-8")

    def dispatch(self, payload: bytes) -> bytes:
        """Route one decoded frame; returns the serialized reply."""
        if _obs.enabled:
            REGISTRY.counter("transport.requests_dispatched").inc()
        if not payload:
            raise ProtocolError("empty frame")
        if payload[0] == OBS_PULL_TAG:
            return self.obs_dump()
        if payload[0] in (OBS_PROFILE_START_TAG, OBS_PROFILE_STOP_TAG):
            return self._profile_control(payload)
        if payload[0] == LOAD_TAG:
            encoded_key, labels = unpack_load(payload)
            with self._stripe_for(encoded_key):
                self.lbl.load(encoded_key, labels)
            return LOAD_ACK
        if payload[0] == LblAccessRequest.TAG:
            request = LblAccessRequest.from_bytes(payload)
            if self.coalescer is not None:
                # Window fusion: block in the leader/follower protocol; the
                # flush itself takes the stripes of every key it touches.
                response, _ops = self.coalescer.process(request)
                return response.to_bytes()
            with self._stripe_for(request.encoded_key):
                response, _ops = self.lbl.process(request)
            return response.to_bytes()
        if payload[0] == LblBatchRequest.TAG:
            batch = LblBatchRequest.from_bytes(payload)
            entries: list[LblAccessResponse | LblErrorEntry] = []
            for request in batch.requests:
                # Per-request isolation: requests processed so far have
                # already rotated their labels, so a later failure must not
                # discard them — slot an error entry and keep going.
                try:
                    with self._stripe_for(request.encoded_key):
                        response, _ops = self.lbl.process(request)
                    entries.append(response)
                except OrtoaError as exc:
                    _log.warning("batch request failed: %s", exc)
                    if _obs.enabled:
                        REGISTRY.counter("transport.batch_error_entries").inc()
                    entries.append(LblErrorEntry(str(exc)))
            return LblBatchResponse(tuple(entries)).to_bytes()
        raise ProtocolError(f"unknown frame tag {payload[0]:#x}")

    def obs_dump(self) -> bytes:
        """This process's telemetry as an obs-dump frame.

        Ships finished spans and the metrics snapshot back to the trusted
        side, which merges them via
        :func:`repro.obs.propagate.merge_span_dumps`.  Meaningful for
        process-backed shards (a thread-backed shard already shares the
        client's tracer); returns whatever this process recorded — an
        empty dump when observability was never enabled here.
        """
        from repro.obs.exemplars import EXEMPLARS
        from repro.obs.recorder import RECORDER

        bundle = {
            "spans": TRACER.export(),
            "metrics": REGISTRY.snapshot(),
            "recorder": RECORDER.export(),
            "exemplars": EXEMPLARS.export(),
        }
        return bytes([OBS_DUMP_TAG]) + json.dumps(bundle, default=str).encode("utf-8")

    def _profile_control(self, payload: bytes) -> bytes:
        """Attach/detach the per-process sampling profiler over the wire.

        Start frames may carry a 4-byte big-endian sampling interval in
        microseconds; stop replies carry the profiler's full export
        (collapsed stacks + sample counts) so a remote ``repro profile``
        needs exactly two control round trips.
        """
        from repro.obs import profiler as _profiler

        if payload[0] == OBS_PROFILE_START_TAG:
            interval_s = _profiler.DEFAULT_INTERVAL_S
            if len(payload) >= 5:
                interval_us = int.from_bytes(payload[1:5], "big")
                if interval_us > 0:
                    interval_s = interval_us / 1e6
            profiler = _profiler.attach(interval_s)
            body = {"running": True, "interval_s": profiler.interval_s}
        else:
            export = _profiler.detach()
            body = {"running": False, "profile": export}
        return bytes([OBS_PROFILE_DUMP_TAG]) + json.dumps(
            body, default=str
        ).encode("utf-8")

    def traced_dispatch(self, inner: bytes, trace_context: bytes | None) -> bytes:
        """Dispatch under a request span parented by the propagated context.

        The span marks itself :data:`~repro.obs.propagate.REMOTE_PARENT_ATTR`
        so a cross-process merge keeps its parent link pointing at the
        client span; making it the context's current span lets the nested
        ``lbl.server.process`` span (emitted by the protocol layer in this
        context) parent locally under it.  Service time — queueing
        excluded, dispatch only — lands in the
        ``transport.server.service.seconds`` log histogram.
        """
        start = time.perf_counter()
        parent = None
        attributes = {}
        trace_id = None
        if trace_context is not None:
            try:
                decoded = TraceContext.decode(trace_context)
                parent = remote_parent(decoded)
                trace_id = decoded.trace_id
                attributes[REMOTE_PARENT_ATTR] = True
            except ProtocolError:
                parent = None  # unparseable context: serve the request anyway
        try:
            with TRACER.span("transport.server.request", parent=parent, **attributes):
                # Server-side ops (AEAD opens, re-encrypt) land in a
                # server-labeled row linked to the client trace, so the
                # ledger can pair both halves of one access.
                with _ledger.track(label="server", trace_id=trace_id):
                    return self.safe_dispatch(inner)
        finally:
            REGISTRY.log_histogram("transport.server.service.seconds").observe(
                time.perf_counter() - start
            )


class _Handler(socketserver.BaseRequestHandler):
    def setup(self) -> None:  # noqa: D401 - socketserver interface
        # Replies are small frames written by independent worker threads;
        # without NODELAY, Nagle holds each until the client ACKs the
        # previous one and pipelined replies serialize on delayed ACKs.
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def handle(self) -> None:  # noqa: D401 - socketserver interface
        server: "LblTcpServer" = self.server  # type: ignore[assignment]
        # Mux replies are written from pool threads while this thread may
        # still write inline replies; one lock per connection orders them.
        send_lock = threading.Lock()
        while True:
            try:
                payload = framing.recv_frame(self.request)
            except (ProtocolError, OSError):
                return  # connection closed (possibly mid-frame; that's fine)
            if framing.is_mux(payload):
                server.submit_mux(self.request, send_lock, payload)
                continue
            if _obs.enabled:
                _ledger.count_wire(
                    _ledger.frame_type(payload),
                    "received",
                    4 + len(payload),
                    role="server",
                )
            reply = server.safe_dispatch(payload)
            try:
                if _obs.enabled:
                    _ledger.count_wire(
                        _ledger.frame_type(reply),
                        "sent",
                        4 + len(reply),
                        role="server",
                    )
                with send_lock:
                    framing.send_frame(self.request, reply)
            except OSError:
                return


class LblTcpServer(socketserver.ThreadingTCPServer):
    """A threaded TCP front over one :class:`LblServer` instance.

    Args:
        host: Bind address (use ``127.0.0.1`` for tests).
        port: Bind port (0 picks an ephemeral one; read ``address``).
        point_and_permute: Must match the clients' configuration.
        num_stripes: Per-key lock stripes; collisions only cost
            parallelism, never correctness.
        max_workers: Pool threads handling multiplexed frames; bounds how
            many pipelined requests process concurrently.
        response_delay_s: Artificial delay before every reply, emulating a
            WAN round trip on loopback (benchmarks only; keep 0.0 in
            production use).
        metrics_port: When not ``None``, serve this process's metrics
            registry as Prometheus text on ``http://host:metrics_port``
            (0 picks an ephemeral port; read ``metrics_address``).
        server_batch: Access-window fusion size (see
            :class:`LblFrameDispatcher`); ``1`` disables fusion.
        server_window: Flush timer (seconds) for a partially filled
            access window.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        point_and_permute: bool = True,
        num_stripes: int = 64,
        max_workers: int = 8,
        response_delay_s: float = 0.0,
        metrics_port: int | None = None,
        server_batch: int = 1,
        server_window: float = DEFAULT_SERVER_WINDOW_SECONDS,
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        if response_delay_s < 0:
            raise ConfigurationError("response_delay_s cannot be negative")
        super().__init__((host, port), _Handler)
        # process() mutates per-key state, so accesses to the same key must
        # serialize — but only to the same key.  The dispatcher's striped
        # locks (mirroring ConcurrentLblProxy) let distinct keys dispatch
        # in parallel across the worker pool.
        self.dispatcher = LblFrameDispatcher(
            point_and_permute=point_and_permute,
            num_stripes=num_stripes,
            locking=True,
            server_batch=server_batch,
            server_window=server_window,
        )
        self.lbl = self.dispatcher.lbl
        self.response_delay_s = response_delay_s
        self.metrics_server = None
        if metrics_port is not None:
            from repro.obs.export import start_metrics_server

            self.metrics_server = start_metrics_server(host, metrics_port)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="lbl-mux"
        )
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        self._serve_thread: threading.Thread | None = None
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is bound to."""
        return self.socket.getsockname()

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """The (host, port) of the Prometheus scrape endpoint, if enabled."""
        if self.metrics_server is None:
            return None
        return self.metrics_server.server_address

    @property
    def in_flight(self) -> int:
        """Multiplexed requests currently queued or executing."""
        return self._in_flight

    # ------------------------------------------------------------------ #
    # Dispatch (delegated to the shared frame dispatcher)
    # ------------------------------------------------------------------ #

    def safe_dispatch(self, payload: bytes) -> bytes:
        """Dispatch one frame, converting failures into error frames."""
        return self.dispatcher.safe_dispatch(payload)

    def dispatch(self, payload: bytes) -> bytes:
        """Route one decoded frame; returns the serialized reply."""
        return self.dispatcher.dispatch(payload)

    def obs_dump(self) -> bytes:
        """This process's telemetry as an obs-dump frame (see
        :meth:`LblFrameDispatcher.obs_dump`)."""
        return self.dispatcher.obs_dump()

    # ------------------------------------------------------------------ #
    # Multiplexed (pipelined) frames
    # ------------------------------------------------------------------ #

    def submit_mux(self, sock, send_lock: threading.Lock, payload: bytes) -> None:
        """Queue one mux frame for pool dispatch; replies carry its id."""
        try:
            request_id, inner, trace_context = framing.unwrap_mux_traced(payload)
        except ProtocolError as exc:
            # No id to mirror: reply with a plain error frame so the client
            # at least sees a described failure.
            try:
                with send_lock:
                    framing.send_frame(
                        sock, bytes([ERROR_TAG]) + str(exc).encode("utf-8")
                    )
            except OSError:
                pass
            return
        with self._in_flight_lock:
            self._in_flight += 1
            depth = self._in_flight
        if _obs.enabled:
            REGISTRY.counter("transport.mux_frames_received").inc()
            REGISTRY.gauge("transport.server.in_flight").set(depth)
            _ledger.count_wire(
                _ledger.frame_type(payload), "received", 4 + len(payload), role="server"
            )
        self._pool.submit(
            self._handle_mux, sock, send_lock, request_id, inner, trace_context
        )

    def _handle_mux(
        self,
        sock,
        send_lock: threading.Lock,
        request_id: int,
        inner: bytes,
        trace_context: bytes | None = None,
    ) -> None:
        try:
            if self.response_delay_s:
                time.sleep(self.response_delay_s)
            if _obs.enabled:
                reply = self.dispatcher.traced_dispatch(inner, trace_context)
            else:
                reply = self.safe_dispatch(inner)
            try:
                wrapped = framing.wrap_mux(request_id, reply)
                if _obs.enabled:
                    _ledger.count_wire(
                        _ledger.frame_type(reply), "sent", 4 + len(wrapped), role="server"
                    )
                with send_lock:
                    framing.send_frame(sock, wrapped)
            except OSError:
                pass  # client vanished mid-flight; nothing left to tell it
        finally:
            with self._in_flight_lock:
                self._in_flight -= 1
                depth = self._in_flight
            if _obs.enabled:
                REGISTRY.gauge("transport.server.in_flight").set(depth)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def serve_in_background(self) -> threading.Thread:
        """Start serving on a background thread; returns the thread.

        The thread is kept (and joined by :meth:`close`) so a shutdown
        actually waits for the accept loop to exit instead of leaking a
        daemon thread holding the listener socket.  Idempotent: calling it
        again returns the already-running thread.
        """
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="lbl-tcp-serve", daemon=True
            )
            self._serve_thread.start()
        return self._serve_thread

    def close(self) -> None:
        """Stop serving and release every resource (idempotent).

        Shuts the accept loop down, joins the serving thread started by
        :meth:`serve_in_background`, and closes the listener, the mux
        worker pool, and the scrape endpoint — the common lifecycle shared
        with :class:`~repro.transport.async_server.AsyncLblServer`, so
        ``with server:`` works identically over both transports.
        """
        if self._closed:
            return
        self._closed = True
        if self._serve_thread is not None:
            self.shutdown()
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        self.server_close()

    def server_close(self) -> None:
        """Close the listener, the mux worker pool, and the scrape endpoint."""
        super().server_close()
        self._pool.shutdown(wait=False)
        if self.metrics_server is not None:
            self.metrics_server.shutdown()
            self.metrics_server.server_close()
            self.metrics_server = None

    def __enter__(self) -> "LblTcpServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = [
    "LblFrameDispatcher",
    "LblTcpServer",
    "pack_load",
    "unpack_load",
    "LOAD_TAG",
    "LOAD_ACK",
    "OBS_PULL_TAG",
    "OBS_DUMP_TAG",
    "OBS_PROFILE_START_TAG",
    "OBS_PROFILE_STOP_TAG",
    "OBS_PROFILE_DUMP_TAG",
    "ERROR_TAG",
    "OVERLOAD_TAG",
    "OVERLOAD_FRAME",
]
