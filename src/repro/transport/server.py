"""The storage-host side: an LBL-ORTOA server behind a TCP listener.

The server is the *untrusted* party, so this process needs no key material
whatsoever — it stores labels, opens the one ciphertext it can per group,
and rotates state, exactly as :class:`~repro.core.lbl.server.LblServer`
does in-process.

Wire protocol (within the framing of :mod:`repro.transport.framing`):

* a serialized :class:`~repro.core.messages.LblAccessRequest` (tag 0x20)
  → a serialized :class:`~repro.core.messages.LblAccessResponse`;
* a LOAD frame (tag 0x40: encoded key + label blob) during bulk
  initialization → a 1-byte ack (0x41);
* on any handling error → an error frame (tag 0x7F + UTF-8 message), so
  clients fail with a described exception instead of a dead socket.
"""

from __future__ import annotations

import socketserver
import threading

from repro.core.lbl.server import LblServer
from repro.core.messages import LblAccessRequest, LblBatchRequest, LblBatchResponse
from repro.errors import OrtoaError, ProtocolError
from repro.obs import _state as _obs
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.storage.persistence import LabelListCodec
from repro.transport import framing

LOAD_TAG = 0x40
LOAD_ACK = bytes([0x41])
ERROR_TAG = 0x7F

_log = get_logger("transport.server")


def pack_load(encoded_key: bytes, labels) -> bytes:
    """Serialize one bulk-load record."""
    blob = LabelListCodec().encode(labels)
    return (
        bytes([LOAD_TAG])
        + len(encoded_key).to_bytes(4, "big")
        + encoded_key
        + blob
    )


def unpack_load(payload: bytes):
    """Parse a bulk-load record back into (encoded_key, labels)."""
    if len(payload) < 5 or payload[0] != LOAD_TAG:
        raise ProtocolError("malformed load record")
    key_len = int.from_bytes(payload[1:5], "big")
    encoded_key = payload[5:5 + key_len]
    if len(encoded_key) != key_len:
        raise ProtocolError("truncated load record key")
    labels = LabelListCodec().decode(payload[5 + key_len:])
    return encoded_key, labels


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # noqa: D401 - socketserver interface
        server: "LblTcpServer" = self.server  # type: ignore[assignment]
        while True:
            try:
                payload = framing.recv_frame(self.request)
            except (ProtocolError, OSError):
                return  # connection closed
            try:
                reply = server.dispatch(payload)
            except OrtoaError as exc:
                _log.warning("request failed, returning error frame: %s", exc)
                if _obs.enabled:
                    REGISTRY.counter("transport.error_frames_sent").inc()
                reply = bytes([ERROR_TAG]) + str(exc).encode("utf-8")
            try:
                framing.send_frame(self.request, reply)
            except OSError:
                return


class LblTcpServer(socketserver.ThreadingTCPServer):
    """A threaded TCP front over one :class:`LblServer` instance.

    Args:
        host: Bind address (use ``127.0.0.1`` for tests).
        port: Bind port (0 picks an ephemeral one; read ``address``).
        point_and_permute: Must match the clients' configuration.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 point_and_permute: bool = True) -> None:
        super().__init__((host, port), _Handler)
        self.lbl = LblServer(point_and_permute=point_and_permute)
        # process() mutates per-key state; ThreadingTCPServer gives each
        # connection a thread, so dispatch is serialized here.  (Per-key
        # striping as in ConcurrentLblProxy would also work; a single lock
        # keeps the untrusted component trivially auditable.)
        self._lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is bound to."""
        return self.socket.getsockname()

    def dispatch(self, payload: bytes) -> bytes:
        """Route one decoded frame; returns the serialized reply."""
        if _obs.enabled:
            REGISTRY.counter("transport.requests_dispatched").inc()
        if not payload:
            raise ProtocolError("empty frame")
        if payload[0] == LOAD_TAG:
            encoded_key, labels = unpack_load(payload)
            with self._lock:
                self.lbl.load(encoded_key, labels)
            return LOAD_ACK
        if payload[0] == LblAccessRequest.TAG:
            request = LblAccessRequest.from_bytes(payload)
            with self._lock:
                response, _ops = self.lbl.process(request)
            return response.to_bytes()
        if payload[0] == LblBatchRequest.TAG:
            batch = LblBatchRequest.from_bytes(payload)
            with self._lock:
                responses = tuple(
                    self.lbl.process(request)[0] for request in batch.requests
                )
            return LblBatchResponse(responses).to_bytes()
        raise ProtocolError(f"unknown frame tag {payload[0]:#x}")

    def serve_in_background(self) -> threading.Thread:
        """Start serving on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


__all__ = ["LblTcpServer", "pack_load", "unpack_load", "LOAD_TAG", "LOAD_ACK", "ERROR_TAG"]
