"""Client side of TEE-ORTOA over TCP: attest, provision, then access.

:class:`RemoteTeeOrtoa` will not release the data key to the server until
the enclave's quote verifies against the expected code measurement through
the attestation service — the authorization property real deployments hang
on SGX's remote attestation.
"""

from __future__ import annotations

import secrets
import socket
import threading

from repro.core.base import (
    AccessTranscript,
    OpCounts,
    OrtoaProtocol,
    PhaseRecord,
    RoundTrip,
)
from repro.core.messages import TeeAccessRequest, TeeAccessResponse
from repro.crypto import aead
from repro.crypto.keys import KeyChain
from repro.errors import AttestationError, ProtocolError
from repro.tee.attestation import AttestationService
from repro.transport import framing
from repro.transport.server import ERROR_TAG
from repro.transport.tee_server import (
    ATTEST_TAG,
    PROVISION_ACK,
    PROVISION_TAG,
    TEE_LOAD_ACK,
    TEE_LOAD_TAG,
    unpack_quote,
)
from repro.types import Request, Response, StoreConfig


class RemoteTeeOrtoa(OrtoaProtocol):
    """TEE-ORTOA whose enclave lives across a TCP connection.

    Construction performs the full handshake: fresh-nonce attestation,
    quote verification, and only then key provisioning.

    Args:
        config: Store configuration.
        address: ``(host, port)`` of a :class:`~repro.transport.tee_server.TeeTcpServer`.
        attestation: The data owner's verification handle (bound to the
            server machine's hardware root and the expected measurement).
        keychain: Key material; provisioned into the enclave post-attestation.
    """

    name = "tee-ortoa-remote"
    rounds = 1

    def __init__(
        self,
        config: StoreConfig,
        address: tuple[str, int],
        attestation: AttestationService,
        keychain: KeyChain | None = None,
    ) -> None:
        super().__init__(config)
        self.keychain = keychain or KeyChain()
        self._sock = socket.create_connection(address, timeout=30.0)
        self._io_lock = threading.Lock()

        # Handshake: attest with a fresh nonce, verify, provision.
        nonce = secrets.token_bytes(16)
        quote = unpack_quote(self._exchange(bytes([ATTEST_TAG]) + nonce))
        if quote.report_data != nonce:
            raise AttestationError("quote nonce mismatch (replayed quote?)")
        attestation.verify(quote)  # raises AttestationError on any failure
        ack = self._exchange(bytes([PROVISION_TAG]) + self.keychain.data_key)
        if ack != PROVISION_ACK:
            raise ProtocolError("server rejected key provisioning")

    def close(self) -> None:
        """Close the connection to the server."""
        self._sock.close()

    def __enter__(self) -> "RemoteTeeOrtoa":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _exchange(self, payload: bytes) -> bytes:
        with self._io_lock:
            framing.send_frame(self._sock, payload)
            reply = framing.recv_frame(self._sock)
        if reply[:1] == bytes([ERROR_TAG]):
            raise ProtocolError(f"server error: {reply[1:].decode('utf-8', 'replace')}")
        return reply

    # ------------------------------------------------------------------ #
    # Protocol interface
    # ------------------------------------------------------------------ #

    def initialize(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            encoded_key = self.keychain.encode_key(key)
            ciphertext = aead.encrypt(self.keychain.data_key, self.config.pad(value))
            frame = (
                bytes([TEE_LOAD_TAG])
                + len(encoded_key).to_bytes(4, "big")
                + encoded_key
                + ciphertext
            )
            if self._exchange(frame) != TEE_LOAD_ACK:
                raise ProtocolError("server rejected a load record")

    def access(self, request: Request) -> AccessTranscript:
        selector = bytes([1 if request.op.is_read else 0])
        outgoing = self._padded(request)
        if outgoing is None:
            outgoing = secrets.token_bytes(self.config.value_len)
        wire_request = TeeAccessRequest(
            encoded_key=self.keychain.encode_key(request.key),
            selector_ct=aead.encrypt(self.keychain.data_key, selector),
            new_value_ct=aead.encrypt(self.keychain.data_key, outgoing),
        ).to_bytes()
        reply = self._exchange(wire_request)
        response = TeeAccessResponse.from_bytes(reply)
        value = aead.decrypt(self.keychain.data_key, response.result_ct)
        return AccessTranscript(
            op=request.op,
            phases=(
                PhaseRecord("proxy-prepare", "proxy", OpCounts(prf=1, aead_enc=2)),
                PhaseRecord("server-remote-enclave", "server",
                            OpCounts(kv_ops=2, ecalls=1)),
                PhaseRecord("proxy-finalize", "proxy", OpCounts(aead_dec=1)),
            ),
            round_trips=(RoundTrip(len(wire_request), len(reply)),),
            response=Response(request.key, value),
        )


__all__ = ["RemoteTeeOrtoa"]
