"""Storage-vs-communication overhead analysis (paper appendix §10.1, Fig 6).

One label representing ``y`` plaintext bits trades storage for bandwidth:

* storage factor   ``f_s(y) = 1 / y``      (labels per plaintext bit),
* communication factor ``f_c(y) = 2^y / y``  (ciphertexts per plaintext bit).

``f_c`` is flat between y=1 and y=2 (both equal 2) while ``f_s`` halves, so
the combined overhead is minimized at **y = 2** — the paper's chosen
optimum.  :func:`overhead_factors` computes the analytic curves and
:func:`measured_factors` validates them against actual protocol byte counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.lbl import LblOrtoa
from repro.errors import ConfigurationError
from repro.types import Request, StoreConfig


@dataclass(frozen=True, slots=True)
class OverheadFactors:
    """Analytic overhead factors for one value of ``y``."""

    y: int
    storage_factor: float
    communication_factor: float

    @property
    def total(self) -> float:
        """Combined storage + communication overhead factor."""
        return self.storage_factor + self.communication_factor


def overhead_factors(max_y: int = 6) -> list[OverheadFactors]:
    """The Figure 6 curves for ``y = 1 .. max_y``."""
    if max_y < 1:
        raise ConfigurationError("max_y must be >= 1")
    return [
        OverheadFactors(
            y=y,
            storage_factor=1.0 / y,
            communication_factor=(1 << y) / y,
        )
        for y in range(1, max_y + 1)
    ]


def optimal_y(max_y: int = 6) -> int:
    """The ``y`` minimizing total overhead — the paper finds 2."""
    return min(overhead_factors(max_y), key=lambda f: f.total).y


def measured_factors(y: int, value_len: int = 16) -> OverheadFactors:
    """Empirical factors from a real LBL deployment at group size ``y``.

    Storage is counted in labels stored per plaintext bit; communication in
    table ciphertexts sent per plaintext bit — the same units as the
    analytic curves, so the two should agree exactly.
    """
    config = StoreConfig(value_len=value_len, group_bits=y)
    protocol = LblOrtoa(config, rng=random.Random(0))
    protocol.initialize({"k": b"x"})
    encoded = protocol.keychain.encode_key("k")
    labels_stored = len(protocol.server.store.get(encoded))
    request, _ = protocol.proxy.prepare(Request.read("k"))
    ciphertexts_sent = sum(len(table) for table in request.tables)
    bits = config.value_bits
    return OverheadFactors(
        y=y,
        storage_factor=labels_stored / bits,
        communication_factor=ciphertexts_sent / bits,
    )


__all__ = ["OverheadFactors", "overhead_factors", "optimal_y", "measured_factors"]
