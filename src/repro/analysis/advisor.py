"""Deployment advisor: the paper's §6.3.2 decision rule, operationalized.

"How should an application choose between LBL-ORTOA and the 2RTT baseline?"
The paper's answer is the inequality ``c > p + o`` (cross-datacenter RTT
versus LBL's compute plus large-message overhead), plus the observation that
TEE-ORTOA dominates whenever trusted enclaves are actually available and
trusted.  :func:`recommend` evaluates both for a concrete deployment by
measuring a *real* LBL transcript at the requested value size and pricing it
with the cost model — no hand-waved constants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.lbl import LblOrtoa
from repro.errors import ConfigurationError
from repro.harness.calibration import CostModel
from repro.sim.network import DATACENTER_RTT_MS, DEFAULT_BANDWIDTH_MBPS, NetworkLink
from repro.types import Request, StoreConfig


@dataclass(frozen=True, slots=True)
class Recommendation:
    """The advisor's verdict with the numbers behind it."""

    protocol: str  # "tee" | "lbl" | "baseline"
    rtt_ms: float  # c
    lbl_compute_ms: float  # p
    lbl_overhead_ms: float  # o
    reason: str

    @property
    def rule_satisfied(self) -> bool:
        """The §6.3.2 inequality c > p + o."""
        return self.rtt_ms > self.lbl_compute_ms + self.lbl_overhead_ms


def recommend(
    value_len: int,
    server_rtt_ms: float | str,
    bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS,
    tee_available: bool = False,
    tee_trusted: bool = False,
    cost_model: CostModel | None = None,
) -> Recommendation:
    """Pick a protocol for one deployment.

    Args:
        value_len: Fixed object size in bytes.
        server_rtt_ms: Proxy→server RTT in ms, or a Table 2 datacenter name.
        bandwidth_mbps: Proxy→server bandwidth.
        tee_available: The cloud offers enclaves in the right region (§6.1
            notes SGX regions are limited).
        tee_trusted: The application accepts TEE side-channel risk (§4.3).
        cost_model: Compute pricing; defaults to the paper calibration.
    """
    if isinstance(server_rtt_ms, str):
        try:
            server_rtt_ms = DATACENTER_RTT_MS[server_rtt_ms]
        except KeyError:
            known = ", ".join(sorted(DATACENTER_RTT_MS))
            raise ConfigurationError(
                f"unknown datacenter {server_rtt_ms!r}; known: {known}"
            ) from None
    if server_rtt_ms < 0:
        raise ConfigurationError("server_rtt_ms must be non-negative")
    cost_model = cost_model or CostModel.paper_like()

    # Measure a real LBL access at this value size.
    config = StoreConfig(value_len=value_len, group_bits=2, point_and_permute=True)
    protocol = LblOrtoa(config, rng=random.Random(0))
    protocol.initialize({"probe": bytes(value_len)})
    transcript = protocol.access(Request.read("probe"))
    p = sum(cost_model.phase_ms(phase.ops) for phase in transcript.phases)
    link = NetworkLink(server_rtt_ms, bandwidth_mbps)
    o = link.overhead_ms(transcript.request_bytes, transcript.response_bytes)

    if tee_available and tee_trusted:
        return Recommendation(
            "tee", server_rtt_ms, p, o,
            "TEE-ORTOA dominates when enclaves are available and their "
            "side-channel risk is acceptable: one round, tiny messages, "
            "negligible compute (§6.1).",
        )
    if server_rtt_ms > p + o:
        return Recommendation(
            "lbl", server_rtt_ms, p, o,
            f"c = {server_rtt_ms:.1f} ms exceeds p + o = {p:.1f} + {o:.1f} ms: "
            "saving a round beats shipping bigger messages (§6.3.2).",
        )
    return Recommendation(
        "baseline", server_rtt_ms, p, o,
        f"c = {server_rtt_ms:.1f} ms is below p + o = {p:.1f} + {o:.1f} ms: "
        "the extra round is cheaper than LBL's compute+overhead at this "
        "value size (§6.3.2).",
    )


__all__ = ["Recommendation", "recommend"]
