"""Dollar-cost estimate for operating LBL-ORTOA (paper §6.3.3).

The paper prices a deployment against Google Cloud list prices: storage per
GB-month, network egress per GB, function invocations per million, and CPU
time.  This module recomputes the estimate from first principles so every
assumption is explicit and sweepable (the paper's headline: ~$0.000023 per
request for 1M objects of 160 B with 128-bit labels).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class CloudPrices:
    """Google Cloud list prices used in §6.3.3."""

    storage_per_gb_month: float = 0.02
    network_per_gb: float = 0.12
    invocations_per_million: float = 0.4
    cpu_per_100ms: float = 0.00000165


@dataclass(frozen=True, slots=True)
class LblCostEstimate:
    """Breakdown of monthly/per-access dollar costs."""

    storage_gb: float
    storage_per_month: float
    network_gb_per_million_accesses: float
    network_per_million_accesses: float
    compute_per_million_accesses: float
    total_per_million_accesses: float

    @property
    def per_request(self) -> float:
        """Dollar cost of a single access."""
        return self.total_per_million_accesses / 1_000_000


def estimate_lbl_cost(
    num_objects: int = 1_000_000,
    value_bits: int = 1280,
    label_bits: int = 128,
    ciphertext_bits: int = 128,
    group_bits: int = 2,
    compute_ms_per_access: float = 2.0,
    prices: CloudPrices | None = None,
) -> LblCostEstimate:
    """Estimate LBL-ORTOA's operating cost.

    Defaults are the paper's configuration: the §10-optimized protocol
    (``y = 2``), 128-bit labels and ciphertexts, 160 B values, 1M objects,
    and 2 ms of label encryption/decryption CPU per access.

    Storage (bits): ``r·N`` for encoded keys plus ``r·(t/y)·N`` for labels
    (§5.3.1 adjusted by the §10.1 space optimization).
    Communication (bits per access): ``2^y · E_len · (t/y)`` (§10.1).
    """
    if num_objects < 1 or value_bits < 1:
        raise ConfigurationError("num_objects and value_bits must be positive")
    if group_bits < 1:
        raise ConfigurationError("group_bits must be >= 1")
    prices = prices or CloudPrices()

    num_groups = (value_bits + group_bits - 1) // group_bits
    bits_per_object = label_bits + label_bits * num_groups  # key + labels
    storage_gb = bits_per_object * num_objects / 8 / 1e9

    bits_per_access = (1 << group_bits) * ciphertext_bits * num_groups
    network_gb = bits_per_access * 1_000_000 / 8 / 1e9

    compute_cost = (
        1_000_000 / 1_000_000 * prices.invocations_per_million
        + 1_000_000 * (compute_ms_per_access / 100.0) * prices.cpu_per_100ms
    )

    storage_cost = storage_gb * prices.storage_per_gb_month
    network_cost = network_gb * prices.network_per_gb
    return LblCostEstimate(
        storage_gb=storage_gb,
        storage_per_month=storage_cost,
        network_gb_per_million_accesses=network_gb,
        network_per_million_accesses=network_cost,
        compute_per_million_accesses=compute_cost,
        total_per_million_accesses=network_cost + compute_cost,
    )


__all__ = ["CloudPrices", "LblCostEstimate", "estimate_lbl_cost"]
