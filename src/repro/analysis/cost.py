"""Dollar-cost estimate for operating LBL-ORTOA (paper §6.3.3).

The paper prices a deployment against Google Cloud list prices: storage per
GB-month, network egress per GB, function invocations per million, and CPU
time.  This module recomputes the estimate from first principles so every
assumption is explicit and sweepable (the paper's headline: ~$0.000023 per
request for 1M objects of 160 B with 128-bit labels).

Bytes per access and bytes per stored object are no longer hand-derived
bit formulas: they come from :class:`repro.analysis.costmodel.LblCostModel`,
whose closed forms are asserted equal to the wire ledger by tier-1 tests —
so the dollar figure inherits byte-exactness from the implementation
instead of drifting from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.costmodel import LblCostModel
from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class CloudPrices:
    """Google Cloud list prices used in §6.3.3."""

    storage_per_gb_month: float = 0.02
    network_per_gb: float = 0.12
    invocations_per_million: float = 0.4
    cpu_per_100ms: float = 0.00000165


@dataclass(frozen=True, slots=True)
class LblCostEstimate:
    """Breakdown of monthly/per-access dollar costs."""

    storage_gb: float
    storage_per_month: float
    network_gb_per_million_accesses: float
    network_per_million_accesses: float
    compute_per_million_accesses: float
    total_per_million_accesses: float

    @property
    def per_request(self) -> float:
        """Dollar cost of a single access."""
        return self.total_per_million_accesses / 1_000_000


def estimate_lbl_cost(
    num_objects: int = 1_000_000,
    value_bits: int = 1280,
    label_bits: int = 128,
    group_bits: int = 2,
    point_and_permute: bool = True,
    compute_ms_per_access: float = 2.0,
    prices: CloudPrices | None = None,
) -> LblCostEstimate:
    """Estimate LBL-ORTOA's operating cost.

    Defaults are the paper's configuration: the §10-optimized protocol
    (``y = 2`` with point-and-permute), 128-bit labels, 160 B values, 1M
    objects, and 2 ms of label encryption/decryption CPU per access.

    Storage and communication come from the ledger-validated cost model:
    per object the server holds the encoded key plus ``ceil(t/y)`` labels
    (§5.3.1 with §10.1's grouping); per access the wire carries
    ``2^y · ceil(t/y)`` AEAD ciphertexts out and one opened label per group
    back — including real framing, nonces, and tags, exactly as measured.
    """
    if num_objects < 1 or value_bits < 1:
        raise ConfigurationError("num_objects and value_bits must be positive")
    if value_bits % 8 != 0:
        raise ConfigurationError("value_bits must be a multiple of 8")
    if group_bits < 1:
        raise ConfigurationError("group_bits must be >= 1")
    prices = prices or CloudPrices()

    model = LblCostModel(
        value_len=value_bits // 8,
        group_bits=group_bits,
        label_bits=label_bits,
        point_and_permute=point_and_permute,
    )
    storage_gb = model.storage_bytes_per_object * num_objects / 1e9
    network_gb = model.bytes_per_access * 1_000_000 / 1e9

    compute_cost = (
        1_000_000 / 1_000_000 * prices.invocations_per_million
        + 1_000_000 * (compute_ms_per_access / 100.0) * prices.cpu_per_100ms
    )

    storage_cost = storage_gb * prices.storage_per_gb_month
    network_cost = network_gb * prices.network_per_gb
    return LblCostEstimate(
        storage_gb=storage_gb,
        storage_per_month=storage_cost,
        network_gb_per_million_accesses=network_gb,
        network_per_million_accesses=network_cost,
        compute_per_million_accesses=compute_cost,
        total_per_million_accesses=network_cost + compute_cost,
    )


__all__ = ["CloudPrices", "LblCostEstimate", "estimate_lbl_cost"]
