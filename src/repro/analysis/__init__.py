"""Analysis helpers: run metrics, dollar-cost model, and overhead factors.

* :mod:`repro.analysis.metrics` — latency/throughput aggregation used by
  every performance experiment.
* :mod:`repro.analysis.cost` — the §6.3.3 Google-Cloud dollar-cost estimate
  for operating LBL-ORTOA.
* :mod:`repro.analysis.overhead` — the appendix Figure 6 storage-vs-
  communication trade-off that fixes the optimal group size at y = 2.
"""

from repro.analysis.advisor import Recommendation, recommend
from repro.analysis.cost import CloudPrices, LblCostEstimate, estimate_lbl_cost
from repro.analysis.metrics import RunMetrics, summarize
from repro.analysis.overhead import OverheadFactors, overhead_factors, optimal_y

__all__ = [
    "RunMetrics",
    "summarize",
    "CloudPrices",
    "LblCostEstimate",
    "estimate_lbl_cost",
    "OverheadFactors",
    "overhead_factors",
    "optimal_y",
    "Recommendation",
    "recommend",
]
