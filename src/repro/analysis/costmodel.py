"""Closed-form resource model for LBL-ORTOA accesses (paper §6.3.3).

The ledger (:mod:`repro.obs.ledger`) *measures* what an access costs — bytes
on the wire, PRF calls, SHA-256 compressions, AEAD operations.  This module
*predicts* the same quantities symbolically, as functions of the deployment
parameters: value size, label width, the §10.1 grouping factor ``y``, the
§10.2 point-and-permute flag, and the crypto backend.  The two views are
kept in lockstep by tier-1 tests that assert ``model == ledger`` exactly —
not approximately — for GET and PUT across every backend, which is what
makes the capacity planner (:func:`plan_capacity`) and the dollar estimate
(:func:`repro.analysis.cost.estimate_lbl_cost`) trustworthy: their inputs
are wire-validated formulas, not hand-derived constants.

Notation (matching the paper): ``G`` groups of ``y`` bits each
(``G = ceil(8·value_len / y)``), tables of ``T = 2^y`` ciphertexts, labels
of ``L = label_bits / 8`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.crypto.labels import LabelCodec
from repro.crypto.prf import Prf, encode_components, hmac_compressions
from repro.errors import ConfigurationError
from repro.types import StoreConfig

#: Crypto backends the model covers.  ``stdlib``/``vector``/``procpool``
#: share formulas (they run the same batched kernels — the lane engine and
#: the worker pool change *where* hashing happens, never how much);
#: ``scalar`` is the per-label reference path with its redundant per-entry
#: permute derivations.
MODEL_BACKENDS = ("scalar", "stdlib", "vector", "procpool")

#: Fixed wire widths, pinned against the implementation by
#: ``tests/test_costmodel.py``.
ENCODED_KEY_BYTES = 16  # KeyChain.key_encoding_prf.out_bytes
AEAD_OVERHEAD_BYTES = 28  # 12-byte nonce + 16-byte tag (crypto.aead)
DECRYPT_INDEX_BYTES = 1  # point-and-permute slot byte (core.lbl.proxy)
FIELD_LEN_BYTES = 4  # length prefix per field (core.messages)
TAG_BYTES = 1  # message tag (core.messages)
TABLE_HEADER_BYTES = FIELD_LEN_BYTES + 1  # the 1-byte table-size field
FRAME_LEN_BYTES = 4  # transport frame length prefix (transport.framing)
MUX_HEADER_BYTES = 9  # plain mux: tag + 8-byte request id
MUX_TRACED_HEADER_BYTES = 25  # mux + 16-byte trace context

_DUMMY_KEY = b"\x00" * 16


@dataclass(frozen=True)
class LblCostModel:
    """Symbolic per-access cost of one LBL-ORTOA deployment.

    Args:
        value_len: Fixed plaintext length in bytes.
        group_bits: ``y`` — plaintext bits per label (§10.1).
        label_bits: Label PRF width ``r`` in bits.
        point_and_permute: §10.2 — the server opens exactly one entry per
            group.
        backend: One of :data:`MODEL_BACKENDS`.
        key: The datastore key the access touches.  PRF messages embed the
            key, so SHA-256 compression counts depend (mildly) on its
            length; the default matches the validation tests.
        counter: The access-counter epoch the access consumes.  Encoded
            integers grow with magnitude, so compression counts depend on
            the epoch too — byte-exactness demands it.
    """

    value_len: int
    group_bits: int = 1
    label_bits: int = 128
    point_and_permute: bool = False
    backend: str = "stdlib"
    key: str = "k"
    counter: int = 0
    _codec: LabelCodec = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.backend not in MODEL_BACKENDS:
            raise ConfigurationError(
                f"unknown model backend {self.backend!r}; "
                f"expected one of {MODEL_BACKENDS}"
            )
        # The codec is used purely for its message-length arithmetic
        # (derivation_cost); the key material is irrelevant, only the
        # output widths matter.
        object.__setattr__(
            self,
            "_codec",
            LabelCodec(
                Prf(_DUMMY_KEY, out_bytes=self.label_bits // 8),
                Prf(_DUMMY_KEY, out_bytes=4),
                value_len=self.value_len,
                group_bits=self.group_bits,
            ),
        )

    @classmethod
    def from_config(
        cls,
        config: StoreConfig,
        *,
        backend: str = "stdlib",
        key: str = "k",
        counter: int = 0,
    ) -> "LblCostModel":
        """Model the access an existing :class:`StoreConfig` would cost."""
        return cls(
            value_len=config.value_len,
            group_bits=config.group_bits,
            label_bits=config.label_bits,
            point_and_permute=config.point_and_permute,
            backend=backend,
            key=key,
            counter=counter,
        )

    def at(self, *, key: str | None = None, counter: int | None = None) -> "LblCostModel":
        """The same deployment modeled at a different key/epoch."""
        return replace(
            self,
            key=self.key if key is None else key,
            counter=self.counter if counter is None else counter,
        )

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #

    @property
    def num_groups(self) -> int:
        """``G = ceil(8·value_len / y)``."""
        return self._codec.num_groups

    @property
    def table_size(self) -> int:
        """``T = 2^y`` ciphertexts per group table."""
        return self._codec.table_size

    @property
    def label_len(self) -> int:
        """``L`` — label width in bytes."""
        return self.label_bits // 8

    # ------------------------------------------------------------------ #
    # Wire bytes
    # ------------------------------------------------------------------ #

    @property
    def entry_len(self) -> int:
        """One table ciphertext: AEAD(label ‖ slot byte if §10.2)."""
        payload = self.label_len + (
            DECRYPT_INDEX_BYTES if self.point_and_permute else 0
        )
        return AEAD_OVERHEAD_BYTES + payload

    @property
    def request_bytes(self) -> int:
        """Serialized :class:`~repro.core.messages.LblAccessRequest`.

        Tag + table-size field + encoded-key field + ``G·T`` ciphertext
        fields — the paper's ``2^y · E_len · t/y`` bits plus real framing.
        """
        return (
            TAG_BYTES
            + TABLE_HEADER_BYTES
            + FIELD_LEN_BYTES
            + ENCODED_KEY_BYTES
            + self.num_groups * self.table_size * (FIELD_LEN_BYTES + self.entry_len)
        )

    @property
    def response_bytes(self) -> int:
        """Serialized :class:`~repro.core.messages.LblAccessResponse`:
        tag + one opened label field per group."""
        return TAG_BYTES + self.num_groups * (FIELD_LEN_BYTES + self.label_len)

    @property
    def bytes_per_access(self) -> int:
        """Request plus response, unframed (the in-process ``local`` view)."""
        return self.request_bytes + self.response_bytes

    def framed_request_bytes(self, traced: bool = True) -> int:
        """Request as it crosses a socket: frame length + mux header + body.

        With observability on, client frames carry the 16-byte trace
        context (``traced=True``); server replies never do.
        """
        header = MUX_TRACED_HEADER_BYTES if traced else MUX_HEADER_BYTES
        return FRAME_LEN_BYTES + header + self.request_bytes

    def framed_response_bytes(self) -> int:
        """Response as it crosses a socket (plain mux header)."""
        return FRAME_LEN_BYTES + MUX_HEADER_BYTES + self.response_bytes

    def framed_bytes_per_access(self, traced: bool = True) -> int:
        """Total socket bytes of one pipelined access, both directions."""
        return self.framed_request_bytes(traced) + self.framed_response_bytes()

    def batch_request_bytes(self, n: int, traced: bool = True) -> int:
        """``n`` accesses to one shard in a single batch frame."""
        body = TAG_BYTES + n * (FIELD_LEN_BYTES + self.request_bytes)
        header = MUX_TRACED_HEADER_BYTES if traced else MUX_HEADER_BYTES
        return FRAME_LEN_BYTES + header + body

    def batch_response_bytes(self, n: int) -> int:
        """The matching batch reply frame."""
        body = TAG_BYTES + n * (FIELD_LEN_BYTES + self.response_bytes)
        return FRAME_LEN_BYTES + MUX_HEADER_BYTES + body

    @property
    def storage_bytes_per_object(self) -> int:
        """Server-resident bytes per object: encoded key + ``G`` labels
        (+ one decryption-slot byte per group under §10.2)."""
        per_group = self.label_len + (
            DECRYPT_INDEX_BYTES if self.point_and_permute else 0
        )
        return ENCODED_KEY_BYTES + self.num_groups * per_group

    # ------------------------------------------------------------------ #
    # Crypto ops
    # ------------------------------------------------------------------ #

    def _epoch_parts(self, counter: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """``((label_calls, label_comp), (offset_calls, offset_comp))`` of
        deriving one epoch at ``counter``."""
        label_calls, label_comp = self._codec.derivation_cost(self.key, counter)
        both_calls, both_comp = self._codec.derivation_cost(
            self.key, counter, offsets=True
        )
        return (
            (label_calls, label_comp),
            (both_calls - label_calls, both_comp - label_comp),
        )

    @property
    def _encode_key_cost(self) -> tuple[int, int]:
        """``(calls, compressions)`` of ``KeyChain.encode_key`` per access."""
        message_len = 4 + len(encode_components("key-encoding", self.key))
        return 1, hmac_compressions(message_len, ENCODED_KEY_BYTES)

    def ops(self, include_server: bool = True) -> dict[str, int]:
        """Predicted :mod:`repro.obs.ledger` op counts for one cold access.

        Identical for GET and PUT by construction — the whole point of the
        protocol — and the obliviousness auditor asserts the ledger agrees.
        Covers the cold path (no label-cache hit); the cache's savings are
        metered as ``cache.hits`` rows, not modeled here.

        Args:
            include_server: Include the server-side AEAD opens.  Under
                point-and-permute the server opens exactly one entry per
                group; without it the attempt count is value-dependent, so
                decrypts are only modeled (and only asserted) under §10.2.
                In a sharded deployment the server ops land in server-side
                ledger rows, so client-row comparisons pass ``False``.
        """
        (lab_old_calls, lab_old_comp), (off_old_calls, off_old_comp) = (
            self._epoch_parts(self.counter)
        )
        (lab_new_calls, lab_new_comp), (off_new_calls, off_new_comp) = (
            self._epoch_parts(self.counter + 1)
        )
        ek_calls, ek_comp = self._encode_key_cost

        # Every backend derives the old epoch once, the new epoch once in
        # prepare, and the new epoch once more in finalize's decode (cold:
        # no cache to remember it).
        calls = lab_old_calls + 2 * lab_new_calls + ek_calls
        comp = lab_old_comp + 2 * lab_new_comp + ek_comp
        if self.point_and_permute:
            if self.backend == "scalar":
                # The scalar path derives the old-epoch offset once per
                # group but re-derives the new-epoch offset inside every
                # table entry's decrypt_index — T redundant calls per group.
                calls += off_old_calls + self.table_size * off_new_calls
                comp += off_old_comp + self.table_size * off_new_comp
            else:
                calls += off_old_calls + off_new_calls
                comp += off_old_comp + off_new_comp

        ops = {
            "prf.calls": calls,
            "sha256.compressions": comp,
            "aead.encrypts": self.num_groups * self.table_size,
        }
        if include_server and self.point_and_permute:
            ops["aead.decrypts"] = self.num_groups
        return ops


# --------------------------------------------------------------------- #
# Capacity planning
# --------------------------------------------------------------------- #

#: Default planner throughput assumptions.  Both are deliberately explicit
#: (and overridable) inputs, surfaced in the plan's ``assumptions`` — the
#: model makes bytes and compressions exact, while sustained rates are
#: hardware-dependent calibration points.
DEFAULT_SHARD_OPS_PER_SEC = 2_000.0
DEFAULT_COMPRESSIONS_PER_CORE_PER_SEC = 4_000_000.0
DEFAULT_TARGET_UTILIZATION = 0.6

#: Fixed proxy-side cost of one prepare *dispatch* (interpreter dispatch,
#: lane-engine setup, worker IPC where a procpool is attached) — the part
#: of an access that does not scale with bytes hashed and that cross-request
#: coalescing amortizes across a window.  Like the rates above this is an
#: explicit, overridable calibration point echoed into the plan, calibrated
#: against ``benchmarks/test_coalesce_throughput.py`` on the CI host.
DEFAULT_FLUSH_OVERHEAD_SECONDS = 250e-6

#: Server-side calibration points for the access-window fusion term
#: (ROADMAP: server-side counterpart of prepare coalescing).  One designated
#: AEAD open is a short HMAC-SHA256 (a handful of compressions), so a server
#: core sustains far more opens/s than accesses/s; the per-*flush* overhead
#: (storage round trip, dispatch, fan-out) is the part ``server_batch``
#: amortizes.  Calibrated against ``benchmarks/test_server_fusion.py``.
DEFAULT_SERVER_OPENS_PER_SEC = 500_000.0
DEFAULT_SERVER_FLUSH_OVERHEAD_SECONDS = 150e-6


@dataclass(frozen=True, slots=True)
class CapacityPlan:
    """Output of :func:`plan_capacity` — deployment sizing + projections."""

    users: int
    ops_per_user_per_day: float
    ops_per_second: float
    bytes_per_access: int
    compressions_per_access: int
    shards: int
    cpu_cores: int
    network_mb_per_second: float
    storage_gb: float
    projected_p99_ms: float
    dollars_per_day: float
    assumptions: dict

    def as_dict(self) -> dict:
        """JSON-ready form (the planner report artifact)."""
        return {
            "users": self.users,
            "ops_per_user_per_day": self.ops_per_user_per_day,
            "ops_per_second": round(self.ops_per_second, 3),
            "bytes_per_access": self.bytes_per_access,
            "compressions_per_access": self.compressions_per_access,
            "shards": self.shards,
            "cpu_cores": self.cpu_cores,
            "network_mb_per_second": round(self.network_mb_per_second, 3),
            "storage_gb": round(self.storage_gb, 3),
            "projected_p99_ms": round(self.projected_p99_ms, 3),
            "dollars_per_day": round(self.dollars_per_day, 6),
            "assumptions": self.assumptions,
        }


def plan_capacity(
    users: int,
    ops_per_user_per_day: float,
    model: LblCostModel,
    *,
    num_objects: int | None = None,
    shard_ops_per_sec: float = DEFAULT_SHARD_OPS_PER_SEC,
    compressions_per_core_per_sec: float = DEFAULT_COMPRESSIONS_PER_CORE_PER_SEC,
    target_utilization: float = DEFAULT_TARGET_UTILIZATION,
    coalesce_batch: int = 1,
    flush_overhead_seconds: float = DEFAULT_FLUSH_OVERHEAD_SECONDS,
    server_batch: int = 1,
    server_opens_per_sec: float | None = None,
    server_flush_overhead_seconds: float | None = None,
    prices=None,
) -> CapacityPlan:
    """Size a deployment for ``users`` issuing ``ops_per_user_per_day`` each.

    Bytes and compressions per access come from the wire-validated
    ``model``; the sustained-rate assumptions (per-shard op rate, per-core
    compression rate, target utilization) are explicit inputs echoed into
    the plan.  The p99 projection uses the standard M/M/1 tail
    ``p99 ≈ service_time · ln(100) / (1 − ρ)`` at the planned utilization —
    a deliberately simple queueing bound, stated as such.

    The per-access CPU cost splits into work that scales with bytes hashed
    (``compressions / compressions_per_core_per_sec`` — coalescing does not
    change it: a fused window hashes exactly the per-request messages) and
    a fixed per-flush dispatch overhead, amortized across the
    ``coalesce_batch`` requests that share a flush (ROADMAP item 4).  With
    the default ``coalesce_batch=1`` each access pays the full dispatch
    cost, which is the uncoalesced deployment.

    Args:
        users: Active user count.
        ops_per_user_per_day: Accesses per user per day.
        model: The deployment's cost model.
        num_objects: Stored objects (defaults to one per user).
        shard_ops_per_sec: Sustained accesses one shard serves.
        compressions_per_core_per_sec: Sustained SHA-256 compression rate
            of one proxy core.
        target_utilization: Planned peak utilization of shards and cores.
        coalesce_batch: Expected requests per coalescing flush (the
            deployment's ``coalesce_batch`` under saturating traffic);
            ``1`` models the per-request prepare path.
        flush_overhead_seconds: Fixed dispatch cost of one prepare flush
            (see :data:`DEFAULT_FLUSH_OVERHEAD_SECONDS`).
        server_batch: Expected requests per server-side access window (the
            servers' ``server_batch`` under saturating traffic); ``1``
            models the per-request server dispatch path.  The server's
            per-access CPU mirrors the proxy split: the ``G`` designated
            AEAD opens per access are window-invariant
            (``opens / server_opens_per_sec``), while the fixed per-flush
            overhead — the storage get/put round trip and dispatch — is
            shared by the window (``server_flush_overhead / server_batch``).
        server_opens_per_sec: Sustained designated-pair AEAD opens one
            server core performs (default
            :data:`DEFAULT_SERVER_OPENS_PER_SEC`).
        server_flush_overhead_seconds: Fixed cost of one server window
            flush (default :data:`DEFAULT_SERVER_FLUSH_OVERHEAD_SECONDS`).
        prices: :class:`repro.analysis.cost.CloudPrices` override.
    """
    from repro.analysis.cost import CloudPrices

    if users < 1 or ops_per_user_per_day <= 0:
        raise ConfigurationError("users and ops_per_user_per_day must be positive")
    if not 0 < target_utilization < 1:
        raise ConfigurationError("target_utilization must be in (0, 1)")
    if coalesce_batch < 1:
        raise ConfigurationError("coalesce_batch must be >= 1")
    if flush_overhead_seconds < 0:
        raise ConfigurationError("flush_overhead_seconds must be >= 0")
    if server_batch < 1:
        raise ConfigurationError("server_batch must be >= 1")
    if server_opens_per_sec is None:
        server_opens_per_sec = DEFAULT_SERVER_OPENS_PER_SEC
    if server_flush_overhead_seconds is None:
        server_flush_overhead_seconds = DEFAULT_SERVER_FLUSH_OVERHEAD_SECONDS
    if server_opens_per_sec <= 0:
        raise ConfigurationError("server_opens_per_sec must be > 0")
    if server_flush_overhead_seconds < 0:
        raise ConfigurationError("server_flush_overhead_seconds must be >= 0")
    prices = prices or CloudPrices()
    if num_objects is None:
        num_objects = users

    ops_per_day = users * ops_per_user_per_day
    ops_per_second = ops_per_day / 86_400.0
    bytes_per_access = model.framed_bytes_per_access(traced=True)
    model_ops = model.ops(include_server=True)
    compressions = model_ops["sha256.compressions"]
    server_opens = model_ops.get("aead.decrypts", 0)

    shards = max(
        1, int(-(-ops_per_second // (shard_ops_per_sec * target_utilization)))
    )
    # Hashing work is batch-invariant; the fixed dispatch overhead is paid
    # once per flush and shared by the window that flushed together.  The
    # server mirrors the split: its G designated opens per access are
    # window-invariant, its per-flush overhead amortizes over server_batch.
    cpu_seconds_per_access = (
        compressions / compressions_per_core_per_sec
        + flush_overhead_seconds / coalesce_batch
        + server_opens / server_opens_per_sec
        + server_flush_overhead_seconds / server_batch
    )
    cpu_cores = max(
        1,
        int(
            -(-(ops_per_second * cpu_seconds_per_access) // target_utilization)
        ),
    )
    network_mb_per_second = ops_per_second * bytes_per_access / 1e6
    storage_gb = num_objects * model.storage_bytes_per_object / 1e9

    # M/M/1 tail at the planned utilization: service time is the per-access
    # CPU cost on one core; queueing inflates the tail by 1/(1-ρ).
    service_ms = cpu_seconds_per_access * 1_000.0
    projected_p99_ms = service_ms * 4.605 / (1.0 - target_utilization)

    network_gb_per_day = ops_per_day * bytes_per_access / 1e9
    dollars_per_day = (
        network_gb_per_day * prices.network_per_gb
        + storage_gb * prices.storage_per_gb_month / 30.0
        + ops_per_day / 1e6 * prices.invocations_per_million
        + ops_per_day * (service_ms / 100.0) * prices.cpu_per_100ms
    )

    return CapacityPlan(
        users=users,
        ops_per_user_per_day=ops_per_user_per_day,
        ops_per_second=ops_per_second,
        bytes_per_access=bytes_per_access,
        compressions_per_access=compressions,
        shards=shards,
        cpu_cores=cpu_cores,
        network_mb_per_second=network_mb_per_second,
        storage_gb=storage_gb,
        projected_p99_ms=projected_p99_ms,
        dollars_per_day=dollars_per_day,
        assumptions={
            "backend": model.backend,
            "value_len": model.value_len,
            "group_bits": model.group_bits,
            "label_bits": model.label_bits,
            "point_and_permute": model.point_and_permute,
            "num_objects": num_objects,
            "shard_ops_per_sec": shard_ops_per_sec,
            "compressions_per_core_per_sec": compressions_per_core_per_sec,
            "target_utilization": target_utilization,
            "coalesce_batch": coalesce_batch,
            "flush_overhead_seconds": flush_overhead_seconds,
            "server_batch": server_batch,
            "server_opens_per_sec": server_opens_per_sec,
            "server_flush_overhead_seconds": server_flush_overhead_seconds,
            "p99_model": "M/M/1 tail: service_ms * ln(100) / (1 - utilization)",
        },
    )


# --------------------------------------------------------------------- #
# Model-vs-ledger validation
# --------------------------------------------------------------------- #


def run_model_check(
    value_sizes: "tuple[int, ...]" = (4, 8, 16),
    backends: "tuple[str, ...]" = ("scalar", "stdlib", "vector"),
    group_bits: int = 2,
) -> dict:
    """Replay GET and PUT in-process and diff the ledger against the model.

    The backbone of ``repro plan --check``: for every (value size, backend)
    cell it runs one GET and one PUT through a real
    :class:`~repro.core.lbl.LblOrtoa` deployment under a tracked ledger row
    and compares the row's ops *and* wire bytes to the model byte-for-byte.
    Point-and-permute is always on (without it the server's decrypt-attempt
    count is value-dependent and exact equality is not defined).

    The pseudo-backend ``"coalesced"`` routes the access through a
    :class:`~repro.core.lbl.parallel.ParallelPrepareEngine` with the
    coalescing window *and* the shared-memory procpool enabled — the
    fused-dispatch path — and checks it against the ``"procpool"`` model:
    per-request op counts are unchanged by fusion, which is exactly the
    exactness claim coalescing must preserve.

    The pseudo-backend ``"server-coalesced"`` is the server-side twin: the
    tracked access is served through a fused
    :meth:`~repro.core.lbl.server.LblServer.process_many` window shared
    with an untracked decoy request, and the tracked ledger row must still
    equal the ``"stdlib"`` model byte-for-byte — the window-wide
    ``open_many``'s closed-form per-row attribution is exact, not
    approximate.

    Returns a JSON-ready report: ``{"ok": bool, "cases": [...]}`` where
    each case carries the expected/actual dicts and its own verdict.
    """
    import random as _random

    from repro import obs
    from repro.core.lbl import LblOrtoa
    from repro.core.lbl.parallel import ParallelPrepareEngine
    from repro.obs import ledger
    from repro.types import Request

    was_enabled = obs.is_enabled()
    obs.enable()
    cases = []
    try:
        for value_len in value_sizes:
            for backend in backends:
                config = StoreConfig(
                    value_len=value_len,
                    group_bits=group_bits,
                    point_and_permute=True,
                )
                engine = None
                server_fused = backend == "server-coalesced"
                if backend in ("procpool", "coalesced"):
                    protocol = LblOrtoa(
                        config, rng=_random.Random(7), crypto_backend="stdlib"
                    )
                    engine = ParallelPrepareEngine(
                        protocol.proxy,
                        workers=0,
                        backend="procpool",
                        coalesce_window=(
                            0.0005 if backend == "coalesced" else 0.0
                        ),
                    )
                elif server_fused:
                    protocol = LblOrtoa(
                        config, rng=_random.Random(7), crypto_backend="stdlib"
                    )
                else:
                    protocol = LblOrtoa(
                        config,
                        rng=_random.Random(7),
                        batched=backend != "scalar",
                        crypto_backend=backend if backend != "scalar" else "auto",
                    )
                records = {"k": b"\x01" * value_len}
                if server_fused:
                    # The decoy shares the fused server window with the
                    # tracked access; it is prepared and finalized outside
                    # the tracked row.
                    records["d"] = b"\x01" * value_len
                protocol.initialize(records)
                try:
                    for op_name, request in (
                        ("get", Request.read("k")),
                        ("put", Request.write("k", b"\x02" * value_len)),
                    ):
                        epoch = protocol.proxy.counter("k")
                        if backend == "coalesced":
                            model_backend = "procpool"
                        elif server_fused:
                            model_backend = "stdlib"
                        else:
                            model_backend = backend
                        model = LblCostModel.from_config(
                            config,
                            backend=model_backend,
                            key="k",
                            counter=epoch,
                        )
                        if server_fused:
                            decoy_epoch = protocol.proxy.counter("d") + 1
                            decoy_built, _decoy_ops = protocol.proxy.prepare(
                                Request.read("d")
                            )
                        with ledger.track(label=f"check:{op_name}") as row:
                            if server_fused:
                                from repro.errors import OrtoaError

                                built, _prep_ops = protocol.proxy.prepare(request)
                                fused = protocol.server.process_many(
                                    [built, decoy_built], rows=[row, None]
                                )
                                for item in fused:
                                    if isinstance(item, OrtoaError):
                                        raise item
                                response, _server_ops = fused[0]
                                protocol.proxy.finalize(
                                    "k", response, counter=epoch + 1
                                )
                                actual_wire = {
                                    "access.sent": len(built.to_bytes()),
                                    "access.received": len(response.to_bytes()),
                                }
                            elif engine is None:
                                protocol.access(request)
                                actual_wire = None
                            else:
                                built, ops_, new_epoch = engine.prepare_batch(
                                    [request]
                                )[0]
                                response, _ = protocol.server.process(built)
                                protocol.proxy.finalize(
                                    "k", response, counter=new_epoch
                                )
                                # The engine path skips LblOrtoa.access, so
                                # measure the logical exchange directly.
                                actual_wire = {
                                    "access.sent": len(built.to_bytes()),
                                    "access.received": len(response.to_bytes()),
                                }
                        if server_fused:
                            # Decoy finalize outside the tracked row: its
                            # crypto belongs to the decoy, not the case.
                            protocol.proxy.finalize(
                                "d", fused[1][0], counter=decoy_epoch
                            )
                        snap = row.snapshot()
                        if actual_wire is None:
                            actual_wire = snap["wire"]
                        expected_ops = model.ops(include_server=True)
                        actual_ops = {
                            k: snap["ops"].get(k, 0) for k in expected_ops
                        }
                        expected_wire = {
                            "access.sent": model.request_bytes,
                            "access.received": model.response_bytes,
                        }
                        ok = (
                            actual_ops == expected_ops
                            and actual_wire == expected_wire
                        )
                        cases.append(
                            {
                                "value_len": value_len,
                                "backend": backend,
                                "op": op_name,
                                "ok": ok,
                                "expected_ops": expected_ops,
                                "actual_ops": actual_ops,
                                "expected_wire": expected_wire,
                                "actual_wire": actual_wire,
                            }
                        )
                finally:
                    if engine is not None:
                        engine.close()
    finally:
        if not was_enabled:
            obs.disable()
    return {"ok": all(case["ok"] for case in cases), "cases": cases}


__all__ = [
    "MODEL_BACKENDS",
    "ENCODED_KEY_BYTES",
    "AEAD_OVERHEAD_BYTES",
    "DECRYPT_INDEX_BYTES",
    "LblCostModel",
    "CapacityPlan",
    "plan_capacity",
    "run_model_check",
    "DEFAULT_SHARD_OPS_PER_SEC",
    "DEFAULT_COMPRESSIONS_PER_CORE_PER_SEC",
    "DEFAULT_TARGET_UTILIZATION",
    "DEFAULT_SERVER_OPENS_PER_SEC",
    "DEFAULT_SERVER_FLUSH_OVERHEAD_SECONDS",
]
