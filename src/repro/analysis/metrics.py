"""Latency/throughput aggregation for experiment runs.

Each experiment produces a list of :class:`~repro.types.LatencySample`; this
module reduces them to the quantities the paper plots: average latency,
tail percentiles, operations per second, and the Figure 3c latency
breakdown (compute vs. base RTT vs. size-dependent communication overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.types import LatencySample, Operation


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """Aggregated results of one experiment run."""

    num_requests: int
    duration_ms: float
    throughput_ops_per_s: float
    avg_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    avg_compute_ms: float
    avg_comm_overhead_ms: float
    read_fraction: float

    @property
    def avg_base_comm_ms(self) -> float:
        """The latency not explained by compute or size overhead (≈ RTTs)."""
        return self.avg_latency_ms - self.avg_compute_ms - self.avg_comm_overhead_ms

    def to_dict(self) -> dict[str, float | int]:
        """All fields (plus the derived RTT share) as a JSON-ready dict."""
        out = {name: getattr(self, name) for name in self.__dataclass_fields__}
        out["avg_base_comm_ms"] = self.avg_base_comm_ms
        return out


def summarize(samples: list[LatencySample], duration_ms: float) -> RunMetrics:
    """Reduce per-request samples into a :class:`RunMetrics`.

    Args:
        samples: Completed requests (at least one).
        duration_ms: Wall-clock (simulated) duration the requests completed
            within; throughput = ``len(samples) / duration``.
    """
    if not samples:
        raise ConfigurationError("cannot summarize an empty sample list")
    if duration_ms <= 0:
        raise ConfigurationError("duration must be positive")
    latencies = np.array([s.latency_ms for s in samples])
    computes = np.array([s.compute_ms for s in samples])
    overheads = np.array([s.comm_overhead_ms for s in samples])
    reads = sum(1 for s in samples if s.op is Operation.READ)
    return RunMetrics(
        num_requests=len(samples),
        duration_ms=duration_ms,
        throughput_ops_per_s=len(samples) / (duration_ms / 1000.0),
        avg_latency_ms=float(latencies.mean()),
        p50_latency_ms=float(np.percentile(latencies, 50)),
        p95_latency_ms=float(np.percentile(latencies, 95)),
        p99_latency_ms=float(np.percentile(latencies, 99)),
        avg_compute_ms=float(computes.mean()),
        avg_comm_overhead_ms=float(overheads.mean()),
        read_fraction=reads / len(samples),
    )


__all__ = ["RunMetrics", "summarize"]
