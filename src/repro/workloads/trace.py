"""Workload trace recording and replay.

Reproducible benchmarking needs reproducible inputs.  A *trace* is a plain
JSON-lines file of requests — one object per line with ``op``, ``key``, and
(hex-encoded) ``value`` — that can be recorded from any request source and
replayed against any protocol.  Useful for regression comparisons ("same
trace, new code"), cross-protocol A/B runs, and shipping workloads between
machines.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.types import Operation, Request


def record_trace(requests: Iterable[Request], path: str | os.PathLike) -> int:
    """Write requests to a JSONL trace file; returns the request count."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(target, "w", encoding="utf-8") as out:
        for request in requests:
            record = {"op": request.op.value, "key": request.key}
            if request.value is not None:
                record["value"] = request.value.hex()
            out.write(json.dumps(record) + "\n")
            count += 1
    return count


def replay_trace(path: str | os.PathLike) -> Iterator[Request]:
    """Stream requests back from a trace file.

    Raises:
        ConfigurationError: missing file or a malformed line (with its
            line number, because debugging traces without that is misery).
    """
    source = pathlib.Path(path)
    if not source.exists():
        raise ConfigurationError(f"trace file {source} does not exist")
    with open(source, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                op = Operation(record["op"])
                key = record["key"]
                if op is Operation.WRITE:
                    yield Request.write(key, bytes.fromhex(record["value"]))
                else:
                    yield Request.read(key)
            except (KeyError, ValueError, TypeError) as exc:
                raise ConfigurationError(
                    f"{source}:{line_no}: malformed trace record ({exc})"
                ) from None


def trace_summary(path: str | os.PathLike) -> dict[str, int | float]:
    """Quick statistics over a trace: counts, write fraction, distinct keys."""
    reads = writes = 0
    keys = set()
    for request in replay_trace(path):
        keys.add(request.key)
        if request.op is Operation.WRITE:
            writes += 1
        else:
            reads += 1
    total = reads + writes
    if total == 0:
        raise ConfigurationError("trace is empty")
    return {
        "requests": total,
        "reads": reads,
        "writes": writes,
        "write_fraction": writes / total,
        "distinct_keys": len(keys),
    }


__all__ = ["record_trace", "replay_trace", "trace_summary"]
