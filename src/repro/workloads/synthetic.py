"""Synthetic workloads matching the paper's experimental setup (§6).

Default parameters mirror the paper: each client thread picks keys uniformly
at random and flips a fair coin between GET and PUT; most experiments use
160-byte values.  The write fraction and the key distribution (uniform or
Zipfian) are sweepable because Figures 2c and 2d sweep them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Operation, Request


def synthetic_records(num_objects: int, value_len: int, seed: int = 0) -> dict[str, bytes]:
    """Deterministic plaintext records ``obj-0 .. obj-(n-1)``."""
    if num_objects < 1:
        raise ConfigurationError("num_objects must be >= 1")
    rng = random.Random(seed)
    return {
        f"obj-{i}": rng.randbytes(value_len) for i in range(num_objects)
    }


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters of a request stream.

    Attributes:
        keys: Population of keys to draw from.
        value_len: Bytes per written value.
        write_fraction: P(PUT) per request — Figure 2c sweeps 0.0 → 1.0.
        zipf_s: If > 0, keys are drawn Zipf(s) by rank instead of uniformly.
        seed: RNG seed; streams are fully deterministic given the spec.
    """

    keys: tuple[str, ...]
    value_len: int
    write_fraction: float = 0.5
    zipf_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.keys:
            raise ConfigurationError("workload needs at least one key")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        if self.zipf_s < 0:
            raise ConfigurationError("zipf_s must be non-negative")


class RequestStream:
    """An infinite deterministic request generator for one workload spec."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._weights = self._key_weights()

    def _key_weights(self) -> list[float] | None:
        if self.spec.zipf_s == 0.0:
            return None
        ranks = np.arange(1, len(self.spec.keys) + 1, dtype=float)
        weights = ranks ** (-self.spec.zipf_s)
        return list(weights / weights.sum())

    def _pick_key(self) -> str:
        if self._weights is None:
            return self._rng.choice(self.spec.keys)
        return self._rng.choices(self.spec.keys, weights=self._weights, k=1)[0]

    def next_request(self) -> Request:
        """The next request in the deterministic stream."""
        key = self._pick_key()
        if self._rng.random() < self.spec.write_fraction:
            return Request.write(key, self._rng.randbytes(self.spec.value_len))
        return Request.read(key)

    def take(self, count: int) -> list[Request]:
        """The next ``count`` requests as a list."""
        return [self.next_request() for _ in range(count)]

    def __iter__(self) -> Iterator[Request]:
        while True:
            yield self.next_request()

    def observed_write_fraction(self, sample: int = 1000) -> float:
        """Diagnostic: empirical write fraction of a fresh sample."""
        ops = [r.op for r in RequestStream(self.spec).take(sample)]
        return sum(1 for op in ops if op is Operation.WRITE) / sample


__all__ = ["WorkloadSpec", "RequestStream", "synthetic_records"]
