"""Workload generation: synthetic request streams and dataset builders.

§6 of the paper evaluates on (a) synthetic uniform workloads over ~1M
160-byte objects and (b) three real-world datasets (EHR heart-disease
records, SmallBank accounts, UCI e-commerce purchases).  The original files
are not redistributable, so :mod:`repro.workloads.datasets` synthesizes
records with the paper's exact schemas and value sizes — the only workload
properties the measured figures depend on.
"""

from repro.workloads.datasets import DATASETS, DatasetSpec, build_dataset
from repro.workloads.synthetic import RequestStream, WorkloadSpec, synthetic_records
from repro.workloads.trace import record_trace, replay_trace, trace_summary

__all__ = [
    "WorkloadSpec",
    "RequestStream",
    "synthetic_records",
    "DatasetSpec",
    "DATASETS",
    "build_dataset",
    "record_trace",
    "replay_trace",
    "trace_summary",
]
