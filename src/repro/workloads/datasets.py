"""Synthetic stand-ins for the paper's three real-world datasets (§6.4).

The paper initializes 1M-object databases from:

1. **EHR** — UCI heart-disease records: a patient UUID key and a resting
   blood pressure value of **10 B** (80 bits); the 1 024-row original is
   repeated up to 1M entries.
2. **SmallBank** — per-customer banking records: UUID key and a **50 B**
   combined value (checking balance, savings balance, account numbers).
3. **e-commerce** — UCI online-retail: invoice-number keys, values are
   ``customer_id`` (5 chars) concatenated with ``productDescription``
   (35 chars) = **40 B**.

The figures depend only on value sizes and request mixes, so these builders
generate records with exactly those schemas (deterministically, from a
seed), and like the paper they cycle a small base population up to the
requested database size.
"""

from __future__ import annotations

import random
import uuid
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

_PRODUCT_WORDS = [
    "LANTERN", "HOLDER", "VINTAGE", "CERAMIC", "MUG", "HEART", "TLIGHT",
    "JAM", "JAR", "CAKE", "TIN", "RETRO", "SPOT", "RED", "WHITE", "METAL",
    "SIGN", "BOX", "SET", "GLASS", "STAR", "HANGING", "DECORATION", "FELT",
]


def _ehr_value(rng: random.Random) -> bytes:
    """Resting blood pressure reading padded to 10 bytes."""
    reading = f"{rng.randint(90, 200):03d}mmHg"
    return reading.encode("ascii").ljust(10, b"\x00")[:10]


def _smallbank_value(rng: random.Random) -> bytes:
    """Checking balance + savings balance + account numbers, 50 bytes."""
    checking = rng.randint(0, 10_000_00)  # cents
    savings = rng.randint(0, 100_000_00)
    account = rng.randint(10**9, 10**10 - 1)
    routing = rng.randint(10**8, 10**9 - 1)
    packed = f"C{checking:012d}S{savings:012d}A{account}R{routing}"
    return packed.encode("ascii").ljust(50, b"\x00")[:50]


def _ecommerce_value(rng: random.Random) -> bytes:
    """customer_id (5 chars) + productDescription (35 chars) = 40 bytes."""
    customer = f"{rng.randint(10000, 99999)}"
    words = rng.sample(_PRODUCT_WORDS, k=rng.randint(2, 4))
    description = " ".join(words)[:35].ljust(35)
    return (customer + description).encode("ascii")[:40]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Schema of one §6.4 dataset: name, value size, base population size."""

    name: str
    value_len: int
    base_rows: int
    value_builder: Callable[[random.Random], bytes]
    key_prefix: str


DATASETS: dict[str, DatasetSpec] = {
    "ehr": DatasetSpec("ehr", 10, 1024, _ehr_value, "patient"),
    "smallbank": DatasetSpec("smallbank", 50, 100_000, _smallbank_value, "customer"),
    "ecommerce": DatasetSpec("ecommerce", 40, 541_909, _ecommerce_value, "invoice"),
}


def build_dataset(name: str, num_objects: int, seed: int = 0) -> dict[str, bytes]:
    """Build ``num_objects`` records for dataset ``name``.

    Mirrors the paper's methodology: generate the base population, then
    cycle ("repeat the dataset") with distinct keys until the requested
    database size is reached.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise ConfigurationError(f"unknown dataset {name!r}; known: {known}") from None
    if num_objects < 1:
        raise ConfigurationError("num_objects must be >= 1")

    rng = random.Random(seed)
    base_size = min(spec.base_rows, num_objects)
    base_values = [spec.value_builder(rng) for _ in range(base_size)]
    key_rng = random.Random(seed + 1)
    records: dict[str, bytes] = {}
    for i in range(num_objects):
        key = f"{spec.key_prefix}-{uuid.UUID(int=key_rng.getrandbits(128))}"
        records[key] = base_values[i % base_size]
    return records


__all__ = ["DatasetSpec", "DATASETS", "build_dataset"]
