"""Global on/off switch for the observability layer.

Instrumented hot paths (AEAD, LBL proxy/server, framing, ORAM) guard every
span/counter emission behind :data:`enabled`, a plain module attribute, so
the disabled path costs one attribute read — the ≤5 % overhead budget of
the observability design.  The switch lives in its own leaf module so that
:mod:`repro.obs.trace` and :mod:`repro.obs.metrics` can read it without
importing the package ``__init__`` (which would be circular).
"""

from __future__ import annotations

#: True while observability capture is active.  Mutated only through
#: :func:`repro.obs.enable` / :func:`repro.obs.disable`.
enabled: bool = False
