"""Flight recorder: a bounded, lock-cheap ring of structured events.

Metrics answer "how often"; spans answer "how long"; neither answers *why
this particular request* was shed, stalled, or slow.  The flight recorder
fills that gap: hot-path subsystems append small immutable events (shed
decisions with their cause and the window occupancy at shed time, coalescer
flush records with their flush reason, server-side access-window flushes
(``server.window`` — reason and fill, payload-independent by construction),
shared-memory ring slot stalls, procpool worker lifecycle transitions,
slow-consumer aborts) into a fixed-capacity ring.  The ring never grows: once full, the oldest event is
overwritten and counted in ``dropped``, so sustained event storms cost O(1)
memory.

Every emission site sits behind the usual ``if _state.enabled`` guard, so
the disabled path costs one attribute check — the same contract as spans
and metrics, gated by ``benchmarks/test_obs_overhead.py``.

Post-mortems: :meth:`FlightRecorder.trigger` snapshots the ring exactly
once per trigger key (an overload burst that sheds 10k requests produces
one dump, not 10k) and, when ``REPRO_RECORDER_DIR`` is set, writes the
snapshot as a JSON file for CI to collect as a failure artifact.

Cross-process: a shard's ring travels in the obs control-frame bundle
(``LblFrameDispatcher.obs_dump``) and :func:`merge_recorder_dumps` merges
shard rings into one timeline, tagging each event with its process like
:func:`repro.obs.propagate.merge_span_dumps` tags spans.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Iterable

from repro.obs import _state
from repro.obs import clock as obs_clock

#: Environment variable naming a directory for post-mortem dump files.
#: Unset (the default) means triggers snapshot in memory only.
DUMP_DIR_ENV = "REPRO_RECORDER_DIR"

#: Default ring capacity — ~4k events of a few hundred bytes each bounds
#: the recorder below a couple of MB per process.
DEFAULT_CAPACITY = 4096

#: Shed decisions within one burst window that escalate to a trigger.
OVERLOAD_BURST_THRESHOLD = 32

#: Width of the overload-burst window, in the recording clock's unit.
OVERLOAD_BURST_WINDOW_S = 1.0


class RecorderEvent:
    """One immutable recorder entry: when, what kind, and its fields."""

    __slots__ = ("seq", "time", "kind", "fields")

    def __init__(self, seq: int, time: float, kind: str, fields: dict[str, Any]):
        self.seq = seq
        self.time = time
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "fields": dict(self.fields),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecorderEvent(#{self.seq} {self.kind} {self.fields!r})"


class FlightRecorder:
    """A fixed-capacity event ring with exactly-once trigger dumps.

    Args:
        capacity: Ring size in events; the oldest event is overwritten
            once the ring is full.

    Thread safety: :meth:`record` takes one short lock around a slot write
    and a counter increment — cheap enough for hot paths, and events can
    never tear (an event is fully constructed before the lock is taken and
    is immutable afterwards).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._slots: list[RecorderEvent | None] = [None] * capacity
        self._seq = 0
        self._dropped = 0
        self._triggers: dict[str, dict[str, Any]] = {}
        self._burst_window_start = 0.0
        self._burst_count = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event.  Call sites guard with ``if _state.enabled``.

        The guard lives at the call site (not here) so the disabled path
        pays one attribute check and zero function calls — the contract
        the obs-overhead benchmark gates.
        """
        event = RecorderEvent(0, obs_clock.now(), kind, fields)
        with self._lock:
            event.seq = self._seq
            if self._seq >= self.capacity:
                self._dropped += 1
            self._slots[self._seq % self.capacity] = event
            self._seq += 1

    def record_shed(self, cause: str, in_flight: int, conn_in_flight: int,
                    max_in_flight: int, max_per_conn: int) -> None:
        """A shed decision, plus overload-burst escalation.

        Shed events fire before the request payload is parsed, so they are
        operation-type oblivious by construction — the fields describe the
        server's window state, never the request.
        """
        now = obs_clock.now()
        self.record(
            "transport.shed",
            cause=cause,
            in_flight=in_flight,
            conn_in_flight=conn_in_flight,
            max_in_flight=max_in_flight,
            max_in_flight_per_conn=max_per_conn,
        )
        with self._lock:
            if now - self._burst_window_start > OVERLOAD_BURST_WINDOW_S:
                self._burst_window_start = now
                self._burst_count = 0
            self._burst_count += 1
            burst = self._burst_count == OVERLOAD_BURST_THRESHOLD
        if burst:
            self.trigger("overload-burst", sheds_in_window=OVERLOAD_BURST_THRESHOLD)

    # ------------------------------------------------------------------ #
    # Triggers (exactly-once post-mortems)
    # ------------------------------------------------------------------ #

    def trigger(self, reason: str, **context: Any) -> dict[str, Any] | None:
        """Snapshot the ring once for ``reason``; later calls are no-ops.

        Returns the dump dict on the first call per reason (None after).
        When :data:`DUMP_DIR_ENV` names a directory, the dump is also
        written there as ``recorder-<reason>-pid<pid>.json`` so CI can
        upload post-mortems as failure artifacts.
        """
        with self._lock:
            if reason in self._triggers:
                return None
            # Reserve the key inside the lock so concurrent triggers for
            # the same reason dump exactly once.
            self._triggers[reason] = {}
        dump = self.export()
        dump["trigger"] = {"reason": reason, "time": obs_clock.now(), **context}
        with self._lock:
            self._triggers[reason] = dump
        dump_dir = os.environ.get(DUMP_DIR_ENV)
        if dump_dir:
            try:
                os.makedirs(dump_dir, exist_ok=True)
                path = os.path.join(
                    dump_dir, f"recorder-{reason}-pid{os.getpid()}.json"
                )
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(dump, handle, indent=2, default=str)
            except OSError:  # pragma: no cover - dump dir unwritable
                pass
        return dump

    def triggered(self) -> dict[str, dict[str, Any]]:
        """All trigger dumps taken so far, keyed by reason."""
        with self._lock:
            return dict(self._triggers)

    # ------------------------------------------------------------------ #
    # Inspection / export
    # ------------------------------------------------------------------ #

    def events(self, kind: str | None = None) -> list[RecorderEvent]:
        """Ring contents oldest-first, optionally filtered by kind."""
        with self._lock:
            seq = self._seq
            slots = list(self._slots)
        if seq <= self.capacity:
            ordered = [e for e in slots[:seq] if e is not None]
        else:
            pivot = seq % self.capacity
            ordered = [e for e in slots[pivot:] + slots[:pivot] if e is not None]
        if kind is not None:
            ordered = [e for e in ordered if e.kind == kind]
        return ordered

    def __len__(self) -> int:
        with self._lock:
            return min(self._seq, self.capacity)

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring was full."""
        with self._lock:
            return self._dropped

    def export(self) -> dict[str, Any]:
        """JSON-ready snapshot: events, capacity, drop count."""
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "events": [e.to_dict() for e in self.events()],
        }

    def reset(self) -> None:
        """Drop all events, triggers, and burst state."""
        with self._lock:
            self._slots = [None] * self.capacity
            self._seq = 0
            self._dropped = 0
            self._triggers = {}
            self._burst_window_start = 0.0
            self._burst_count = 0


def merge_recorder_dumps(
    local_events: Iterable[dict[str, Any]],
    remote_dumps: Iterable[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Merge shard recorder dumps into one timeline.

    Mirrors :func:`repro.obs.propagate.merge_span_dumps`: each remote
    dump's events are tagged ``process="shard-<i>"`` (local events keep
    any tag they already carry, defaulting to ``"local"``), then the
    combined list is ordered by timestamp.  Clocks are per-process, so
    cross-process ordering is approximate — same as merged span dumps.
    """
    merged: list[dict[str, Any]] = []
    for event in local_events:
        event = dict(event)
        event.setdefault("process", "local")
        merged.append(event)
    for index, dump in enumerate(remote_dumps):
        for event in dump.get("events", []):
            event = dict(event)
            event.setdefault("process", f"shard-{index}")
            merged.append(event)
    merged.sort(key=lambda e: (e.get("time", 0.0), e.get("process", ""), e.get("seq", 0)))
    return merged


#: The process-wide recorder all built-in instrumentation writes to.
RECORDER = FlightRecorder()


__all__ = [
    "DEFAULT_CAPACITY",
    "DUMP_DIR_ENV",
    "OVERLOAD_BURST_THRESHOLD",
    "OVERLOAD_BURST_WINDOW_S",
    "FlightRecorder",
    "RecorderEvent",
    "RECORDER",
    "merge_recorder_dumps",
]
