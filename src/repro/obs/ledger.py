"""Per-request resource ledger: wire bytes and crypto ops, attributed.

The paper's cost story (§6.3.3, Table 2) is a budget — bytes per access and
primitive invocations per access — so this module meters both at the places
they actually happen and attributes them to the request that caused them:

* **Wire bytes** are counted where frames cross a socket
  (:mod:`repro.transport.pipeline`, :mod:`repro.transport.server`) or a
  logical request boundary (:class:`repro.core.lbl.LblOrtoa`,
  :class:`repro.core.sharded.ShardedLblDeployment`), keyed by frame type ×
  direction × role.
* **Crypto ops** are counted inside the primitives themselves
  (:mod:`repro.crypto.prf`, :mod:`repro.crypto.aead`,
  :mod:`repro.crypto.sha256_lanes`, the label cache) so every fast path —
  lanes, process pool, cache hit — is metered where it short-circuits.

Attribution uses a :mod:`contextvars` ambient row: :func:`track` opens a
:class:`LedgerRow` for the current context, instrumented code calls
:func:`add_op` / :func:`credit_wire`, and the row lands in a bounded
archive when the block exits.  Code that hops threads (the parallel prepare
engine, the pipelined window, server handler threads) activates rows
explicitly with :func:`activate` so bytes and ops never cross-attribute
between interleaved requests.

Two write paths exist on purpose, to make double-crediting impossible:

* :func:`count_wire` writes **only** the process-wide registry
  (``ledger.wire.{role}.{frame}.{direction}.bytes``).  Transport layers
  call it — they see real socket traffic but cannot split a mux frame
  fairly between pipelined requests.
* :func:`credit_wire` writes **only** the ambient (or given) row.  The
  deployment layer calls it — it knows exactly which bytes belong to which
  request, including each request's share of batch envelopes.

:func:`add_op` writes both, because a primitive invocation is unambiguous:
whoever is running when the PRF evaluates owns that evaluation.

Everything here is inert unless :data:`repro.obs._state.enabled` is set;
callers additionally guard their call sites, keeping the disabled path at
one attribute load.

This module is imported by the crypto layer, so it must stay a leaf: it
imports only :mod:`repro.obs._state` and :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import contextvars
import threading
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY

# Wire-format literals, duplicated from repro.transport.framing and
# repro.core.messages so the ledger stays import-cycle-free.  The framing
# tests pin the canonical values; test_ledger.py pins these copies to them.
_MUX_TAG = 0x50
_MUX_TRACED_TAG = 0x51
_MUX_HEADER = 9  # 1 tag + 8-byte request id
_MUX_TRACED_HEADER = 25  # + 16-byte trace context

_FRAME_NAMES = {
    0x20: "access",  # LblAccessRequest
    0x21: "access",  # LblAccessResponse
    0x22: "batch",  # LblBatchRequest
    0x23: "batch",  # LblBatchResponse
    0x40: "load",  # LOAD_TAG
    0x41: "load",  # LOAD_ACK_TAG
    0x60: "obs",  # OBS_PULL_TAG
    0x61: "obs",  # OBS_DUMP_TAG
    0x62: "obs",  # OBS_PROFILE_START_TAG
    0x63: "obs",  # OBS_PROFILE_STOP_TAG
    0x64: "obs",  # OBS_PROFILE_DUMP_TAG
    0x7E: "overload",  # OVERLOAD_TAG (async transport load shedding)
    0x7F: "error",  # ERROR_TAG
}


def framed_mux_bytes(payload_len: int, traced: bool = True) -> int:
    """Wire footprint of one mux-wrapped payload: 4-byte frame length plus
    the mux header (25 bytes with a trace context, 9 without) plus payload.

    The deployment layer uses this to credit a request's row with exactly
    the bytes the transport layer counts for the same frame.
    """
    return 4 + (_MUX_TRACED_HEADER if traced else _MUX_HEADER) + payload_len


def frame_type(payload: bytes) -> str:
    """Classify a frame payload (mux or plain) for ledger keys.

    Mux envelopes are unwrapped first so a pipelined access and a lockstep
    access land under the same ``access`` key.
    """
    if not payload:
        return "other"
    tag = payload[0]
    if tag == _MUX_TAG:
        payload = payload[_MUX_HEADER:]
    elif tag == _MUX_TRACED_TAG:
        payload = payload[_MUX_TRACED_HEADER:]
    if not payload:
        return "other"
    return _FRAME_NAMES.get(payload[0], "other")


class LedgerRow:
    """Resource totals of one tracked request (or one server-side handling).

    ``wire`` is keyed ``"{frame}.{direction}"`` → bytes; ``ops`` is keyed by
    primitive name → count.  Rows are mutated from whichever thread is doing
    the request's work, so each row carries its own lock.
    """

    __slots__ = ("label", "trace_id", "wire", "ops", "_lock")

    def __init__(self, label: str = "", trace_id: int | None = None) -> None:
        self.label = label
        self.trace_id = trace_id
        self.wire: dict[str, int] = {}
        self.ops: dict[str, int] = {}
        self._lock = threading.Lock()

    def credit_wire(self, frame: str, direction: str, nbytes: int) -> None:
        """Add ``nbytes`` under ``{frame}.{direction}``."""
        key = f"{frame}.{direction}"
        with self._lock:
            self.wire[key] = self.wire.get(key, 0) + nbytes

    def add_op(self, primitive: str, n: int = 1) -> None:
        """Count ``n`` invocations of ``primitive``."""
        with self._lock:
            self.ops[primitive] = self.ops.get(primitive, 0) + n

    @property
    def wire_bytes(self) -> int:
        """Total bytes across every frame type and direction."""
        return sum(self.wire.values())

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy (JSON-ready, safe to keep after the row retires)."""
        with self._lock:
            return {
                "label": self.label,
                "trace_id": self.trace_id,
                "wire": dict(self.wire),
                "ops": dict(self.ops),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LedgerRow(label={self.label!r}, wire={self.wire}, ops={self.ops})"


_ROW: contextvars.ContextVar[LedgerRow | None] = contextvars.ContextVar(
    "repro_ledger_row", default=None
)

#: Retired rows, newest last.  Bounded so long runs cannot grow without
#: limit; 1024 rows comfortably covers any audit or validation batch.
MAX_COMPLETED_ROWS = 1024
_completed: deque[LedgerRow] = deque(maxlen=MAX_COMPLETED_ROWS)
_completed_lock = threading.Lock()


def current_row() -> LedgerRow | None:
    """The row receiving ambient credit in this context, if any."""
    return _ROW.get()


def activate(row: LedgerRow | None) -> contextvars.Token:
    """Make ``row`` the ambient row for this thread/context.

    Returns the token to pass to :func:`deactivate`.  Used by code that
    carries a row across a thread hop (worker pools, reader threads), where
    the :func:`track` context manager of the originating thread is not
    visible.
    """
    return _ROW.set(row)


def deactivate(token: contextvars.Token) -> None:
    """Undo a matching :func:`activate`."""
    _ROW.reset(token)


def retire(row: LedgerRow) -> None:
    """Archive a finished row into the bounded completed deque."""
    with _completed_lock:
        _completed.append(row)


@contextmanager
def track(label: str = "", trace_id: int | None = None) -> Iterator[LedgerRow]:
    """Open a ledger row for the duration of a ``with`` block.

    The row becomes the ambient attribution target; on exit it is archived
    (see :func:`completed_rows`) and the previous ambient row — possibly
    ``None`` — is restored, so tracked sections nest.
    """
    row = LedgerRow(label=label, trace_id=trace_id)
    token = _ROW.set(row)
    try:
        yield row
    finally:
        _ROW.reset(token)
        retire(row)


def completed_rows() -> list[LedgerRow]:
    """Retired rows, oldest first (bounded by :data:`MAX_COMPLETED_ROWS`)."""
    with _completed_lock:
        return list(_completed)


def reset() -> None:
    """Drop all retired rows (registry counters are reset via obs.reset())."""
    with _completed_lock:
        _completed.clear()


def count_wire(frame: str, direction: str, nbytes: int, role: str = "client") -> None:
    """Meter real wire traffic into the process-wide registry **only**.

    Called at transport boundaries.  ``direction`` is ``sent`` or
    ``received`` from ``role``'s point of view.  Deliberately does *not*
    touch the ambient row — per-request attribution is the deployment
    layer's job (:func:`credit_wire`), and doing both here would
    double-credit.
    """
    if not _obs.enabled:
        return
    REGISTRY.counter(f"ledger.wire.{role}.{frame}.{direction}.bytes").inc(nbytes)


def credit_wire(
    frame: str, direction: str, nbytes: int, row: LedgerRow | None = None
) -> None:
    """Credit bytes to a request's row **only** (ambient row when ``row`` is
    ``None``).  The registry totals come from :func:`count_wire` at the
    transport layer; crediting them here too would double-count."""
    if not _obs.enabled:
        return
    if row is None:
        row = _ROW.get()
    if row is not None:
        row.credit_wire(frame, direction, nbytes)


def credit_op(primitive: str, n: int = 1, row: LedgerRow | None = None) -> None:
    """Credit ``n`` invocations of ``primitive`` to a request's row **only**
    (ambient row when ``row`` is ``None``).

    The fused-dispatch counterpart of :func:`credit_wire`: a window-wide
    crypto call runs under ``activate(None)`` so the primitive meters the
    registry once for the real invocation, then the flusher splits the
    attempt counts closed-form across the requests it served with this
    helper.  Crediting the registry here too would double-count the fused
    call."""
    if not _obs.enabled or n == 0:
        return
    if row is None:
        row = _ROW.get()
    if row is not None:
        row.add_op(primitive, n)


def add_op(primitive: str, n: int = 1) -> None:
    """Count ``n`` invocations of ``primitive`` in the registry and the
    ambient row (if one is active)."""
    if not _obs.enabled or n == 0:
        return
    REGISTRY.counter(f"ledger.ops.{primitive}").inc(n)
    row = _ROW.get()
    if row is not None:
        row.add_op(primitive, n)


def add_prf(calls: int, compressions: int) -> None:
    """Convenience for the PRF hooks: count calls and their SHA-256
    compressions in one place."""
    if not _obs.enabled:
        return
    REGISTRY.counter("ledger.ops.prf.calls").inc(calls)
    REGISTRY.counter("ledger.ops.sha256.compressions").inc(compressions)
    row = _ROW.get()
    if row is not None:
        row.add_op("prf.calls", calls)
        row.add_op("sha256.compressions", compressions)


def registry_ops_snapshot() -> dict[str, int]:
    """Current ``ledger.ops.*`` registry totals keyed by primitive name."""
    snap = REGISTRY.snapshot()["counters"]
    prefix = "ledger.ops."
    return {
        name[len(prefix):]: value
        for name, value in snap.items()
        if name.startswith(prefix)
    }


def registry_wire_snapshot() -> dict[str, int]:
    """Current ``ledger.wire.*`` registry totals keyed by
    ``role.frame.direction``."""
    snap = REGISTRY.snapshot()["counters"]
    prefix = "ledger.wire."
    return {
        name[len(prefix):-len(".bytes")]: value
        for name, value in snap.items()
        if name.startswith(prefix) and name.endswith(".bytes")
    }


__all__ = [
    "LedgerRow",
    "MAX_COMPLETED_ROWS",
    "frame_type",
    "framed_mux_bytes",
    "track",
    "current_row",
    "activate",
    "deactivate",
    "retire",
    "completed_rows",
    "reset",
    "count_wire",
    "credit_wire",
    "credit_op",
    "add_op",
    "add_prf",
    "registry_ops_snapshot",
    "registry_wire_snapshot",
]
