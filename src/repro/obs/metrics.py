"""A small metrics registry: counters, gauges, fixed- and log-bucket histograms.

Instruments are created lazily by name (``REGISTRY.counter("aead.encrypt")``)
and accumulate until :meth:`MetricsRegistry.reset`.  A snapshot is a plain
nested dict of primitives, so it JSON-serializes directly and — because no
wall-clock timestamps are baked in — is deterministic whenever the
instrumented workload is.

Two histogram shapes coexist because they answer different questions:

* :class:`Histogram` — a handful of fixed ``le`` buckets, right for sizes
  and counts (frame bytes, table entries) where the scale is known upfront;
* :class:`LogHistogram` — HDR-style geometric buckets spanning nine decades
  with bounded relative error, right for latencies, where p99/p999 matter
  and the interesting mass may sit anywhere between microseconds and
  seconds.  Latency sites must use it: the fixed
  :data:`DEFAULT_BUCKETS` start at 1.0, so every sub-second observation
  would land in the first bucket and the histogram would say nothing.
  :meth:`MetricsRegistry.histogram` rejects a ``*.seconds`` name with
  default buckets for exactly that reason.

Thread safety: every mutation takes the registry's lock.  The LBL TCP server
handles connections on threads, so counters would otherwise lose increments;
the lock only costs anything while observability is enabled, since hot paths
guard emission behind :data:`repro.obs._state.enabled`.
"""

from __future__ import annotations

import bisect
import json
import math
import threading
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError

#: Default histogram upper bounds — byte-ish scale, fits frame sizes and
#: operation counts alike.  The last implicit bucket is +inf.
DEFAULT_BUCKETS = (1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)


class Counter:
    """A monotonically increasing integer."""

    kind = "counter"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError("counters only go up")
        with self._lock:
            self.value += amount

    def snapshot(self) -> int:
        """The current total."""
        return self.value

    def reset(self) -> None:
        """Zero the counter (the handle stays valid)."""
        with self._lock:
            self.value = 0


class Gauge:
    """A point-in-time value (e.g. current stash occupancy)."""

    kind = "gauge"
    __slots__ = ("name", "value", "max_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Record the current reading (the high-water mark is kept too)."""
        with self._lock:
            self.value = float(value)
            if value > self.max_value:
                self.max_value = float(value)

    def snapshot(self) -> dict[str, float]:
        """The last reading and the high-water mark."""
        return {"value": self.value, "max": self.max_value}

    def reset(self) -> None:
        """Zero the reading and the high-water mark."""
        with self._lock:
            self.value = 0.0
            self.max_value = 0.0


class Histogram:
    """Fixed-bucket histogram with ``value <= bound`` bucket semantics.

    A value exactly equal to a bound lands in that bound's bucket; anything
    above the last bound goes to the overflow (``+inf``) bucket.
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max", "_lock")

    def __init__(
        self, name: str, lock: threading.Lock, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Count/sum/mean/min/max plus per-bucket counts (keys ``le_<bound>``)."""
        buckets = {f"le_{bound:g}": count for bound, count in zip(self.bounds, self.bucket_counts)}
        buckets["inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }

    def reset(self) -> None:
        """Drop all observations (bounds and handle stay valid)."""
        with self._lock:
            self.bucket_counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None


#: Geometry of :class:`LogHistogram` buckets.  ``GROWTH = 2**(1/8)`` bounds
#: the relative quantile error at ~9%; spanning 100 ns … ~1000 s costs 267
#: buckets of one int each — small enough to keep per instrument.
LOG_BUCKET_MIN = 1e-7
LOG_BUCKET_GROWTH = 2 ** 0.125
LOG_BUCKET_COUNT = 267

_LOG_GROWTH_LN = math.log(LOG_BUCKET_GROWTH)
_LOG_MIN_LN = math.log(LOG_BUCKET_MIN)


class LogHistogram:
    """Log-bucketed (HDR-style) histogram with quantile queries.

    Bucket ``i`` covers ``(MIN * GROWTH**(i-1), MIN * GROWTH**i]``; bucket 0
    holds everything at or below :data:`LOG_BUCKET_MIN` (including zero and
    negative durations from clock skew), the last bucket everything past the
    top bound.  A quantile answer is the upper edge of the bucket the target
    rank falls in, so it overestimates by at most one growth factor — the
    usual HDR trade of bounded relative error for O(1) recording.
    """

    kind = "log_histogram"
    __slots__ = ("name", "bucket_counts", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.bucket_counts = [0] * (LOG_BUCKET_COUNT + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = lock

    @staticmethod
    def bucket_index(value: float) -> int:
        """Bucket holding ``value`` (0 for values <= the smallest bound)."""
        if value <= LOG_BUCKET_MIN:
            return 0
        index = int(math.ceil((math.log(value) - _LOG_MIN_LN) / _LOG_GROWTH_LN))
        return min(index, LOG_BUCKET_COUNT)

    @staticmethod
    def bucket_bound(index: int) -> float:
        """Upper edge of bucket ``index`` (+inf for the overflow bucket)."""
        if index >= LOG_BUCKET_COUNT:
            return math.inf
        return LOG_BUCKET_MIN * LOG_BUCKET_GROWTH ** index

    def observe(self, value: float) -> None:
        """Record one sample (typically a duration in seconds)."""
        value = float(value)
        index = self.bucket_index(value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (0.0 when empty).

        Returns the upper bucket edge, clamped to the observed max so p100
        of a single sample is that sample, not its bucket's edge.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile {q} outside [0, 1]")
        counts = list(self.bucket_counts)
        count = sum(counts)
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank:
                bound = self.bucket_bound(index)
                observed_max = self.max if self.max is not None else bound
                return min(bound, observed_max)
        return self.max or 0.0

    def snapshot(self) -> dict[str, Any]:
        """Count/sum/mean/min/max, p50/p90/p99/p999, and non-empty buckets."""
        buckets = {
            f"le_{self.bucket_bound(index):.3g}": count
            for index, count in enumerate(self.bucket_counts)
            if count
        }
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
            "buckets": buckets,
        }

    def reset(self) -> None:
        """Drop all observations (the handle stays valid)."""
        with self._lock:
            self.bucket_counts = [0] * (LOG_BUCKET_COUNT + 1)
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None


class MetricsRegistry:
    """Name-addressed home of all instruments of one observability session."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram | LogHistogram] = {}

    def _get_or_create(self, name: str, kind: str, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif instrument.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {instrument.kind}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, "counter", lambda: Counter(name, self._lock))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(name, "gauge", lambda: Gauge(name, self._lock))

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the fixed-bucket histogram called ``name``.

        ``bounds`` only applies on first creation; later callers receive the
        existing instrument unchanged.

        Raises:
            ConfigurationError: ``name`` declares a latency unit
                (``*.seconds``) but keeps the byte-scale
                :data:`DEFAULT_BUCKETS` — those start at 1.0, so every
                sub-second latency would collapse into the first bucket.
                Use :meth:`log_histogram` for latencies.
        """
        if name.endswith(".seconds") and tuple(float(b) for b in bounds) == DEFAULT_BUCKETS:
            raise ConfigurationError(
                f"histogram {name!r} records seconds but uses the byte-scale "
                "default buckets (1.0 ... 1e6); use log_histogram() for "
                "latencies, or pass explicit sub-second bounds"
            )
        return self._get_or_create(
            name, "histogram", lambda: Histogram(name, self._lock, bounds)
        )

    def log_histogram(self, name: str) -> LogHistogram:
        """Get or create the log-bucketed latency histogram called ``name``."""
        return self._get_or_create(
            name, "log_histogram", lambda: LogHistogram(name, self._lock)
        )

    def names(self) -> list[str]:
        """Sorted names of every registered instrument."""
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """All instruments grouped by kind — plain primitives, JSON-ready."""
        out: dict[str, Any] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "log_histograms": {},
        }
        for name in self.names():
            instrument = self._instruments[name]
            out[instrument.kind + "s"][name] = instrument.snapshot()
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every instrument (handles held by callers stay valid)."""
        for instrument in list(self._instruments.values()):
            instrument.reset()

    def clear(self) -> None:
        """Drop every instrument entirely."""
        with self._lock:
            self._instruments.clear()


#: The process-wide default registry all built-in instrumentation writes to.
REGISTRY = MetricsRegistry()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "LOG_BUCKET_MIN",
    "LOG_BUCKET_GROWTH",
    "LOG_BUCKET_COUNT",
]
