"""Structured logging for the ``repro.*`` logger hierarchy.

Library modules obtain loggers with :func:`get_logger` (children of the
``repro`` root logger) and emit records freely; nothing is printed unless an
application — typically the CLI via its ``--log-level`` flag — calls
:func:`setup` to attach a handler.  A ``NullHandler`` on the root keeps the
library silent by default, per standard library-logging practice.
"""

from __future__ import annotations

import logging

from repro.errors import ConfigurationError

ROOT_LOGGER_NAME = "repro"

#: Accepted ``--log-level`` values (case-insensitive).
LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Args:
        name: Dotted suffix (``"transport.server"`` →
            ``repro.transport.server``); omit for the root ``repro`` logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def setup(level: str = "warning", *, stream=None) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root at ``level``.

    Calling it again replaces the previous handler (idempotent for the CLI,
    which parses ``--log-level`` on every invocation).

    Args:
        level: One of :data:`LEVELS`, case-insensitive.
        stream: Target stream (defaults to stderr).

    Returns:
        The configured root logger.
    """
    normalized = level.lower()
    if normalized not in LEVELS:
        raise ConfigurationError(
            f"unknown log level {level!r}; choose from {', '.join(LEVELS)}"
        )
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if not isinstance(handler, logging.NullHandler):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(handler)
    root.setLevel(normalized.upper())
    return root


__all__ = ["get_logger", "setup", "LEVELS", "ROOT_LOGGER_NAME"]
