"""A sampling profiler built on :func:`sys._current_frames`.

A background daemon thread wakes ~100 times a second, snapshots every
thread's current stack, and counts identical stacks.  No tracing hooks, no
interpreter slowdown between samples — the cost is the sampling thread
itself, which is why the profiler is *attached* explicitly (CLI flag or
obs control frame) instead of riding the global obs enable flag.

Exports:

* **collapsed stacks** (``pkg.mod.func;pkg.mod.caller 42`` lines) — the
  flamegraph.pl / speedscope interchange format;
* **Perfetto/Chrome trace events** — each sample becomes a complete event
  whose args carry the full stack, loadable at ui.perfetto.dev.

Remote attach: :data:`repro.transport.server.OBS_PROFILE_START_TAG` /
``..._STOP_TAG`` control frames start and stop the per-process singleton
(:func:`attach` / :func:`detach`), so ``repro profile --target host:port``
can profile a live shard without restarting it.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any

from repro.errors import ConfigurationError

#: Default sampling interval — ~100 Hz.
DEFAULT_INTERVAL_S = 0.01

#: Hard cap on frames walked per stack (guards against pathological
#: recursion blowing up sample keys).
MAX_STACK_DEPTH = 128


def _frame_label(frame) -> str:
    """``module.qualname`` style label for one frame."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{code.co_name}"


class SamplingProfiler:
    """Counts identical stacks sampled from all threads at a fixed rate.

    Args:
        interval_s: Seconds between samples (default ~100 Hz).

    The profiler may be started and stopped repeatedly; counts accumulate
    until :meth:`reset`.
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise ConfigurationError("profiler interval must be positive")
        self.interval_s = interval_s
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, ...], int] = {}
        self._samples = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_at: float | None = None
        self._elapsed = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        """Whether the sampling thread is currently alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Launch the sampling thread (idempotent while running)."""
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and join the thread."""
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.is_set():
            self.sample(skip_thread_ids={own_id})
            self._stop.wait(self.interval_s)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def sample(self, skip_thread_ids: set[int] | None = None) -> int:
        """Take one sample of every thread's stack; returns stacks counted."""
        skip = skip_thread_ids or set()
        frames = sys._current_frames()
        counted = 0
        stacks: list[tuple[str, ...]] = []
        for thread_id, frame in frames.items():
            if thread_id in skip:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if stack:
                # Root-first, leaf-last: the collapsed-stack convention.
                stacks.append(tuple(reversed(stack)))
        with self._lock:
            self._samples += 1
            for stack_key in stacks:
                self._counts[stack_key] = self._counts.get(stack_key, 0) + 1
                counted += 1
        return counted

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    @property
    def samples(self) -> int:
        """Sampling rounds taken so far."""
        with self._lock:
            return self._samples

    def elapsed_seconds(self) -> float:
        """Total wall time spent attached."""
        extra = 0.0
        if self._started_at is not None:
            extra = time.perf_counter() - self._started_at
        return self._elapsed + extra

    def collapsed(self) -> str:
        """Collapsed-stack text: ``frame;frame;leaf count`` per line."""
        with self._lock:
            counts = dict(self._counts)
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(counts.items())
        ]
        return "\n".join(lines)

    def perfetto(self) -> dict[str, Any]:
        """Chrome trace-event JSON (Perfetto-loadable).

        Each distinct stack becomes one complete event whose duration is
        its share of the attached wall time; the full stack rides in
        ``args.stack`` so Perfetto's event pane shows it verbatim.
        """
        with self._lock:
            counts = dict(self._counts)
            samples = self._samples
        elapsed_us = self.elapsed_seconds() * 1e6
        total = sum(counts.values()) or 1
        events = []
        cursor = 0.0
        for stack, count in sorted(counts.items(), key=lambda kv: -kv[1]):
            width_us = elapsed_us * (count / total)
            events.append(
                {
                    "name": stack[-1],
                    "cat": "sample",
                    "ph": "X",
                    "ts": round(cursor, 3),
                    "dur": round(width_us, 3),
                    "pid": 0,
                    "tid": 0,
                    "args": {"stack": ";".join(stack), "count": count},
                }
            )
            cursor += width_us
        return {
            "traceEvents": events,
            "metadata": {
                "tool": "repro.obs.profiler",
                "interval_s": self.interval_s,
                "samples": samples,
            },
        }

    def export(self) -> dict[str, Any]:
        """JSON-ready summary: collapsed stacks plus counters."""
        return {
            "interval_s": self.interval_s,
            "samples": self.samples,
            "elapsed_s": self.elapsed_seconds(),
            "collapsed": self.collapsed(),
        }

    def reset(self) -> None:
        """Drop accumulated counts (keeps the thread state)."""
        with self._lock:
            self._counts = {}
            self._samples = 0
        self._elapsed = 0.0
        if self._started_at is not None:
            self._started_at = time.perf_counter()


# --------------------------------------------------------------------- #
# Per-process singleton (CLI / control-frame attach)
# --------------------------------------------------------------------- #

_ATTACH_LOCK = threading.Lock()
_ATTACHED: SamplingProfiler | None = None


def attach(interval_s: float = DEFAULT_INTERVAL_S) -> SamplingProfiler:
    """Start (or return) the process-wide profiler singleton."""
    global _ATTACHED
    with _ATTACH_LOCK:
        if _ATTACHED is None:
            _ATTACHED = SamplingProfiler(interval_s)
        _ATTACHED.start()
        return _ATTACHED


def detach() -> dict[str, Any] | None:
    """Stop the singleton and return its export (None if never attached)."""
    global _ATTACHED
    with _ATTACH_LOCK:
        if _ATTACHED is None:
            return None
        profiler = _ATTACHED
        _ATTACHED = None
    profiler.stop()
    return profiler.export()


def attached() -> SamplingProfiler | None:
    """The currently attached singleton, if any."""
    return _ATTACHED


__all__ = [
    "DEFAULT_INTERVAL_S",
    "MAX_STACK_DEPTH",
    "SamplingProfiler",
    "attach",
    "detach",
    "attached",
]
