"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

Two consumers, two formats:

* **Chrome trace events** (:func:`chrome_trace`) — load the file in
  ``chrome://tracing`` or https://ui.perfetto.dev to see the merged span
  forest on a timeline, one row per trace, one process lane per shard.
  Produced by ``repro trace --chrome out.json``.
* **Prometheus text exposition** (:func:`prometheus_text`) — scraped live
  from a running :class:`~repro.transport.server.LblTcpServer` started
  with ``metrics_port=`` (see :func:`start_metrics_server`), and polled by
  ``repro top``.  Counters map to ``*_total``, gauges to plain samples
  (plus ``*_max``), fixed-bucket histograms to cumulative ``_bucket``
  series, and log-bucket histograms to summary quantiles
  (``{quantile="0.99"}``) so tail latency is one PromQL-free read.

:func:`parse_prometheus_text` is the matching reader — ``repro top`` uses
it to diff successive scrapes, and tests use it to prove the exposition is
parseable.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Any, Iterable

from repro.errors import ProtocolError
from repro.obs.metrics import REGISTRY, MetricsRegistry

#: Quantiles exposed for every log-bucket histogram.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99, 0.999)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def metric_name(name: str) -> str:
    """A dotted instrument name as a Prometheus metric name (``repro_`` prefix)."""
    return "repro_" + _NAME_RE.sub("_", name)


# --------------------------------------------------------------------- #
# Chrome trace events
# --------------------------------------------------------------------- #

#: Multipliers from a clock unit to the microseconds Chrome expects.
_UNIT_TO_US = {"s": 1e6, "sim_ms": 1e3, "ms": 1e3, "tick": 1.0, "us": 1.0}


def chrome_trace(
    spans: Iterable[dict[str, Any]], clock_unit: str = "s"
) -> dict[str, Any]:
    """Render a span dump as a Chrome trace-event JSON object.

    Each finished span becomes one complete (``"ph": "X"``) event; its
    ``pid`` is the span's ``process`` attribute (``client`` when absent,
    i.e. the merging process itself), its ``tid`` the trace id — so every
    logical access reads as one horizontal track.  Span/parent ids travel
    in ``args`` so the nesting survives the format round trip.  Open spans
    (no end timestamp) are skipped.
    """
    scale = _UNIT_TO_US.get(clock_unit, 1e6)
    events = []
    for span in spans:
        if span.get("end") is None:
            continue
        attributes = dict(span.get("attributes") or {})
        process = attributes.pop("process", "client")
        args: dict[str, Any] = {
            "span_id": span["span_id"],
            "parent_id": span.get("parent_id"),
        }
        for key, value in attributes.items():
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": float(span["start"]) * scale,
                "dur": (float(span["end"]) - float(span["start"])) * scale,
                "pid": str(process),
                "tid": int(span["trace_id"]),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, spans: Iterable[dict[str, Any]], clock_unit: str = "s"
) -> int:
    """Write :func:`chrome_trace` output to ``path``; returns the event count."""
    trace = chrome_trace(spans, clock_unit)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=2, default=str)
    return len(trace["traceEvents"])


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    return repr(float(value)) if not float(value).is_integer() else str(int(value))


def prometheus_text(registry: MetricsRegistry = REGISTRY) -> str:
    """The registry's snapshot in Prometheus text exposition format."""
    snap = registry.snapshot()
    lines: list[str] = []
    for name, value in sorted(snap["counters"].items()):
        metric = metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")
    for name, gauge in sorted(snap["gauges"].items()):
        metric = metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge['value'])}")
        lines.append(f"{metric}_max {_format_value(gauge['max'])}")
    for name, hist in sorted(snap["histograms"].items()):
        metric = metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound_key, count in hist["buckets"].items():
            cumulative += count
            bound = "+Inf" if bound_key == "inf" else bound_key[len("le_"):]
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    for name, hist in sorted(snap["log_histograms"].items()):
        metric = metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        for q, key in zip(SUMMARY_QUANTILES, ("p50", "p90", "p99", "p999")):
            lines.append(
                f'{metric}{{quantile="{format(q, "g")}"}} '
                f"{_format_value(hist.get(key, 0.0))}"
            )
        lines.append(f"{metric}_sum {_format_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse exposition text into ``{metric: [(labels, value), ...]}``.

    Raises :class:`~repro.errors.ProtocolError` on a malformed sample line,
    so tests double as a format check.
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ProtocolError(f"malformed exposition line: {line!r}")
        labels = {
            m.group("key"): m.group("value")
            for m in _LABEL_RE.finditer(match.group("labels") or "")
        }
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


# --------------------------------------------------------------------- #
# Scrape endpoint
# --------------------------------------------------------------------- #


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry = REGISTRY

    def do_GET(self) -> None:  # noqa: N802 - http.server interface
        body = prometheus_text(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *_args) -> None:  # pragma: no cover - silence stderr
        pass


def start_metrics_server(
    host: str = "127.0.0.1",
    port: int = 0,
    registry: MetricsRegistry = REGISTRY,
) -> HTTPServer:
    """Serve ``registry`` as Prometheus text on ``http://host:port/metrics``.

    Every path answers the same exposition (scrape configs vary); port 0
    picks an ephemeral port — read ``server.server_address``.  Runs on a
    daemon thread; call ``shutdown()`` + ``server_close()`` to stop.
    """
    handler = type("_BoundMetricsHandler", (_MetricsHandler,), {"registry": registry})
    server = HTTPServer((host, port), handler)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics", daemon=True
    )
    thread.start()
    return server


__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "parse_prometheus_text",
    "metric_name",
    "start_metrics_server",
    "SUMMARY_QUANTILES",
]
