"""Cross-process trace-context propagation and span-forest merging.

PR 2 split one logical ORTOA access across processes: the trusted client
prepares and finalizes, a shard server opens the table, and each side runs
its own :class:`~repro.obs.trace.Tracer`.  Without propagation the server's
spans are disconnected roots and the question the paper's Fig. 3c asks —
*where did this access's round trip go?* — cannot be answered from the
trace.  This module closes the gap in two steps:

1. **Wire format** — :class:`TraceContext` is the client access span's
   ``(trace_id, span_id)`` serialized as a fixed
   :data:`TRACE_CONTEXT_BYTES`-byte extension on the multiplexed frame
   header (:func:`repro.transport.framing.wrap_mux`).  It is always exactly
   16 bytes and carries no operation-dependent state, so GET and PUT frames
   stay byte-identically shaped — telemetry must not become the leak
   (tested in ``tests/test_kernel_obliviousness.py``).
2. **Merging** — a server parents its request span under the propagated
   context via :func:`remote_parent` and marks it with the
   :data:`REMOTE_PARENT_ATTR` attribute.  :func:`merge_span_dumps` then
   rewrites each remote process's locally-numbered span ids into the
   client's id space (both tracers count from 1, so raw ids collide),
   keeping exactly the links flagged as remote pointing at client spans.

The result is one span list in which every server-side span is a
descendant of the client access span that caused it; :func:`trace_roots`
and :func:`orphan_spans` answer the structural questions tests and the
``repro trace`` CLI ask of it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import ProtocolError
from repro.obs.trace import Span

#: Serialized size of one trace context: 8-byte trace id + 8-byte span id.
TRACE_CONTEXT_BYTES = 16

#: Attribute marking a span whose ``parent_id`` refers to a span in
#: *another* process's tracer (the propagated client context).
REMOTE_PARENT_ATTR = "remote_parent"

_CTX = struct.Struct(">QQ")


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of a client-side span: ``(trace_id, span_id)``."""

    trace_id: int
    span_id: int

    @classmethod
    def from_span(cls, span: Span) -> "TraceContext":
        """Capture the context of an open client span."""
        return cls(trace_id=span.trace_id, span_id=span.span_id)

    def encode(self) -> bytes:
        """Fixed 16-byte wire form (big-endian trace id then span id)."""
        try:
            return _CTX.pack(self.trace_id, self.span_id)
        except struct.error as exc:
            raise ProtocolError(f"trace context out of range: {exc}") from None

    @classmethod
    def decode(cls, data: bytes) -> "TraceContext":
        """Parse the 16-byte wire form back into a context."""
        if len(data) != TRACE_CONTEXT_BYTES:
            raise ProtocolError(
                f"trace context must be {TRACE_CONTEXT_BYTES} bytes, got {len(data)}"
            )
        trace_id, span_id = _CTX.unpack(data)
        return cls(trace_id=trace_id, span_id=span_id)


def remote_parent(ctx: TraceContext) -> Span:
    """A synthetic parent standing in for the remote client span.

    The stub is never recorded; passing it as ``parent`` to
    :meth:`~repro.obs.trace.Tracer.span` makes the local span inherit the
    propagated trace id and point its ``parent_id`` at the client span.
    The caller must also set :data:`REMOTE_PARENT_ATTR` on the local span
    so :func:`merge_span_dumps` knows not to rewrite that link.
    """
    return Span(
        name="<remote>",
        span_id=ctx.span_id,
        trace_id=ctx.trace_id,
        parent_id=None,
        start=0.0,
        attributes={},
    )


# --------------------------------------------------------------------- #
# Merging per-process span dumps
# --------------------------------------------------------------------- #


def merge_span_dumps(
    local_spans: list[dict[str, Any]],
    remote_dumps: Iterable[list[dict[str, Any]]],
) -> list[dict[str, Any]]:
    """Merge remote processes' span dumps into the local span list.

    Every process numbers spans from 1, so remote ids are rewritten into
    fresh ids above the local maximum.  Links inside one remote dump move
    together; a link flagged :data:`REMOTE_PARENT_ATTR` is kept verbatim
    because it already refers to a *local* (client) span id carried over
    the wire.  Remote trace ids are rewritten the same way unless they were
    propagated (i.e. they belong to a remote-parented tree), so unrelated
    server-local roots cannot collide with client traces.

    Spans are dicts as produced by :meth:`~repro.obs.trace.Span.to_dict`
    (or shipped back over the obs-pull control frame).  Each merged remote
    span gains a ``process`` attribute naming its dump index (unless the
    dump already tagged one).
    """
    merged = [dict(span) for span in local_spans]
    next_id = 1 + max(
        (int(span["span_id"]) for span in merged),
        default=0,
    )
    for dump_index, dump in enumerate(remote_dumps):
        mapping: dict[int, int] = {}
        for span in dump:
            mapping[int(span["span_id"])] = next_id
            next_id += 1
        propagated_traces = {
            int(span["trace_id"])
            for span in dump
            if span.get("attributes", {}).get(REMOTE_PARENT_ATTR)
        }
        for span in dump:
            out = dict(span)
            attributes = dict(out.get("attributes") or {})
            attributes.setdefault("process", f"shard-{dump_index}")
            out["attributes"] = attributes
            out["span_id"] = mapping[int(span["span_id"])]
            parent_id = span.get("parent_id")
            if parent_id is not None and not attributes.get(REMOTE_PARENT_ATTR):
                out["parent_id"] = mapping.get(int(parent_id))
            trace_id = int(span["trace_id"])
            if trace_id not in propagated_traces:
                out["trace_id"] = mapping.get(trace_id, trace_id)
            merged.append(out)
    return merged


def spans_by_id(spans: Iterable[dict[str, Any]]) -> dict[int, dict[str, Any]]:
    """Index a span list by span id."""
    return {int(span["span_id"]): span for span in spans}


def trace_roots(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Spans with no parent — the roots of each trace tree."""
    return [span for span in spans if span.get("parent_id") is None]


def orphan_spans(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Spans whose parent id resolves to no span in the list.

    After a correct merge this is empty: every propagated link lands on the
    client span that originated the request.
    """
    known = set(spans_by_id(spans))
    return [
        span
        for span in spans
        if span.get("parent_id") is not None and int(span["parent_id"]) not in known
    ]


def ancestor_chain(
    span: dict[str, Any], index: dict[int, dict[str, Any]]
) -> list[dict[str, Any]]:
    """The parent chain of ``span`` from its parent up to its root."""
    chain = []
    seen: set[int] = set()
    current = span
    while current.get("parent_id") is not None:
        parent_id = int(current["parent_id"])
        if parent_id in seen or parent_id not in index:
            break  # cycle or orphan — stop rather than loop forever
        seen.add(parent_id)
        current = index[parent_id]
        chain.append(current)
    return chain


__all__ = [
    "TraceContext",
    "TRACE_CONTEXT_BYTES",
    "REMOTE_PARENT_ATTR",
    "remote_parent",
    "merge_span_dumps",
    "spans_by_id",
    "trace_roots",
    "orphan_spans",
    "ancestor_chain",
]
