"""Obliviousness auditing: the paper's §5 security argument as a runnable check.

ORTOA's claim is that the *server's view* of an access is identical for GETs
and PUTs.  The instrumented :class:`~repro.core.lbl.server.LblServer` emits
one :data:`~repro.core.lbl.server.SERVER_SPAN` span per request describing
everything the untrusted party could observe — table shapes, ciphertext
bytes, decryption attempts and failures, opened labels, storage rewrites.
This module pairs that span stream with the ground-truth operation sequence
(known only on the trusted side) and checks, feature by feature, that the
two per-operation distributions match:

* **deterministic features** (table shape, bytes, rewrites) must have
  *identical supports* — any value seen only for reads or only for writes is
  a distinguisher;
* **stochastic features** (decryption attempts under the shuffled base
  protocol, where the opening position is uniform) are compared by mean with
  a configurable relative tolerance, plus a support-range check.

:class:`LeakyLblOrtoa` is the deliberate negative control: its server skips
the storage rewrite on reads — precisely the §5.1 "only writes change the
stored ciphertext" leak ORTOA exists to close — and the auditor must flag it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.lbl import LblOrtoa
from repro.core.lbl.server import SERVER_SPAN, LblServer
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError
from repro.obs import _state
from repro.obs import ledger as _ledger
from repro.obs.trace import Span, TRACER
from repro.types import Operation, Request, StoreConfig

#: Deterministic server-visible features: the value sets must coincide.
EXACT_FEATURES = (
    "groups",
    "table_entries",
    "ciphertext_bytes",
    "opened_labels",
    "labels_rewritten",
    "storage_writes",
)
#: Stochastic server-visible features: compared by mean within a tolerance.
MEAN_FEATURES = ("decrypt_attempts", "failed_decrypts")
#: Per-request resource-ledger features (wire bytes per frame/direction and
#: crypto-primitive counts, frozen to sorted item tuples).  Deterministic:
#: a GET and a PUT must burn byte-for-byte and call-for-call identical
#: resources, or the expenditure itself is a distinguisher.
LEDGER_FEATURES = ("ledger.wire", "ledger.ops")


#: Ops excluded from the exact ledger comparison: the shuffled base
#: protocol's trial decryptions stop after a uniformly random number of
#: attempts, so these are stochastic per access.  They are audited anyway,
#: by mean, via the server span's ``decrypt_attempts``/``failed_decrypts``.
_STOCHASTIC_OPS = frozenset({"aead.decrypts", "aead.decrypt_failures"})


def _ledger_features(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Freeze a :meth:`LedgerRow.snapshot` into hashable audit features."""
    return {
        "ledger.wire": tuple(sorted(snapshot["wire"].items())),
        "ledger.ops": tuple(
            sorted(
                (name, count)
                for name, count in snapshot["ops"].items()
                if name not in _STOCHASTIC_OPS
            )
        ),
    }


@dataclass(frozen=True, slots=True)
class ServerObservation:
    """One request as the untrusted server saw it, tagged with ground truth.

    ``op`` is *not* part of the server's view — it is the trusted side's
    knowledge of what it asked for, used only to partition the observations.
    """

    op: Operation
    features: dict[str, Any]


@dataclass(frozen=True, slots=True)
class AuditCheck:
    """The verdict on one server-visible feature."""

    feature: str
    passed: bool
    detail: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of this check."""
        return {"feature": self.feature, "passed": self.passed, "detail": self.detail}


@dataclass(frozen=True, slots=True)
class AuditReport:
    """The auditor's overall verdict plus per-feature evidence."""

    passed: bool
    num_reads: int
    num_writes: int
    checks: tuple[AuditCheck, ...] = field(default=())

    @property
    def failures(self) -> list[AuditCheck]:
        """The checks that found a read/write distinguisher."""
        return [c for c in self.checks if not c.passed]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the report, checks included."""
        return {
            "passed": self.passed,
            "num_reads": self.num_reads,
            "num_writes": self.num_writes,
            "checks": [c.to_dict() for c in self.checks],
        }

    def summary(self) -> str:
        """One-paragraph human-readable verdict."""
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"obliviousness audit: {verdict} "
            f"({self.num_reads} reads vs {self.num_writes} writes observed)"
        ]
        for check in self.checks:
            mark = "ok " if check.passed else "LEAK"
            lines.append(f"  [{mark}] {check.feature}: {check.detail}")
        return "\n".join(lines)


def observations_from_spans(
    spans: Sequence[Span], ops: Sequence[Operation]
) -> list[ServerObservation]:
    """Pair the i-th server span with the i-th issued operation.

    The pairing is positional because accesses are processed in issue order
    (both in-process and over the serialized TCP dispatch path).
    """
    if len(spans) != len(ops):
        raise ConfigurationError(
            f"{len(spans)} server observations for {len(ops)} operations — "
            "was capture enabled for the whole run?"
        )
    return [
        ServerObservation(op, dict(span.attributes)) for span, op in zip(spans, ops)
    ]


def _feature_values(
    observations: Iterable[ServerObservation], feature: str
) -> list[Any]:
    return [obs.features[feature] for obs in observations if feature in obs.features]


def audit_observations(
    observations: Sequence[ServerObservation],
    *,
    mean_tolerance: float = 0.15,
) -> AuditReport:
    """Compare the read-side and write-side server views feature by feature.

    Args:
        observations: Ground-truth-tagged server observations of one run,
            covering at least one read and one write.
        mean_tolerance: Maximum allowed relative difference of per-op means
            for the stochastic features (the shuffled base protocol stops
            after a uniformly distributed number of decryption attempts, so
            finite samples never match exactly).

    Returns:
        An :class:`AuditReport`; ``passed`` is True iff no feature
        distinguishes reads from writes.
    """
    reads = [o for o in observations if o.op.is_read]
    writes = [o for o in observations if o.op.is_write]
    if not reads or not writes:
        raise ConfigurationError(
            "audit needs at least one read and one write observation"
        )

    checks: list[AuditCheck] = []
    for feature in EXACT_FEATURES + LEDGER_FEATURES:
        read_support = set(_feature_values(reads, feature))
        write_support = set(_feature_values(writes, feature))
        if not read_support and not write_support:
            continue
        if read_support == write_support:
            checks.append(
                AuditCheck(feature, True, f"identical support {sorted(read_support)}")
            )
        else:
            checks.append(
                AuditCheck(
                    feature,
                    False,
                    f"reads saw {sorted(read_support)}, writes saw "
                    f"{sorted(write_support)}",
                )
            )

    for feature in MEAN_FEATURES:
        read_values = _feature_values(reads, feature)
        write_values = _feature_values(writes, feature)
        if not read_values or not write_values:
            continue
        read_mean = sum(read_values) / len(read_values)
        write_mean = sum(write_values) / len(write_values)
        scale = max(abs(read_mean), abs(write_mean))
        if scale == 0:
            passed = read_mean == write_mean
            detail = "both identically zero"
        else:
            relative = abs(read_mean - write_mean) / scale
            passed = relative <= mean_tolerance
            detail = (
                f"read mean {read_mean:.2f} vs write mean {write_mean:.2f} "
                f"(relative diff {relative:.1%}, tolerance {mean_tolerance:.0%})"
            )
        checks.append(AuditCheck(feature, passed, detail))

    return AuditReport(
        passed=all(c.passed for c in checks),
        num_reads=len(reads),
        num_writes=len(writes),
        checks=tuple(checks),
    )


def run_audit(
    protocol: LblOrtoa,
    *,
    num_keys: int = 32,
    seed: int = 0,
    mean_tolerance: float = 0.15,
) -> AuditReport:
    """Drive a balanced read/write workload and audit the server's view.

    The protocol must be freshly constructed (uninitialized).  Each of the
    ``num_keys`` objects is accessed exactly once — half reads, half writes,
    in a seeded shuffled order — so the audit also holds for deliberately
    broken servers whose skipped rewrites would desynchronize any *second*
    access to the same key.

    Capture is enabled (and the span/metric state reset) for the duration;
    the previous enabled/disabled state is restored afterwards.
    """
    if num_keys < 2:
        raise ConfigurationError("audit workload needs at least 2 keys")
    rng = random.Random(seed)
    value_len = protocol.config.value_len
    keys = [f"audit-{i}" for i in range(num_keys)]
    requests = [
        Request.read(key)
        if index < num_keys // 2
        else Request.write(key, bytes([index % 256]) * value_len)
        for index, key in enumerate(keys)
    ]
    rng.shuffle(requests)

    previous = _state.enabled
    TRACER.reset()
    _state.enabled = True
    row_snapshots: list[dict[str, Any]] = []
    try:
        protocol.initialize({key: bytes(value_len) for key in keys})
        before = len(TRACER.spans(SERVER_SPAN))
        for request in requests:
            with _ledger.track(label=f"audit:{request.key}") as row:
                protocol.access(request)
            row_snapshots.append(row.snapshot())
        spans = TRACER.spans(SERVER_SPAN)[before:]
    finally:
        _state.enabled = previous

    observations = observations_from_spans(spans, [r.op for r in requests])
    for observation, snapshot in zip(observations, row_snapshots):
        observation.features.update(_ledger_features(snapshot))
    return audit_observations(observations, mean_tolerance=mean_tolerance)


# --------------------------------------------------------------------- #
# Sharded / pipelined deployments
# --------------------------------------------------------------------- #


def observations_by_fingerprint(
    spans: Sequence[Span], op_by_fingerprint: dict[str, Operation]
) -> list[ServerObservation]:
    """Pair server spans with ground truth by the ``key_fingerprint`` attribute.

    Positional pairing (:func:`observations_from_spans`) assumes spans finish
    in issue order, which a pipelined deployment's server worker pool does
    not guarantee.  Each span instead carries the prefix of the PRF-encoded
    key it served — information the server already holds as its storage key —
    and, because the audit workload touches every key exactly once, that
    prefix identifies the operation unambiguously.
    """
    if len(spans) != len(op_by_fingerprint):
        raise ConfigurationError(
            f"{len(spans)} server observations for "
            f"{len(op_by_fingerprint)} operations — was capture enabled for "
            "the whole run?"
        )
    observations = []
    for span in spans:
        fingerprint = span.attributes.get("key_fingerprint")
        op = op_by_fingerprint.get(fingerprint)
        if op is None:
            raise ConfigurationError(
                f"server span carries unknown key fingerprint {fingerprint!r}"
            )
        observations.append(ServerObservation(op, dict(span.attributes)))
    return observations


@dataclass(frozen=True, slots=True)
class ShardedAuditReport:
    """Audit verdicts for a sharded deployment: overall and per shard.

    Each shard's server sees only its own slice of the workload, so a
    protocol could pass in aggregate while one shard's view distinguishes
    reads from writes.  ``passed`` therefore requires the pooled view *and*
    every per-shard view to pass.
    """

    overall: AuditReport
    per_shard: tuple[AuditReport, ...]

    @property
    def passed(self) -> bool:
        """True iff the pooled view and every shard's view pass."""
        return self.overall.passed and all(r.passed for r in self.per_shard)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form: overall report plus one entry per shard."""
        return {
            "passed": self.passed,
            "overall": self.overall.to_dict(),
            "per_shard": [r.to_dict() for r in self.per_shard],
        }

    def summary(self) -> str:
        """Human-readable verdict, shard by shard."""
        lines = [
            f"sharded obliviousness audit over {len(self.per_shard)} shards: "
            + ("PASS" if self.passed else "FAIL"),
            "overall (all shards pooled):",
            _indent(self.overall.summary()),
        ]
        for shard, report in enumerate(self.per_shard):
            lines.append(f"shard {shard}:")
            lines.append(_indent(report.summary()))
        return "\n".join(lines)


def _indent(text: str) -> str:
    return "\n".join("  " + line for line in text.splitlines())


def run_sharded_audit(
    deployment,
    *,
    num_keys: int = 32,
    seed: int = 0,
    mean_tolerance: float = 0.15,
    pipeline_depth: int | None = None,
) -> ShardedAuditReport:
    """Audit a sharded, pipelined deployment's per-shard server views.

    The deployment must be a freshly constructed (uninitialized)
    :class:`~repro.core.sharded.ShardedLblDeployment` whose shard servers
    run *in this process* (e.g. a thread-backed
    :class:`~repro.transport.cluster.ShardCluster`) so their spans land in
    this process's tracer.

    The workload routes keys to shards first and then balances reads and
    writes *within each shard*, so every shard's view contains both
    operation types.  Accesses go through :meth:`access_pipelined`, the
    path whose out-of-order completion the fingerprint pairing exists for.
    """
    if num_keys < 2 * deployment.num_shards:
        raise ConfigurationError(
            f"sharded audit needs >= 2 keys per shard "
            f"({deployment.num_shards} shards, got {num_keys} keys)"
        )
    rng = random.Random(seed)
    value_len = deployment.config.value_len
    keys = [f"audit-{i}" for i in range(num_keys)]

    by_shard: dict[int, list[str]] = {}
    for key in keys:
        by_shard.setdefault(deployment.shard_of(key), []).append(key)
    for shard in range(deployment.num_shards):
        if len(by_shard.get(shard, [])) < 2:
            raise ConfigurationError(
                f"shard {shard} drew fewer than 2 audit keys; "
                "raise num_keys or change the seed"
            )

    requests = []
    for shard_keys in by_shard.values():
        for index, key in enumerate(shard_keys):
            if index < len(shard_keys) // 2:
                requests.append(Request.read(key))
            else:
                requests.append(
                    Request.write(key, bytes([index % 256]) * value_len)
                )
    rng.shuffle(requests)

    fingerprint_of = {
        key: deployment.encoded_key(key).hex()[:16] for key in keys
    }
    op_by_fingerprint = {fingerprint_of[r.key]: r.op for r in requests}
    shard_by_fingerprint = {
        fingerprint_of[key]: deployment.shard_of(key) for key in keys
    }

    previous = _state.enabled
    TRACER.reset()
    _ledger.reset()
    _state.enabled = True
    try:
        deployment.initialize({key: bytes(value_len) for key in keys})
        before = len(TRACER.spans(SERVER_SPAN))
        deployment.access_pipelined(requests, depth=pipeline_depth)
        spans = TRACER.spans(SERVER_SPAN)[before:]
    finally:
        _state.enabled = previous

    # The pipelined path retires one client-side ledger row per request,
    # labeled with its key; attach each row's resource totals as audit
    # features so a read/write asymmetry in *spending* is also flagged.
    row_by_key = {
        row.label.split(":", 1)[1]: row.snapshot()
        for row in _ledger.completed_rows()
        if row.label.startswith("pipelined:")
    }
    key_by_fingerprint = {fp: key for key, fp in fingerprint_of.items()}

    observations = observations_by_fingerprint(spans, op_by_fingerprint)
    for observation, span in zip(observations, spans):
        key = key_by_fingerprint[span.attributes["key_fingerprint"]]
        snapshot = row_by_key.get(key)
        if snapshot is not None:
            observation.features.update(_ledger_features(snapshot))
    overall = audit_observations(observations, mean_tolerance=mean_tolerance)
    per_shard = []
    for shard in range(deployment.num_shards):
        shard_obs = [
            obs
            for obs, span in zip(observations, spans)
            if shard_by_fingerprint[span.attributes["key_fingerprint"]] == shard
        ]
        per_shard.append(
            audit_observations(shard_obs, mean_tolerance=mean_tolerance)
        )
    return ShardedAuditReport(overall=overall, per_shard=tuple(per_shard))


# --------------------------------------------------------------------- #
# The deliberately leaky negative control
# --------------------------------------------------------------------- #


class LeakyLblServer(LblServer):
    """A *broken* LBL server that skips the label rewrite on reads.

    This reintroduces exactly the leak ORTOA closes: storage changes only on
    writes, so an adversary watching its own state recovers the operation
    type.  The op-type hint comes from :class:`LeakyLblOrtoa` out of band —
    a real server never has it; this double exists solely so audit tests
    have a true positive.
    """

    def __init__(self, point_and_permute: bool = False) -> None:
        super().__init__(point_and_permute)
        self.current_op: Operation | None = None

    def _commit(self, encoded_key: bytes, updated) -> int:
        if self.current_op is not None and self.current_op.is_read:
            return 0  # leak: reads leave storage untouched
        return super()._commit(encoded_key, updated)


class LeakyLblOrtoa(LblOrtoa):
    """LBL-ORTOA wired to a :class:`LeakyLblServer` (negative control)."""

    name = "lbl-ortoa-leaky"

    def __init__(
        self,
        config: StoreConfig,
        keychain: KeyChain | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(config, keychain=keychain, rng=rng)
        self.server = LeakyLblServer(point_and_permute=config.point_and_permute)

    def access(self, request: Request):
        self.server.current_op = request.op
        try:
            return super().access(request)
        finally:
            self.server.current_op = None


__all__ = [
    "ServerObservation",
    "AuditCheck",
    "AuditReport",
    "observations_from_spans",
    "observations_by_fingerprint",
    "audit_observations",
    "run_audit",
    "run_sharded_audit",
    "ShardedAuditReport",
    "LeakyLblServer",
    "LeakyLblOrtoa",
    "EXACT_FEATURES",
    "MEAN_FEATURES",
    "LEDGER_FEATURES",
]
