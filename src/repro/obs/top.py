"""``repro top`` — a refreshing terminal view of a running deployment.

Polls one or more Prometheus scrape endpoints (shard servers started with
``metrics_port=``, see :func:`repro.obs.export.start_metrics_server`) and
renders throughput, tail latency, cache effectiveness, and queue depth per
target.  Rates are derived by differencing successive scrapes, so the
first refresh shows totals and every later one shows live ops/s.

The rendering is a pure function of two scrapes
(:func:`target_row` / :func:`render_top`), so tests exercise it without a
terminal; the CLI loop (:func:`run_top`) only adds the polling cadence and
the ANSI clear between frames.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.obs.export import parse_prometheus_text

Samples = Mapping[str, list[tuple[dict[str, str], float]]]

#: ANSI: clear screen + home cursor (plain strings keep tests readable).
CLEAR = "\x1b[2J\x1b[H"


def scrape(url: str, timeout: float = 5.0) -> Samples:
    """Fetch and parse one endpoint; ``{}`` if the target is unreachable."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return parse_prometheus_text(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return {}


def _value(samples: Samples, metric: str, labels: dict[str, str] | None = None) -> float | None:
    for sample_labels, value in samples.get(metric, []):
        if labels is None or all(sample_labels.get(k) == v for k, v in labels.items()):
            return value
    return None


def _wire_bytes_total(samples: Samples) -> float | None:
    """Sum of every ``repro_ledger_wire_*_bytes_total`` counter on a target
    (all roles, frame types, and directions), or ``None`` when the target
    exports no ledger counters (observability off)."""
    total, found = 0.0, False
    for metric, entries in samples.items():
        if metric.startswith("repro_ledger_wire_") and metric.endswith(
            "_bytes_total"
        ):
            found = True
            total += sum(value for _labels, value in entries)
    return total if found else None


def target_row(
    target: str,
    current: Samples,
    previous: Samples | None,
    interval_s: float,
) -> dict[str, Any]:
    """One display row: throughput, percentiles, hit rate, queue depth."""
    dispatched = _value(current, "repro_transport_requests_dispatched_total")
    ops_per_s = None
    if previous is not None and dispatched is not None and interval_s > 0:
        before = _value(previous, "repro_transport_requests_dispatched_total")
        if before is not None:
            ops_per_s = max(0.0, dispatched - before) / interval_s
    wire_bytes = _wire_bytes_total(current)
    mb_per_s = None
    if previous is not None and wire_bytes is not None and interval_s > 0:
        wire_before = _wire_bytes_total(previous)
        if wire_before is not None:
            mb_per_s = max(0.0, wire_bytes - wire_before) / interval_s / 1e6
    shed_total = _value(current, "repro_transport_overload_frames_sent_total")
    shed_per_s = None
    if previous is not None and shed_total is not None and interval_s > 0:
        shed_before = _value(
            previous, "repro_transport_overload_frames_sent_total"
        )
        if shed_before is not None:
            shed_per_s = max(0.0, shed_total - shed_before) / interval_s
    in_flight = _value(current, "repro_transport_server_in_flight")
    max_in_flight = _value(current, "repro_transport_server_max_in_flight")
    occupancy = None
    if in_flight is not None and max_in_flight:
        occupancy = in_flight / max_in_flight
    roundtrip = "repro_transport_pipeline_roundtrip_seconds"
    return {
        "target": target,
        "up": bool(current),
        "requests": dispatched,
        "ops_per_s": ops_per_s,
        "wire_bytes": wire_bytes,
        "mb_per_s": mb_per_s,
        "p50_ms": _ms(_value(current, roundtrip, {"quantile": "0.5"})),
        "p99_ms": _ms(_value(current, roundtrip, {"quantile": "0.99"})),
        "service_p99_ms": _ms(
            _value(
                current,
                "repro_transport_server_service_seconds",
                {"quantile": "0.99"},
            )
        ),
        "cache_hit_rate": _value(current, "repro_lbl_proxy_label_cache_hit_rate"),
        "queue_depth": in_flight,
        "span_errors": _value(current, "repro_trace_span_errors_total"),
        "shed_per_s": shed_per_s,
        "in_flight_occupancy": occupancy,
        "loop_lag_ms": _value(current, "repro_transport_async_loop_lag_ms"),
        "server_window_fill": _value(current, "repro_lbl_server_window_fill"),
    }


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else seconds * 1000.0


def _cell(value: Any, fmt: str = "{:.1f}") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return fmt.format(value)
    return str(value)


def render_top(rows: list[dict[str, Any]], *, refreshed_at: str = "") -> str:
    """Render rows as the fixed-width ``repro top`` table."""
    header = (
        f"{'TARGET':24s} {'REQS':>8s} {'OPS/S':>8s} {'MB/S':>7s} {'RT p50':>8s} "
        f"{'RT p99':>8s} {'SVC p99':>8s} {'HIT%':>6s} {'QUEUE':>6s} {'ERRS':>5s} "
        f"{'SHED/S':>7s} {'OCC%':>5s} {'LAG':>6s} {'SWIN%':>6s}"
    )
    lines = [f"repro top — {len(rows)} target(s)  {refreshed_at}".rstrip(), header]
    for row in rows:
        if not row["up"]:
            lines.append(f"{row['target']:24s} {'DOWN':>8s}")
            continue
        hit = row["cache_hit_rate"]
        occ = row.get("in_flight_occupancy")
        swin = row.get("server_window_fill")
        lines.append(
            f"{row['target']:24s}"
            f" {_cell(row['requests'], '{:.0f}'):>8s}"
            f" {_cell(row['ops_per_s']):>8s}"
            f" {_cell(row.get('mb_per_s'), '{:.2f}'):>7s}"
            f" {_cell(row['p50_ms'], '{:.2f}'):>8s}"
            f" {_cell(row['p99_ms'], '{:.2f}'):>8s}"
            f" {_cell(row['service_p99_ms'], '{:.2f}'):>8s}"
            f" {_cell(None if hit is None else hit * 100.0):>6s}"
            f" {_cell(row['queue_depth'], '{:.0f}'):>6s}"
            f" {_cell(row['span_errors'], '{:.0f}'):>5s}"
            f" {_cell(row.get('shed_per_s')):>7s}"
            f" {_cell(occ if occ is None else occ * 100.0, '{:.0f}'):>5s}"
            f" {_cell(row.get('loop_lag_ms'), '{:.2f}'):>6s}"
            f" {_cell(swin if swin is None else swin * 100.0, '{:.0f}'):>6s}"
        )
    lines.append("")
    lines.append(
        "RT/SVC/LAG in ms; OPS/S, MB/S, SHED/S from scrape deltas; "
        "OCC% = in-flight over window; SWIN% = server access-window fill; "
        "ctrl-c to quit"
    )
    return "\n".join(lines)


def run_top(
    targets: list[str],
    interval_s: float = 1.0,
    iterations: int | None = None,
    clear: bool = True,
    write=print,
    json_mode: bool = False,
) -> int:
    """Poll ``targets`` and redraw until interrupted (or ``iterations``).

    Targets are ``host:port`` of metrics endpoints; a bare target gets
    ``http://`` and ``/metrics`` added.  Returns 0; unreachable targets
    render as DOWN rather than aborting the loop (shards may restart).

    Args:
        json_mode: Emit one JSON object per refresh
            (``{"refreshed_at": ..., "targets": [rows]}``) instead of the
            ANSI table — scriptable ``repro top --json``.
    """
    urls = [
        t if t.startswith("http") else f"http://{t}/metrics" for t in targets
    ]
    previous: dict[str, Samples] = {}
    ticks = 0
    try:
        while iterations is None or ticks < iterations:
            if ticks:
                time.sleep(interval_s)
            rows = []
            for target, url in zip(targets, urls):
                current = scrape(url)
                rows.append(
                    target_row(target, current, previous.get(target), interval_s)
                )
                if current:
                    previous[target] = current
            refreshed_at = time.strftime("%H:%M:%S")
            if json_mode:
                write(
                    json.dumps({"refreshed_at": refreshed_at, "targets": rows})
                )
            else:
                frame = render_top(rows, refreshed_at=refreshed_at)
                write((CLEAR if clear else "") + frame)
            ticks += 1
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


__all__ = ["scrape", "target_row", "render_top", "run_top", "CLEAR"]
