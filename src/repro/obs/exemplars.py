"""Tail exemplars: keep the *exact* p999 request, not an average.

Latency histograms say a p999 exists; they cannot say why.  This module
retains full evidence — the trace id (resolving to the request's span
tree) and the request's ledger row — for accesses that land in the tail:
anything beyond an absolute latency threshold, plus the top-K slowest of
every observation window even when the whole window is fast.  ``repro
trace`` can then open the exact slow request instead of a reconstruction.

Capture sites live where the access round-trip is observed
(:meth:`repro.core.sharded.ShardedLblDeployment.access` and the pipelined
drain path), behind the standard ``if _state.enabled`` guard.  The store
is bounded: at most ``capacity`` exemplars are retained, oldest evicted
first, so a pathological run cannot grow memory.

Span trees are materialized lazily at :meth:`TailExemplarStore.export`
time by filtering the tracer's finished spans on the exemplar's trace id —
at capture time the access span itself may still be open, so capturing
eagerly would record a truncated tree.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.obs import clock as obs_clock
from repro.obs.trace import TRACER

#: Default absolute retention threshold (seconds of round-trip latency).
DEFAULT_THRESHOLD_S = 0.050

#: Slowest requests retained per observation window even below threshold.
DEFAULT_TOP_K = 2

#: Observation window width, in the recording clock's unit.
DEFAULT_WINDOW_S = 1.0

#: Maximum exemplars retained at once (oldest evicted beyond this).
DEFAULT_CAPACITY = 64


class TailExemplarStore:
    """Bounded store of tail-latency exemplars.

    Args:
        threshold_s: Durations at or above this are always retained.
        top_k: The K slowest requests of each window are retained even
            when below the threshold, so a uniformly-fast window still
            yields representative exemplars.
        window_s: Width of the top-K observation window.
        capacity: Hard cap on retained exemplars (oldest evicted).
    """

    def __init__(
        self,
        threshold_s: float = DEFAULT_THRESHOLD_S,
        top_k: int = DEFAULT_TOP_K,
        window_s: float = DEFAULT_WINDOW_S,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("exemplar capacity must be >= 1")
        self.threshold_s = threshold_s
        self.top_k = top_k
        self.window_s = window_s
        self.capacity = capacity
        self._lock = threading.Lock()
        self._retained: OrderedDict[int, dict[str, Any]] = OrderedDict()
        self._window_start = 0.0
        self._window: list[tuple[float, int]] = []  # (duration, exemplar key)
        self._next_key = 0

    # ------------------------------------------------------------------ #
    # Capture
    # ------------------------------------------------------------------ #

    def consider(
        self,
        duration_s: float,
        *,
        trace_id: int | None,
        label: str = "access",
        ledger_row: dict[str, Any] | None = None,
    ) -> bool:
        """Offer one finished request; returns True when retained.

        Call sites guard with ``if _state.enabled`` so the disabled path
        is one attribute check.
        """
        now = obs_clock.now()
        with self._lock:
            if now - self._window_start >= self.window_s:
                self._window_start = now
                self._window = []
            evict_key: int | None = None
            if duration_s >= self.threshold_s:
                retain = True
            elif len(self._window) < self.top_k:
                retain = True
            else:
                slowest_min = min(self._window)
                if duration_s > slowest_min[0]:
                    # Displace the window's current K-th slowest: it was
                    # only retained as a window winner, so it leaves too.
                    retain = True
                    self._window.remove(slowest_min)
                    evict_key = slowest_min[1]
                else:
                    retain = False
            if not retain:
                return False
            key = self._next_key
            self._next_key += 1
            if duration_s < self.threshold_s:
                self._window.append((duration_s, key))
            if evict_key is not None:
                self._retained.pop(evict_key, None)
            self._retained[key] = {
                "captured_at": now,
                "duration_s": duration_s,
                "trace_id": trace_id,
                "label": label,
                "ledger": ledger_row,
            }
            while len(self._retained) > self.capacity:
                self._retained.popitem(last=False)
            return True

    # ------------------------------------------------------------------ #
    # Inspection / export
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._retained)

    def exemplars(self) -> list[dict[str, Any]]:
        """Retained exemplars, oldest first, without span trees."""
        with self._lock:
            return [dict(record) for record in self._retained.values()]

    def export(self, spans: list[dict[str, Any]] | None = None) -> dict[str, Any]:
        """JSON-ready snapshot with span trees resolved per exemplar.

        Args:
            spans: The span-dump list to resolve trace ids against;
                defaults to the local tracer's finished spans.  Pass a
                merged dump (:func:`repro.obs.propagate.merge_span_dumps`)
                to resolve exemplars across shard processes.
        """
        if spans is None:
            spans = TRACER.export()
        by_trace: dict[int, list[dict[str, Any]]] = {}
        for span in spans:
            by_trace.setdefault(span["trace_id"], []).append(span)
        records = []
        for record in self.exemplars():
            record = dict(record)
            record["spans"] = by_trace.get(record["trace_id"], [])
            records.append(record)
        return {
            "threshold_s": self.threshold_s,
            "top_k": self.top_k,
            "window_s": self.window_s,
            "capacity": self.capacity,
            "exemplars": records,
        }

    def slowest(self) -> dict[str, Any] | None:
        """The single slowest retained exemplar (no span tree)."""
        with self._lock:
            if not self._retained:
                return None
            return dict(max(self._retained.values(), key=lambda r: r["duration_s"]))

    def reset(self) -> None:
        """Drop all retained exemplars and window state."""
        with self._lock:
            self._retained = OrderedDict()
            self._window_start = 0.0
            self._window = []
            self._next_key = 0


def render_exemplar(record: dict[str, Any]) -> str:
    """One exported exemplar as an indented span-tree text block.

    Takes a record from :meth:`TailExemplarStore.export` (span tree
    resolved); pure string building, so ``repro trace`` and tests share
    it.
    """
    lines = [
        f"exemplar [{record.get('label', 'access')}] "
        f"{record['duration_s'] * 1e3:.2f} ms  "
        f"(trace {record.get('trace_id')})"
    ]
    ledger = record.get("ledger")
    if ledger:
        wire = ledger.get("wire") or {}
        total = sum(wire.values()) if isinstance(wire, dict) else 0
        lines.append(
            f"  ledger: {ledger.get('label', '?')} — {total} wire bytes, "
            f"{sum((ledger.get('ops') or {}).values())} primitive ops"
        )
    spans = record.get("spans", [])
    by_id = {span["span_id"]: span for span in spans}
    children: dict[int, list[dict[str, Any]]] = {}
    roots = []
    for span in spans:
        parent = span.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def _walk(span: dict[str, Any], depth: int) -> None:
        duration = span.get("duration")
        shown = "?" if duration is None else f"{duration * 1e3:.2f} ms"
        process = span.get("process")
        suffix = f"  [{process}]" if process else ""
        lines.append(f"  {'  ' * depth}{span['name']}  {shown}{suffix}")
        for child in sorted(
            children.get(span["span_id"], []), key=lambda s: s.get("start", 0.0)
        ):
            _walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.get("start", 0.0)):
        _walk(root, 0)
    if not spans:
        lines.append("  (no spans resolved for this trace id)")
    return "\n".join(lines)


#: The process-wide store the sharded access paths write to.
EXEMPLARS = TailExemplarStore()


__all__ = [
    "DEFAULT_THRESHOLD_S",
    "DEFAULT_TOP_K",
    "DEFAULT_WINDOW_S",
    "DEFAULT_CAPACITY",
    "TailExemplarStore",
    "EXEMPLARS",
    "render_exemplar",
]
