"""A lightweight span tracer with parent/child nesting.

Spans time one logical operation and carry free-form attributes::

    from repro import obs

    obs.enable()
    with obs.TRACER.span("lbl.access", key="alice") as span:
        ...
        span.set_attribute("decrypts", 640)

Nesting follows the call structure via a :class:`contextvars.ContextVar`, so
it is correct across threads (each thread sees its own current span).  Code
that cannot use a ``with`` block — e.g. a discrete-event client generator
whose lifetime interleaves with hundreds of sibling processes — uses the
manual :meth:`Tracer.start_span` / :meth:`Tracer.end` pair instead.

Timestamps come from :mod:`repro.obs.clock`'s global time source, so the
same tracer records wall seconds in live runs and simulated milliseconds
inside :class:`repro.sim.core.Environment` runs.

When observability is disabled (the default) ``span()`` yields a shared
no-op span and records nothing; the cost is one attribute check.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs import _state
from repro.obs import clock as obs_clock


class Span:
    """One timed operation with attributes and a position in a trace tree."""

    __slots__ = ("name", "span_id", "trace_id", "parent_id", "start", "end", "attributes")

    def __init__(
        self,
        name: str,
        span_id: int,
        trace_id: int,
        parent_id: int | None,
        start: float,
        attributes: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attributes = attributes

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    @property
    def duration(self) -> float | None:
        """End minus start in the recording clock's unit; None while open."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation of this span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NoopSpan:
    """Shared do-nothing span returned while observability is disabled."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans, tracks the current one per context, keeps finished ones."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._current: Any = None  # ContextVar, created lazily in reset()
        self.finished: list[Span] = []
        self.reset()

    def reset(self) -> None:
        """Drop all finished spans and restart span-id numbering."""
        import contextvars

        with self._lock:
            self.finished = []
            self._ids = itertools.count(1)
            self._current = contextvars.ContextVar("repro-obs-span", default=None)

    # ------------------------------------------------------------------ #
    # Span lifecycle
    # ------------------------------------------------------------------ #

    def current_span(self) -> Span | None:
        """The innermost open span of this context, if any."""
        return self._current.get()

    def start_span(
        self,
        name: str,
        parent: Span | None = None,
        *,
        root: bool = False,
        **attributes: Any,
    ) -> Span:
        """Open a span without making it current (manual API).

        Args:
            name: Span name (dotted, e.g. ``"lbl.server.process"``).
            parent: Explicit parent; defaults to the context's current span.
            root: Force a new root span even if a current span exists.
            **attributes: Initial attributes.

        The caller must pass the span to :meth:`end`.
        """
        if parent is None and not root:
            parent = self._current.get()
        with self._lock:
            span_id = next(self._ids)
        trace_id = parent.trace_id if parent is not None else span_id
        parent_id = parent.span_id if parent is not None else None
        return Span(name, span_id, trace_id, parent_id, obs_clock.now(), dict(attributes))

    def end(self, span: Span) -> Span:
        """Close ``span`` and move it to :attr:`finished`."""
        span.end = obs_clock.now()
        with self._lock:
            self.finished.append(span)
        return span

    @contextmanager
    def span(
        self, name: str, parent: Span | None = None, **attributes: Any
    ) -> Iterator[Span | _NoopSpan]:
        """Context-managed span, nested under the context's current span.

        ``parent`` overrides the context's current span — used by servers
        parenting under a propagated remote context
        (:mod:`repro.obs.propagate`).

        An exception escaping the block closes the span with
        ``error=True`` / ``error_type`` attributes and bumps the
        ``trace.span_errors`` counter, then propagates — failed operations
        must not vanish from the trace as if they had succeeded.

        No-op (yields the shared :data:`NOOP_SPAN`) while observability is
        disabled.
        """
        if not _state.enabled:
            yield NOOP_SPAN
            return
        span = self.start_span(name, parent=parent, **attributes)
        token = self._current.set(span)
        try:
            yield span
        except BaseException as exc:
            span.set_attributes(error=True, error_type=type(exc).__name__)
            from repro.obs.metrics import REGISTRY

            REGISTRY.counter("trace.span_errors").inc()
            raise
        finally:
            self._current.reset(token)
            self.end(span)

    # ------------------------------------------------------------------ #
    # Inspection / export
    # ------------------------------------------------------------------ #

    def spans(self, name: str | None = None) -> list[Span]:
        """Finished spans, optionally filtered by exact name."""
        if name is None:
            return list(self.finished)
        return [s for s in self.finished if s.name == name]

    def export(self) -> list[dict[str, Any]]:
        """All finished spans as dicts, in completion order."""
        return [span.to_dict() for span in self.finished]


#: The process-wide default tracer all built-in instrumentation writes to.
TRACER = Tracer()


__all__ = ["Span", "Tracer", "TRACER", "NOOP_SPAN"]
