"""Pluggable time sources for spans, metrics, and calibration.

Everything in :mod:`repro.obs` asks *one* global time source for the current
time instead of calling :func:`time.perf_counter` directly.  That makes the
same tracer work in three regimes:

* :class:`WallClock` — real elapsed seconds (the default);
* :class:`SimClock` — simulated milliseconds read from a
  :class:`repro.sim.core.Environment` (or anything with a ``now`` attribute),
  so spans recorded inside a discrete-event run carry sim timestamps and are
  bit-for-bit deterministic;
* :class:`FakeClock` — a hand-cranked clock for tests, optionally
  auto-advancing a fixed step per reading so timing loops terminate with
  deterministic results.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Protocol

from repro.errors import ConfigurationError


class Clock(Protocol):
    """Anything that can report the current time as a float."""

    #: Human-readable unit of :meth:`now` ("s", "sim_ms", ...).
    unit: str

    def now(self) -> float:
        """The current time in this clock's unit."""
        ...


class WallClock:
    """Real time via :func:`time.perf_counter`, in seconds."""

    unit = "s"

    def now(self) -> float:
        """Monotonic wall-clock seconds."""
        return time.perf_counter()


class SimClock:
    """Reads simulated time from an environment-like object.

    Args:
        env: Any object exposing a numeric ``now`` attribute — designed for
            :class:`repro.sim.core.Environment`, whose clock runs in
            milliseconds.
    """

    unit = "sim_ms"

    def __init__(self, env) -> None:
        if not hasattr(env, "now"):
            raise ConfigurationError("SimClock needs an object with a 'now' attribute")
        self._env = env

    def now(self) -> float:
        """The environment's current simulated time."""
        return float(self._env.now)


class FakeClock:
    """A deterministic test clock.

    Args:
        start: Initial reading.
        auto_advance: Amount added *after* every :meth:`now` call.  A
            non-zero step makes ``t1 = now(); ...; t2 = now()`` yield a
            fixed, predictable duration — which is how calibration loops
            are tested without real timing.
    """

    unit = "tick"

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0) -> None:
        if auto_advance < 0:
            raise ConfigurationError("auto_advance must be non-negative")
        self._now = start
        self._step = auto_advance

    def now(self) -> float:
        """The current reading (then advance by ``auto_advance``)."""
        current = self._now
        self._now += self._step
        return current

    def advance(self, delta: float) -> None:
        """Move the clock forward by ``delta`` (must be non-negative)."""
        if delta < 0:
            raise ConfigurationError("clocks cannot run backwards")
        self._now += delta


_time_source: Clock = WallClock()


def get_time_source() -> Clock:
    """The clock currently feeding spans and metrics timestamps."""
    return _time_source


def set_time_source(clock: Clock) -> Clock:
    """Install ``clock`` as the global time source; returns the previous one."""
    global _time_source
    previous = _time_source
    _time_source = clock
    return previous


def now() -> float:
    """Shorthand for ``get_time_source().now()``."""
    return _time_source.now()


@contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Temporarily install ``clock`` as the global time source."""
    previous = set_time_source(clock)
    try:
        yield clock
    finally:
        set_time_source(previous)


__all__ = [
    "Clock",
    "WallClock",
    "SimClock",
    "FakeClock",
    "get_time_source",
    "set_time_source",
    "now",
    "use_clock",
]
