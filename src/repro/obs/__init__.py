"""``repro.obs`` — tracing, metrics, logging, and obliviousness auditing.

The paper's claims are quantitative (one round trip per access, a latency
breakdown, an identical server view for GET and PUT), so this package makes
the corresponding quantities first-class observables:

* :mod:`repro.obs.trace` — context-manager spans with parent/child nesting
  and pluggable wall/sim time sources;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms with
  snapshot/reset semantics and JSON export;
* :mod:`repro.obs.logging` — the ``repro.*`` logger hierarchy behind the
  CLI's ``--log-level`` flag;
* :mod:`repro.obs.propagate` — the 16-byte trace-context wire extension
  and the cross-process span-dump merge used by the sharded deployment;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable)
  and Prometheus text exposition, plus the ``--metrics-port`` scrape
  endpoint;
* :mod:`repro.obs.top` — the ``repro top`` live terminal view built on
  scraping those endpoints;
* :mod:`repro.obs.recorder` — the flight recorder: a bounded ring of
  structured events (shed decisions, coalescer flushes, worker lifecycle)
  with exactly-once post-mortem dumps and a cross-process merge;
* :mod:`repro.obs.exemplars` — tail-exemplar capture: full span tree +
  ledger row retained for requests beyond a latency threshold or in the
  per-window top-K, so the exact p999 request can be opened;
* :mod:`repro.obs.profiler` — a ~100 Hz ``sys._current_frames`` sampling
  profiler with collapsed-stack and Perfetto export, attached explicitly
  via CLI or the obs control frame (it never rides the global enable);
* :mod:`repro.obs.ledger` — the per-request resource ledger: wire bytes
  per frame type/direction and crypto-primitive invocations, attributed to
  the request that caused them and validated against the closed-form cost
  model (:mod:`repro.analysis.costmodel`);
* :mod:`repro.obs.audit` — replays the *server-side* span stream of a run
  and checks the server-visible trace is identical for reads and writes
  (the paper's §5 security argument as a runnable check).  Imported lazily
  — ``from repro.obs import audit`` — because it depends on the protocol
  layer, which is itself instrumented with this package.

Capture is off by default; every instrumentation site guards its emission
behind a single flag check, so the disabled path is effectively free::

    from repro import obs

    obs.enable()
    ... run a workload ...
    bundle = obs.export()          # {"clock": ..., "spans": [...], "metrics": {...}}
    obs.disable()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs import _state
from repro.obs import ledger
from repro.obs.clock import (
    Clock,
    FakeClock,
    SimClock,
    WallClock,
    get_time_source,
    now,
    set_time_source,
    use_clock,
)
from repro.obs.logging import get_logger, setup as setup_logging
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    start_metrics_server,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.propagate import TraceContext, merge_span_dumps
from repro.obs.exemplars import EXEMPLARS, TailExemplarStore
from repro.obs.recorder import FlightRecorder, RECORDER, merge_recorder_dumps
from repro.obs.trace import NOOP_SPAN, Span, Tracer, TRACER


def enable() -> None:
    """Turn on span/metric capture process-wide."""
    _state.enabled = True


def disable() -> None:
    """Turn off capture (already-recorded data is kept until :func:`reset`)."""
    _state.enabled = False


def is_enabled() -> bool:
    """Whether capture is currently on."""
    return _state.enabled


def reset() -> None:
    """Drop all recorded spans, zero every metric, clear retired ledger rows,
    and empty the flight recorder and tail-exemplar stores."""
    TRACER.reset()
    REGISTRY.reset()
    ledger.reset()
    RECORDER.reset()
    EXEMPLARS.reset()


@contextmanager
def capture(*, fresh: bool = True) -> Iterator[None]:
    """Enable capture for the duration of a ``with`` block.

    Args:
        fresh: Reset spans and metrics on entry so the block's data stands
            alone.  The previous enabled/disabled state is restored on exit.
    """
    previous = _state.enabled
    if fresh:
        reset()
    _state.enabled = True
    try:
        yield
    finally:
        _state.enabled = previous


def export() -> dict[str, Any]:
    """One JSON-ready bundle: clock metadata, finished spans, metric
    snapshot, flight-recorder ring, and retained tail exemplars."""
    clock = get_time_source()
    return {
        "clock": {"type": type(clock).__name__, "unit": clock.unit},
        "spans": TRACER.export(),
        "metrics": REGISTRY.snapshot(),
        "recorder": RECORDER.export(),
        "exemplars": EXEMPLARS.export(),
    }


__all__ = [
    "ledger",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "capture",
    "export",
    "Clock",
    "WallClock",
    "SimClock",
    "FakeClock",
    "get_time_source",
    "set_time_source",
    "now",
    "use_clock",
    "Span",
    "Tracer",
    "TRACER",
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "REGISTRY",
    "TraceContext",
    "merge_span_dumps",
    "FlightRecorder",
    "RECORDER",
    "merge_recorder_dumps",
    "TailExemplarStore",
    "EXEMPLARS",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "start_metrics_server",
    "get_logger",
    "setup_logging",
]
