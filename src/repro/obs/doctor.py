"""``repro doctor`` — scrape a deployment and name its bottleneck.

``repro top`` shows *that* a deployment is saturated; ``doctor`` says
*where*.  It scrapes every shard's metrics endpoint twice
(:func:`collect_signals`, reusing :func:`repro.obs.top.scrape`), reduces
each target to a small signal vector (throughput, shed rate, in-flight
occupancy, event-loop lag, procpool queue depth, coalescer window fill,
prepare vs service vs round-trip latency), and hands the vectors to
:func:`diagnose` — a pure function, so the attribution logic is testable on
synthetic signal dicts without sockets.

Attribution taxonomy (the five ways the async/coalesced stack saturates):

* **shedding** — the admission window is rejecting work outright
  (``SHED/s > 0``); always reported first, then the *cause* of the
  pressure is attributed below.
* **dispatch** — the server side is the constraint: the in-flight window
  runs near full and/or the event loop lags its timer wake-ups.
* **crypto** — the proxy's table builds are the constraint: the process
  crypto pool queues, prepares dominate the latency budget, or the
  coalescing window flushes full.
* **server** — the untrusted store's fused access windows are the
  constraint: ``server_batch > 1`` windows consistently flush full on
  size, meaning requests queue faster than fused ``open_many`` dispatches
  drain them — the deployment is server-open-bound.
* **wire** — neither side is busy yet round trips dwarf service time:
  the network (or a slow consumer) holds the latency.

The verdict is compared against the symbolic cost model's predicted
per-shard capacity (:mod:`repro.analysis.costmodel`), so "2.1k ops/s on 4
shards" reads as "44% of the 4.8k ops/s the model predicts" rather than a
bare number.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.analysis.costmodel import (
    DEFAULT_SHARD_OPS_PER_SEC,
    DEFAULT_TARGET_UTILIZATION,
)
from repro.obs.top import Samples, scrape, target_row

#: In-flight occupancy at or above which dispatch is considered saturated.
OCCUPANCY_SATURATED = 0.8

#: Event-loop lag (ms) that on its own marks the dispatcher as struggling.
LOOP_LAG_SATURATED_MS = 20.0

#: Procpool queue depth treated as "fully backed up" for scoring.
QUEUE_DEPTH_SATURATED = 8.0

#: Coalescing window fill at or above which the crypto path is flush-bound.
WINDOW_FILL_SATURATED = 0.9

#: Prepare p99 (ms) at which a prepare-dominated latency budget counts as
#: crypto saturation.  The share alone is not enough: an idle deployment's
#: prepares also dominate its tiny service times, and that is not a
#: bottleneck — prepares must be both dominant *and* absolutely slow.
PREPARE_SATURATED_MS = 20.0

#: Minimum score before a cause is named the bottleneck at all.
SCORE_FLOOR = 0.5


def _signal(
    current: Samples, previous: Samples | None, interval_s: float, target: str
) -> dict[str, Any]:
    """Reduce two scrapes of one target to the doctor's signal vector."""
    row = target_row(target, current, previous, interval_s)

    def _value(metric: str, labels: dict[str, str] | None = None) -> float | None:
        for sample_labels, value in current.get(metric, []):
            if labels is None or all(
                sample_labels.get(k) == v for k, v in labels.items()
            ):
                return value
        return None

    prepare_p99 = _value(
        "repro_lbl_proxy_prepare_seconds", {"quantile": "0.99"}
    )
    row["prepare_p99_ms"] = None if prepare_p99 is None else prepare_p99 * 1e3
    row["procpool_queue_depth"] = _value("repro_lbl_procpool_queue_depth")
    row["coalesce_window_fill"] = _value("repro_lbl_coalesce_window_fill")
    row["server_window_fill"] = _value("repro_lbl_server_window_fill")
    return row


def collect_signals(
    targets: list[str], interval_s: float = 1.0
) -> list[dict[str, Any]]:
    """Two timed scrapes per target, reduced to signal vectors.

    The pause between scrapes is what turns counters into rates
    (``ops_per_s``, ``shed_per_s``) — same technique as ``repro top``.
    """
    urls = [
        t if t.startswith("http") else f"http://{t}/metrics" for t in targets
    ]
    first = [scrape(url) for url in urls]
    time.sleep(interval_s)
    return [
        _signal(scrape(url), first[i] or None, interval_s, target)
        for i, (target, url) in enumerate(zip(targets, urls))
    ]


def _score_dispatch(signal: Mapping[str, Any]) -> float:
    occupancy = signal.get("in_flight_occupancy") or 0.0
    lag_ms = signal.get("loop_lag_ms") or 0.0
    return max(
        min(occupancy / OCCUPANCY_SATURATED, 1.0),
        min(lag_ms / LOOP_LAG_SATURATED_MS, 1.0),
    )


def _score_crypto(signal: Mapping[str, Any]) -> float:
    queue = signal.get("procpool_queue_depth") or 0.0
    fill = signal.get("coalesce_window_fill") or 0.0
    prepare = signal.get("prepare_p99_ms")
    service = signal.get("service_p99_ms")
    prepare_share = 0.0
    if prepare and service is not None:
        prepare_share = prepare / (prepare + service) if prepare + service else 0.0
    elif prepare:
        prepare_share = 1.0
    prepare_score = (
        prepare_share * min(prepare / PREPARE_SATURATED_MS, 1.0) if prepare else 0.0
    )
    return max(
        min(queue / QUEUE_DEPTH_SATURATED, 1.0),
        min(fill / WINDOW_FILL_SATURATED, 1.0) if fill else 0.0,
        prepare_score,
    )


def _score_server(signal: Mapping[str, Any]) -> float:
    # A high server window fill means fused access windows consistently
    # close on size before their timer: arrivals outpace flush drains and
    # the untrusted store's open_many dispatch is the convergence point.
    fill = signal.get("server_window_fill") or 0.0
    return min(fill / WINDOW_FILL_SATURATED, 1.0)


def _score_wire(signal: Mapping[str, Any]) -> float:
    roundtrip = signal.get("p99_ms")
    service = signal.get("service_p99_ms") or 0.0
    prepare = signal.get("prepare_p99_ms") or 0.0
    if not roundtrip:
        return 0.0
    busy = min(service + prepare, roundtrip)
    return (roundtrip - busy) / roundtrip


def diagnose(
    signals: list[Mapping[str, Any]],
    *,
    predicted_ops_per_shard: float = DEFAULT_SHARD_OPS_PER_SEC
    * DEFAULT_TARGET_UTILIZATION,
) -> dict[str, Any]:
    """Attribute a deployment's state to its bottleneck.  Pure function.

    Args:
        signals: One signal vector per target, as produced by
            :func:`collect_signals` (tests pass synthetic dicts).
        predicted_ops_per_shard: The cost model's sustained per-shard
            capacity at target utilization — the baseline the measured
            throughput is compared against.

    Returns:
        ``{"bottleneck", "shedding", "scores", "reasons",
        "measured_ops_per_s", "predicted_ops_per_s", "utilization",
        "targets"}`` — ``bottleneck`` is ``"dispatch"``, ``"crypto"``,
        ``"server"``, ``"wire"``, or ``"healthy"``; ``shedding`` is True
        when any target
        rejected work during the observation window.
    """
    up = [s for s in signals if s.get("up", True)]
    shed_per_s = sum(s.get("shed_per_s") or 0.0 for s in up)
    measured = sum(s.get("ops_per_s") or 0.0 for s in up)
    predicted = predicted_ops_per_shard * len(signals) if signals else 0.0
    scores = {
        "dispatch": max((_score_dispatch(s) for s in up), default=0.0),
        "crypto": max((_score_crypto(s) for s in up), default=0.0),
        "server": max((_score_server(s) for s in up), default=0.0),
        "wire": max((_score_wire(s) for s in up), default=0.0),
    }
    shedding = shed_per_s > 0.0

    reasons: list[str] = []
    if not up:
        bottleneck = "unreachable"
        reasons.append("no target answered its metrics scrape")
    else:
        best = max(scores, key=lambda cause: scores[cause])
        # Shedding means the deployment is overloaded even if no single
        # score clears the floor — attribute to the strongest signal.
        bottleneck = best if shedding or scores[best] >= SCORE_FLOOR else "healthy"
        if shedding:
            reasons.append(
                f"admission control is shedding ({shed_per_s:.1f} req/s rejected)"
            )
        if scores["dispatch"] >= SCORE_FLOOR:
            worst = max(up, key=_score_dispatch)
            occupancy = worst.get("in_flight_occupancy") or 0.0
            lag = worst.get("loop_lag_ms") or 0.0
            reasons.append(
                f"dispatch: {worst.get('target', '?')} in-flight window at "
                f"{occupancy * 100.0:.0f}% with {lag:.1f} ms event-loop lag"
            )
        if scores["crypto"] >= SCORE_FLOOR:
            worst = max(up, key=_score_crypto)
            reasons.append(
                "crypto: procpool queue depth "
                f"{worst.get('procpool_queue_depth') or 0:.0f}, coalesce window "
                f"{(worst.get('coalesce_window_fill') or 0.0) * 100.0:.0f}% full, "
                f"prepare p99 {worst.get('prepare_p99_ms') or 0.0:.2f} ms"
            )
        if scores["server"] >= SCORE_FLOOR:
            worst = max(up, key=_score_server)
            reasons.append(
                f"server: {worst.get('target', '?')} access windows "
                f"{(worst.get('server_window_fill') or 0.0) * 100.0:.0f}% "
                "full at flush — the store's fused open dispatch is the "
                "convergence point (server-open-bound)"
            )
        if scores["wire"] >= SCORE_FLOOR:
            worst = max(up, key=_score_wire)
            reasons.append(
                "wire: round-trip p99 "
                f"{worst.get('p99_ms') or 0.0:.2f} ms vs service p99 "
                f"{worst.get('service_p99_ms') or 0.0:.2f} ms — time is off-CPU"
            )
        if bottleneck == "healthy":
            reasons.append("no saturation signal crossed its threshold")

    return {
        "bottleneck": bottleneck,
        "shedding": shedding,
        "shed_per_s": shed_per_s,
        "scores": scores,
        "reasons": reasons,
        "measured_ops_per_s": measured,
        "predicted_ops_per_s": predicted,
        "utilization": (measured / predicted) if predicted else None,
        "targets": [dict(s) for s in signals],
    }


def render_doctor(diagnosis: Mapping[str, Any]) -> str:
    """The diagnosis as a terminal report."""
    lines = [
        f"repro doctor — {len(diagnosis['targets'])} target(s)",
        "",
        f"verdict: {diagnosis['bottleneck'].upper()}"
        + ("  (shedding load)" if diagnosis["shedding"] else ""),
    ]
    for reason in diagnosis["reasons"]:
        lines.append(f"  - {reason}")
    lines.append("")
    scores = diagnosis["scores"]
    lines.append(
        "saturation scores: "
        + "  ".join(f"{cause}={scores[cause]:.2f}" for cause in sorted(scores))
    )
    measured = diagnosis["measured_ops_per_s"]
    predicted = diagnosis["predicted_ops_per_s"]
    utilization = diagnosis["utilization"]
    line = f"throughput: {measured:.1f} ops/s measured"
    if predicted:
        line += f" vs {predicted:.1f} ops/s predicted (cost model)"
    if utilization is not None:
        line += f" — {utilization * 100.0:.0f}% of predicted capacity"
    lines.append(line)
    for signal in diagnosis["targets"]:
        if not signal.get("up", True):
            lines.append(f"  {signal.get('target', '?')}: DOWN")
    lines.append("")
    return "\n".join(lines)


def run_doctor(
    targets: list[str],
    interval_s: float = 1.0,
    *,
    predicted_ops_per_shard: float | None = None,
    write=print,
    json_mode: bool = False,
) -> int:
    """Scrape ``targets``, diagnose, and print the report.

    Returns 0 when the verdict is ``healthy``, 1 when a bottleneck (or an
    unreachable target) was found — scriptable as a health gate.
    """
    import json as _json

    signals = collect_signals(targets, interval_s)
    kwargs: dict[str, Any] = {}
    if predicted_ops_per_shard is not None:
        kwargs["predicted_ops_per_shard"] = predicted_ops_per_shard
    diagnosis = diagnose(signals, **kwargs)
    if json_mode:
        write(_json.dumps(diagnosis, indent=2, default=str))
    else:
        write(render_doctor(diagnosis))
    return 0 if diagnosis["bottleneck"] == "healthy" else 1


__all__ = [
    "LOOP_LAG_SATURATED_MS",
    "OCCUPANCY_SATURATED",
    "PREPARE_SATURATED_MS",
    "QUEUE_DEPTH_SATURATED",
    "SCORE_FLOOR",
    "WINDOW_FILL_SATURATED",
    "collect_signals",
    "diagnose",
    "render_doctor",
    "run_doctor",
]
