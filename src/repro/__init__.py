"""ORTOA: one-round-trip protocols for operation-type obliviousness.

A faithful, self-contained reproduction of *ORTOA: A Family of One Round
Trip Protocols For Operation-Type Obliviousness* (EDBT 2024).  The library
provides:

* the protocol family — :class:`FheOrtoa`, :class:`TeeOrtoa`,
  :class:`LblOrtoa`, and the :class:`TwoRoundBaseline` they are evaluated
  against;
* every substrate they need, built from scratch: PRF/AEAD crypto, a
  BFV-style homomorphic scheme with noise tracking, a simulated SGX enclave
  with attestation, an in-memory KV store, and a discrete-event WAN
  simulator with the paper's datacenter RTTs;
* the empirical ROR-RW security game (:mod:`repro.security`);
* the §8 extension — a one-round tree ORAM (:mod:`repro.oram`);
* an experiment harness regenerating every table and figure of the paper's
  evaluation (:mod:`repro.harness`, driven by ``benchmarks/``).

Quickstart::

    from repro import LblOrtoa, StoreConfig

    store = LblOrtoa(StoreConfig(value_len=160))
    store.initialize({"alice": b"balance=100"})
    store.write("alice", b"balance=250")   # one round trip
    value = store.read("alice")            # one round trip, same wire shape
"""

from repro.core import (
    AccessTranscript,
    FheOrtoa,
    LblOrtoa,
    OrtoaProtocol,
    TeeOrtoa,
    TwoRoundBaseline,
)
from repro.core.deployment import ShardedDeployment
from repro.core.freshness import FreshnessGuard
from repro.core.lbl.concurrent import ConcurrentLblProxy, access_batch
from repro.core.lbl.wal import DurableLblOrtoa
from repro.crypto.keys import KeyChain
from repro.errors import OrtoaError
from repro.harness import CostModel, DeploymentSpec, RunResult, run_experiment
from repro.oram import OneRoundOram, PathOram
from repro.relational import ObliviousTable, Schema
from repro.types import Operation, Request, Response, StoreConfig

__version__ = "1.0.0"

__all__ = [
    "OrtoaProtocol",
    "LblOrtoa",
    "TeeOrtoa",
    "FheOrtoa",
    "TwoRoundBaseline",
    "ShardedDeployment",
    "FreshnessGuard",
    "ConcurrentLblProxy",
    "access_batch",
    "DurableLblOrtoa",
    "ObliviousTable",
    "Schema",
    "AccessTranscript",
    "KeyChain",
    "StoreConfig",
    "Operation",
    "Request",
    "Response",
    "OrtoaError",
    "CostModel",
    "DeploymentSpec",
    "RunResult",
    "run_experiment",
    "PathOram",
    "OneRoundOram",
    "__version__",
]
