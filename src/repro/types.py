"""Common value types shared across the ORTOA protocol family.

The paper's system model (§2) is a key-value store supporting single-key GET
and PUT where every value has the same fixed length.  These dataclasses are
the plaintext-side vocabulary used by clients, proxies, and the experiment
harness; the encrypted wire formats live in :mod:`repro.core.messages`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class Operation(enum.Enum):
    """Type of a client access — the very thing ORTOA hides from the server."""

    READ = "read"
    WRITE = "write"

    @property
    def is_read(self) -> bool:
        """True for GET operations."""
        return self is Operation.READ

    @property
    def is_write(self) -> bool:
        """True for PUT operations."""
        return self is Operation.WRITE


@dataclass(frozen=True, slots=True)
class Request:
    """A plaintext client request.

    ``value`` must be ``None`` for reads and a ``bytes`` payload for writes;
    the payload is padded/validated against the store's fixed value length by
    the proxy.
    """

    op: Operation
    key: str
    value: bytes | None = None

    def __post_init__(self) -> None:
        if self.op.is_read and self.value is not None:
            raise ConfigurationError("read requests must not carry a value")
        if self.op.is_write and self.value is None:
            raise ConfigurationError("write requests must carry a value")

    @staticmethod
    def read(key: str) -> "Request":
        """Construct a GET request."""
        return Request(Operation.READ, key)

    @staticmethod
    def write(key: str, value: bytes) -> "Request":
        """Construct a PUT request."""
        return Request(Operation.WRITE, key, value)


@dataclass(frozen=True, slots=True)
class Response:
    """A plaintext response returned to the client by the proxy.

    For reads, ``value`` is the object's current value.  For writes, the
    protocols still produce a decrypted server output (re-encrypted/updated
    labels or ciphertext), but the proxy ignores it; ``value`` then echoes the
    written value for client convenience.
    """

    key: str
    value: bytes


@dataclass(frozen=True, slots=True)
class StoreConfig:
    """Static parameters of an ORTOA deployment.

    Attributes:
        value_len: Fixed plaintext value length in bytes (paper's ``t`` is
            ``value_len * 8`` bits; the default 160 B matches §6's workload).
        label_bits: PRF output size ``r`` in bits for LBL label generation.
        group_bits: LBL space optimization ``y`` — how many plaintext bits one
            label represents (§10.1; ``y=2`` is the paper's optimum).
        point_and_permute: Enable the decryption-bits optimization (§10.2) so
            the server decrypts exactly one ciphertext per group.
        label_cache_entries: Proxy-side label cache capacity in epochs
            (``(key, counter)`` entries).  ``None`` disables the cache;
            ``-1`` sizes it automatically from
            :data:`repro.core.lbl.cache.DEFAULT_LABEL_CACHE_BYTES`.  A warm
            hit skips re-deriving the access's old labels (see
            ``docs/performance.md``).
    """

    value_len: int = 160
    label_bits: int = 128
    group_bits: int = 1
    point_and_permute: bool = False
    label_cache_entries: int | None = None

    def __post_init__(self) -> None:
        if self.value_len <= 0:
            raise ConfigurationError("value_len must be positive")
        if self.label_bits % 8 != 0 or self.label_bits <= 0:
            raise ConfigurationError("label_bits must be a positive multiple of 8")
        if self.group_bits < 1:
            raise ConfigurationError("group_bits must be >= 1")
        if self.label_cache_entries is not None and self.label_cache_entries == 0:
            raise ConfigurationError(
                "label_cache_entries must be None (disabled), -1 (auto), or >= 1"
            )
        if self.label_cache_entries is not None and self.label_cache_entries < -1:
            raise ConfigurationError(
                "label_cache_entries must be None (disabled), -1 (auto), or >= 1"
            )
        if self.point_and_permute and self.group_bits == 1:
            # Point-and-permute is defined over ciphertext tables of >= 2
            # entries; it works for y=1 too (2-entry table), so allow it.
            pass

    @property
    def value_bits(self) -> int:
        """Plaintext length in bits (paper's ``t``)."""
        return self.value_len * 8

    @property
    def num_groups(self) -> int:
        """Number of label groups per value (``ceil(t / y)``)."""
        bits = self.value_bits
        return (bits + self.group_bits - 1) // self.group_bits

    def pad(self, value: bytes) -> bytes:
        """Right-pad ``value`` with zero bytes to the fixed length.

        Raises:
            ConfigurationError: if the value is longer than ``value_len``.
        """
        if len(value) > self.value_len:
            raise ConfigurationError(
                f"value of {len(value)} bytes exceeds fixed length {self.value_len}"
            )
        return value.ljust(self.value_len, b"\x00")


@dataclass(slots=True)
class AccessStats:
    """Mutable counters a component keeps about the work it performed."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    encryptions: int = 0
    decryptions: int = 0
    failed_decryptions: int = 0
    prf_evaluations: int = 0

    def record_op(self, op: Operation) -> None:
        """Count one request of the given operation type."""
        self.requests += 1
        if op.is_read:
            self.reads += 1
        else:
            self.writes += 1

    def merged_with(self, other: "AccessStats") -> "AccessStats":
        """Return a new ``AccessStats`` summing ``self`` and ``other``."""
        return AccessStats(
            requests=self.requests + other.requests,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_received=self.bytes_received + other.bytes_received,
            encryptions=self.encryptions + other.encryptions,
            decryptions=self.decryptions + other.decryptions,
            failed_decryptions=self.failed_decryptions + other.failed_decryptions,
            prf_evaluations=self.prf_evaluations + other.prf_evaluations,
        )


@dataclass(frozen=True, slots=True)
class LatencySample:
    """One completed request as observed by the experiment harness.

    ``trace_id`` links the sample to its ``harness.request`` span in
    :data:`repro.obs.trace.TRACER` when the run was captured with
    observability enabled; it is ``None`` otherwise.
    """

    op: Operation
    start_ms: float
    end_ms: float
    compute_ms: float = 0.0
    comm_overhead_ms: float = 0.0
    trace_id: int | None = None

    @property
    def latency_ms(self) -> float:
        """End-to-end latency of this request in milliseconds."""
        return self.end_ms - self.start_ms
