"""Simulated trusted execution environment (TEE) substrate.

TEE-ORTOA (paper §4) runs the select-and-re-encrypt step inside an Intel SGX
enclave.  Real SGX hardware is unavailable here, so this package simulates
the properties the protocol relies on:

* **Isolation** — :class:`~repro.tee.enclave.Enclave` holds sealed key
  material that host code cannot read (attempts raise
  :class:`~repro.errors.EnclaveSealedError`).
* **Attestation** — :mod:`repro.tee.attestation` implements a
  measurement-and-quote flow rooted in a simulated hardware key, so key
  provisioning only succeeds for an enclave with the expected code identity.
* **Cost** — ECALL context-switch overhead is surfaced as a count the
  experiment harness turns into simulated time (the paper's §6.2.1 observes
  enclave paging/context-switch latency effects).
"""

from repro.tee.attestation import AttestationService, HardwareRoot, Quote
from repro.tee.enclave import Enclave

__all__ = ["Enclave", "AttestationService", "HardwareRoot", "Quote"]
