"""Side-channel leakage demonstration for TEE-ORTOA (paper §4.3).

The paper flags side-channel attacks as the most pressing limitation of the
TEE variant: an adversary who can observe an enclave's memory/branch
behaviour (via cache timing, page faults, …) can undo the obliviousness.
This module makes that threat concrete and testable:

* :class:`LeakyEnclave` — a *deliberately wrong* enclave implementation
  that branches on the decrypted selector and only touches the value it
  needs.  Functionally identical to the correct enclave; observably
  different.
* :class:`TraceProbe` — a coarse side-channel observer modelling an
  adversary with per-call instruction/step granularity (the granularity at
  which cache- and page-level attacks operate).
* :func:`operation_type_advantage` — how well a trace distinguishes reads
  from writes: 1.0 against :class:`LeakyEnclave`, 0.0 against the correct
  :class:`~repro.tee.enclave.Enclave`.

The correct enclave in :mod:`repro.tee.enclave` decrypts all inputs and
selects branch-free precisely so its trace is operation-independent; tests
in ``tests/test_sidechannel.py`` pin that property against this adversary.
(Cache-line and page granularities are below this simulation's resolution,
matching the paper's scope: it deploys without those mitigations too.)
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto import aead
from repro.errors import ProtocolError
from repro.tee.attestation import HardwareRoot
from repro.tee.enclave import Enclave


class TraceProbe:
    """Records the step traces an enclave emits across many ECALLs."""

    def __init__(self) -> None:
        self.traces: list[tuple[str, ...]] = []

    def observe(self, enclave) -> None:
        """Capture the trace of the enclave's most recent ECALL."""
        self.traces.append(tuple(enclave.last_trace))


class LeakyEnclave(Enclave):
    """An insecure enclave whose control flow depends on the selector.

    The "optimization" is the classic mistake: for reads it never decrypts
    the (unused) new value, and for writes it never decrypts the old one.
    One fewer decryption per call — and a branch pattern that hands the
    operation type to any cache- or trace-level observer.
    """

    def ecall_select_and_reencrypt(
        self, selector_ct: bytes, v_old_ct: bytes, v_new_ct: bytes
    ) -> bytes:
        key = self._sealed_key_for_subclass()
        self.ecall_count += 1
        trace = ["decrypt-selector"]
        selector = aead.decrypt(key, selector_ct)
        if len(selector) != 1 or selector[0] not in (0, 1):
            raise ProtocolError("selector must decrypt to a single 0/1 byte")
        if selector[0] == 1:  # read: only touch the old value
            trace.append("decrypt-old")
            selected = aead.decrypt(key, v_old_ct)
        else:  # write: only touch the new value
            trace.append("decrypt-new")
            selected = aead.decrypt(key, v_new_ct)
        trace.append("encrypt-result")
        self.last_trace = tuple(trace)
        return aead.encrypt(key, selected)

    def _sealed_key_for_subclass(self) -> bytes:
        # Name-mangled private access from within the enclave boundary; a
        # subclass is still "inside" the enclave, unlike host code.
        key = self._Enclave__sealed_key  # type: ignore[attr-defined]
        if key is None:
            raise ProtocolError("enclave key not provisioned; attest first")
        return key


def operation_type_advantage(
    read_traces: Sequence[tuple[str, ...]],
    write_traces: Sequence[tuple[str, ...]],
) -> float:
    """Best trace-classifier advantage at telling reads from writes.

    Builds the optimal deterministic classifier over observed traces (label
    each distinct trace by its majority class) and returns
    ``accuracy*2 - 1`` — 0.0 for identical trace distributions, 1.0 for
    disjoint ones.
    """
    if not read_traces or not write_traces:
        raise ProtocolError("need traces from both operation types")
    from collections import Counter

    read_counts = Counter(read_traces)
    write_counts = Counter(write_traces)
    total = len(read_traces) + len(write_traces)
    correct = 0
    for trace in set(read_counts) | set(write_counts):
        correct += max(read_counts[trace], write_counts[trace])
    accuracy = correct / total
    return max(0.0, 2.0 * accuracy - 1.0)


def build_enclave(leaky: bool, data_key: bytes) -> Enclave:
    """A provisioned enclave of either flavour (test/demo convenience)."""
    enclave_cls = LeakyEnclave if leaky else Enclave
    enclave = enclave_cls(HardwareRoot())
    enclave.provision_key(data_key)
    return enclave


__all__ = ["LeakyEnclave", "TraceProbe", "operation_type_advantage", "build_enclave"]
