"""The simulated enclave running TEE-ORTOA's trusted computation (paper §4).

The enclave's single ECALL implements the simplified Procedure Pcr' of §4.1:
decrypt the selector bit ``c_r``, decrypt both candidate values, pick
``v_old`` for reads or ``v_new`` for writes, and re-encrypt the winner under
a fresh nonce.  Because non-deterministic encryption makes a re-encryption
of the old value indistinguishable from an encryption of a new one, the
untrusted host that stores the output learns nothing about the operation
type.

Obliviousness inside the enclave: the ECALL executes the *same* sequence of
cryptographic steps for reads and writes (three decryptions, one branch-free
select, one encryption).  ``last_trace`` exposes that step sequence so tests
can assert it is operation-independent — the coarse-grained analogue of the
side-channel discussion in §4.3 (which the paper explicitly leaves
unmitigated at cache/page granularity, as do we).
"""

from __future__ import annotations

from repro.crypto import aead
from repro.errors import EnclaveSealedError, ProtocolError
from repro.tee.attestation import HardwareRoot, Quote, measure_code

#: Code identity of this enclave build; hashed into the measurement.
ENCLAVE_CODE_IDENTITY = "ortoa-tee-enclave-v1"


class Enclave:
    """A simulated SGX enclave holding the sealed data key.

    Args:
        hardware: The machine's simulated root of trust (for quoting).

    The data key is *not* a constructor argument: it must be provisioned via
    :meth:`provision_key` after attestation, mirroring the deployment flow in
    which the data owner releases the key only to a verified enclave.
    """

    def __init__(self, hardware: HardwareRoot) -> None:
        self._hardware = hardware
        self.measurement = measure_code(ENCLAVE_CODE_IDENTITY)
        self.__sealed_key: bytes | None = None
        self.ecall_count = 0
        self.last_trace: tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # Attestation and provisioning
    # ------------------------------------------------------------------ #

    def generate_quote(self, report_data: bytes = b"") -> Quote:
        """Produce attestation evidence for this enclave instance."""
        return self._hardware.issue_quote(self.measurement, report_data)

    def provision_key(self, data_key: bytes) -> None:
        """Install the data-encryption key into enclave-private memory.

        In a real deployment the key would arrive over an attested secure
        channel; the transport is out of scope here (the paper assumes it).
        """
        if len(data_key) < 16:
            raise ProtocolError("provisioned key too short")
        self.__sealed_key = data_key

    @property
    def sealed_key(self) -> bytes:
        """Host-side accessor — always refuses, that's the point of a TEE."""
        raise EnclaveSealedError("host code cannot read enclave-sealed keys")

    @property
    def is_provisioned(self) -> bool:
        """Whether the data key has been installed."""
        return self.__sealed_key is not None

    # ------------------------------------------------------------------ #
    # The trusted ECALL (Procedure Pcr' of §4.1)
    # ------------------------------------------------------------------ #

    def ecall_select_and_reencrypt(
        self,
        selector_ct: bytes,
        v_old_ct: bytes,
        v_new_ct: bytes,
    ) -> bytes:
        """Run one oblivious select inside the enclave.

        Args:
            selector_ct: Encryption of one byte — 1 for reads, 0 for writes
                (the client-built ``c_r`` of §4.1).
            v_old_ct: Encryption of the currently stored value (fetched by
                the untrusted host from the KV store).
            v_new_ct: Encryption of the client's new value (dummy for reads).

        Returns:
            A fresh encryption of the selected value.  The host stores it
            back and forwards it to the proxy; it cannot tell which input won.

        Raises:
            ProtocolError: enclave not provisioned, or malformed inputs.
        """
        if self.__sealed_key is None:
            raise ProtocolError("enclave key not provisioned; attest first")
        self.ecall_count += 1
        trace: list[str] = []

        trace.append("decrypt-selector")
        selector = aead.decrypt(self.__sealed_key, selector_ct)
        if len(selector) != 1 or selector[0] not in (0, 1):
            raise ProtocolError("selector must decrypt to a single 0/1 byte")

        trace.append("decrypt-old")
        v_old = aead.decrypt(self.__sealed_key, v_old_ct)
        trace.append("decrypt-new")
        v_new = aead.decrypt(self.__sealed_key, v_new_ct)
        if len(v_old) != len(v_new):
            raise ProtocolError("old and new values must have equal length")

        # Branch-free select: mask is 0xFF for reads (keep old), 0x00 for
        # writes (take new); same instructions either way.
        trace.append("select")
        mask = -selector[0] & 0xFF
        selected = bytes((o & mask) | (n & ~mask & 0xFF) for o, n in zip(v_old, v_new))

        trace.append("encrypt-result")
        result = aead.encrypt(self.__sealed_key, selected)
        self.last_trace = tuple(trace)
        return result


__all__ = ["Enclave", "ENCLAVE_CODE_IDENTITY"]
