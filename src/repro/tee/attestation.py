"""Measurement-based remote attestation for the simulated enclave.

Models the part of SGX attestation that TEE-ORTOA needs: a relying party
(the data owner) will only provision the data-encryption key into an enclave
whose *measurement* (hash of its code identity) matches the expected value,
verified via a quote MACed by a hardware-rooted key that host software does
not possess.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.errors import AttestationError


def measure_code(code_identity: str) -> bytes:
    """The enclave *measurement* — a digest of its code identity string.

    Real SGX hashes the loaded pages (MRENCLAVE); the string stands in for
    the enclave binary.
    """
    return hashlib.sha256(b"mrenclave:" + code_identity.encode("utf-8")).digest()


@dataclass(frozen=True, slots=True)
class Quote:
    """Attestation evidence: measurement + caller data, MACed by hardware."""

    measurement: bytes
    report_data: bytes
    mac: bytes


class HardwareRoot:
    """The simulated manufacturer root of trust.

    One instance represents one physical machine's fused key.  Enclaves on
    the machine can ask it to MAC their measurement (producing a quote);
    the attestation service holds a verification handle to the same key,
    mirroring how Intel's attestation infrastructure verifies real quotes.
    """

    def __init__(self) -> None:
        self._key = secrets.token_bytes(32)

    def _mac(self, measurement: bytes, report_data: bytes) -> bytes:
        return hmac.new(self._key, measurement + report_data, hashlib.sha256).digest()

    def issue_quote(self, measurement: bytes, report_data: bytes) -> Quote:
        """Called from inside an enclave to produce attestation evidence."""
        return Quote(measurement, report_data, self._mac(measurement, report_data))

    def check_quote(self, quote: Quote) -> bool:
        """Verify the quote's MAC (used by :class:`AttestationService`)."""
        expected = self._mac(quote.measurement, quote.report_data)
        return hmac.compare_digest(quote.mac, expected)


class AttestationService:
    """Relying-party verification: quote authenticity + expected measurement."""

    def __init__(self, hardware: HardwareRoot, expected_measurement: bytes) -> None:
        self._hardware = hardware
        self._expected = expected_measurement

    def verify(self, quote: Quote) -> None:
        """Accept the quote or raise.

        Raises:
            AttestationError: forged quote, or the enclave runs unexpected
                code (measurement mismatch) — in either case the data key
                must not be provisioned.
        """
        if not self._hardware.check_quote(quote):
            raise AttestationError("quote MAC verification failed")
        if not hmac.compare_digest(quote.measurement, self._expected):
            raise AttestationError(
                "enclave measurement does not match the expected code identity"
            )


__all__ = ["Quote", "HardwareRoot", "AttestationService", "measure_code"]
